//! Durable FD-health time series: the `HISTORY` file.
//!
//! The paper's premise is that FDs *evolve* — so the engine records how.
//! Next to every table's WAL lives `history.bin`, an append-only journal
//! of [`HistoryFrame`]s: one frame per applied delta (subject to the
//! configured epoch stride) carrying each tracked FD's confidence, g3,
//! violating-group count and row count, plus any drift events (with WAL
//! seq + violating-group provenance) and alert transitions that the delta
//! caused. Frames use the same `[len][crc32][payload]` framing as the WAL
//! so a torn tail truncates to the last valid checksum; unlike the WAL the
//! file is **never reset** on checkpoint — it is the table's permanent
//! health record, regenerable from the WAL tail on recovery and shipped
//! whole to bootstrapping replicas.
//!
//! Determinism matters: the leader, a crash-recovered replay, and a
//! WAL-shipped follower must all produce **byte-identical** history.
//! Floats are framed by bit pattern, group keys arrive pre-sorted from
//! the validator, and frames are keyed by epoch so recovery can dedup
//! (`epoch > last_epoch`) instead of rewriting.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::codec::{Decoder, Encoder};
use crate::crc32::crc32;
use crate::error::{io_err, PersistError, Result};

/// File name of the history journal inside a table directory.
pub const HISTORY_FILE: &str = "history.bin";

/// Magic bytes opening every history file.
pub const HISTORY_MAGIC: &[u8; 8] = b"EVFDHIS1";

/// Format version written after the magic.
pub const HISTORY_VERSION: u32 = 1;

/// Frame header: `[len u32][crc32 u32]`.
const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on one frame's payload — far above any real frame, a
/// guard against interpreting garbage lengths as gigantic allocations.
const MAX_FRAME_LEN: usize = 16 << 20;

/// One FD's health sample inside a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FdSample {
    /// The FD's display string (e.g. `[Zip] -> [City]`).
    pub fd: String,
    /// Confidence (1 - g3) after the delta.
    pub confidence: f64,
    /// g3 error measure after the delta.
    pub g3: f64,
    /// Number of violating groups after the delta.
    pub violating_groups: u64,
    /// True iff the FD currently has violations.
    pub violated: bool,
}

/// One drift event retained in the durable history.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEntry {
    /// The FD's display string.
    pub fd: String,
    /// Event kind rendered as a short token (`violated` | `exact` |
    /// `crossed-up@t` | `crossed-down@t`).
    pub kind: String,
    /// Confidence before the delta.
    pub confidence_before: f64,
    /// Confidence after the delta.
    pub confidence_after: f64,
    /// Rendered antecedent keys of groups that newly violate (sorted,
    /// capped by the validator; empty on rebuild paths).
    pub groups: Vec<String>,
}

/// One alert transition retained in the durable history.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEntry {
    /// Canonical rule text.
    pub rule: String,
    /// The FD the rule watches.
    pub fd: String,
    /// True when the rule fired, false when it resolved.
    pub fired: bool,
}

/// One epoch-indexed frame of the health time series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistoryFrame {
    /// Live-relation epoch after the delta this frame describes.
    pub epoch: u64,
    /// WAL sequence number of that delta (0 when unknown).
    pub seq: u64,
    /// Live (non-tombstoned) row count after the delta.
    pub rows: u64,
    /// Per-FD samples; empty when the epoch fell between strides.
    pub samples: Vec<FdSample>,
    /// Drift events caused by the delta (always recorded).
    pub drifts: Vec<DriftEntry>,
    /// Alert transitions caused by the delta (always recorded).
    pub alerts: Vec<AlertEntry>,
}

impl HistoryFrame {
    /// True iff the frame carries no information worth journaling.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty() && self.drifts.is_empty() && self.alerts.is_empty()
    }

    fn encode(&self) -> std::result::Result<Vec<u8>, String> {
        let mut e = Encoder::new();
        e.u64(self.epoch);
        e.u64(self.seq);
        e.u64(self.rows);
        e.u32(checked_count(self.samples.len(), "sample count")?);
        for s in &self.samples {
            e.str(&s.fd);
            e.f64(s.confidence);
            e.f64(s.g3);
            e.u64(s.violating_groups);
            e.u8(u8::from(s.violated));
        }
        e.u32(checked_count(self.drifts.len(), "drift count")?);
        for d in &self.drifts {
            e.str(&d.fd);
            e.str(&d.kind);
            e.f64(d.confidence_before);
            e.f64(d.confidence_after);
            e.u32(checked_count(d.groups.len(), "group count")?);
            for g in &d.groups {
                e.str(g);
            }
        }
        e.u32(checked_count(self.alerts.len(), "alert count")?);
        for a in &self.alerts {
            e.str(&a.rule);
            e.str(&a.fd);
            e.u8(u8::from(a.fired));
        }
        Ok(e.into_bytes())
    }

    fn decode(payload: &[u8]) -> std::result::Result<HistoryFrame, String> {
        let mut d = Decoder::new(payload);
        let err = |e: crate::codec::DecodeError| e.to_string();
        let epoch = d.u64("epoch").map_err(err)?;
        let seq = d.u64("seq").map_err(err)?;
        let rows = d.u64("rows").map_err(err)?;
        let n = d.u32("sample count").map_err(err)? as usize;
        let mut samples = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            samples.push(FdSample {
                fd: d.str("sample fd").map_err(err)?,
                confidence: d.f64("confidence").map_err(err)?,
                g3: d.f64("g3").map_err(err)?,
                violating_groups: d.u64("violating groups").map_err(err)?,
                violated: d.u8("violated flag").map_err(err)? != 0,
            });
        }
        let n = d.u32("drift count").map_err(err)? as usize;
        let mut drifts = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            let fd = d.str("drift fd").map_err(err)?;
            let kind = d.str("drift kind").map_err(err)?;
            let confidence_before = d.f64("confidence before").map_err(err)?;
            let confidence_after = d.f64("confidence after").map_err(err)?;
            let g = d.u32("group count").map_err(err)? as usize;
            let mut groups = Vec::with_capacity(g.min(1 << 12));
            for _ in 0..g {
                groups.push(d.str("group key").map_err(err)?);
            }
            drifts.push(DriftEntry { fd, kind, confidence_before, confidence_after, groups });
        }
        let n = d.u32("alert count").map_err(err)? as usize;
        let mut alerts = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            alerts.push(AlertEntry {
                rule: d.str("alert rule").map_err(err)?,
                fd: d.str("alert fd").map_err(err)?,
                fired: d.u8("alert fired flag").map_err(err)? != 0,
            });
        }
        if !d.is_exhausted() {
            return Err(format!("{} trailing bytes after frame", payload.len() - d.position()));
        }
        Ok(HistoryFrame { epoch, seq, rows, samples, drifts, alerts })
    }
}

/// Result of scanning a history file.
#[derive(Debug, Default)]
pub struct HistoryScan {
    /// Every intact frame, in file order.
    pub frames: Vec<HistoryFrame>,
    /// Byte offset of the first torn/invalid frame — the length of the
    /// valid prefix. Equal to the file length when the tail is clean.
    pub valid_len: u64,
    /// True iff bytes past `valid_len` were present (torn tail).
    pub torn: bool,
}

impl HistoryScan {
    /// Epoch of the last intact frame (0 for an empty history).
    pub fn last_epoch(&self) -> u64 {
        self.frames.last().map_or(0, |f| f.epoch)
    }
}

/// Convert a section count to the wire's `u32`, erroring instead of
/// silently truncating — a truncated length field would corrupt every
/// frame after this one on the next scan.
fn checked_count(n: usize, what: &str) -> std::result::Result<u32, String> {
    u32::try_from(n).map_err(|_| format!("{what} {n} overflows the u32 length field"))
}

fn frame_bytes(payload: &[u8]) -> std::result::Result<Vec<u8>, String> {
    // The scan side refuses frames over MAX_FRAME_LEN, so writing one
    // would persist a frame the reader can never get past. Reject it
    // here, before any bytes hit the file.
    if payload.len() > MAX_FRAME_LEN {
        return Err(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame limit",
            payload.len()
        ));
    }
    let len = u32::try_from(payload.len()).map_err(|_| {
        format!("frame payload of {} bytes overflows the u32 length field", payload.len())
    })?;
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Scan a history file: validate the header, decode every intact frame,
/// and report the torn-tail boundary. A missing file is an empty history,
/// not an error (tables created before this format, or with sampling
/// disabled, simply have none).
pub fn scan_history(path: &Path) -> Result<HistoryScan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes).map_err(|e| io_err(path, e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HistoryScan::default()),
        Err(e) => return Err(io_err(path, e)),
    }
    scan_history_bytes(path, &bytes)
}

/// Scan in-memory history bytes (a shipped replica bootstrap) with the
/// same validation as [`scan_history`]. Empty bytes are an empty history.
pub fn scan_history_bytes(path: &Path, bytes: &[u8]) -> Result<HistoryScan> {
    if bytes.is_empty() {
        return Ok(HistoryScan::default());
    }
    let header_len = HISTORY_MAGIC.len() + 4;
    if bytes.len() < header_len || &bytes[..8] != HISTORY_MAGIC {
        return Err(PersistError::CorruptSnapshot {
            path: path.to_path_buf(),
            message: "bad history magic".into(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != HISTORY_VERSION {
        return Err(PersistError::CorruptSnapshot {
            path: path.to_path_buf(),
            message: format!("unsupported history version {version}"),
        });
    }
    let mut scan = HistoryScan { valid_len: header_len as u64, ..HistoryScan::default() };
    let mut pos = header_len;
    while pos + FRAME_HEADER_LEN <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let start = pos + FRAME_HEADER_LEN;
        if len > MAX_FRAME_LEN || start + len > bytes.len() {
            break;
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            break;
        }
        let Ok(frame) = HistoryFrame::decode(payload) else {
            break;
        };
        scan.frames.push(frame);
        pos = start + len;
        scan.valid_len = pos as u64;
    }
    scan.torn = scan.valid_len < bytes.len() as u64;
    Ok(scan)
}

/// Append-only writer over a table's history file.
///
/// Appends are buffered by the OS (no per-frame fsync — the series is
/// regenerable from the WAL tail); [`HistoryWriter::sync`] is called by
/// the store's checkpoint *before* the WAL resets, so every epoch the
/// WAL can no longer replay is durable in the history first.
#[derive(Debug)]
pub struct HistoryWriter {
    path: PathBuf,
    file: File,
    last_epoch: u64,
}

impl HistoryWriter {
    /// Open (or create) the history file at `path`, truncating any torn
    /// tail, and position for appending.
    pub fn open(path: &Path) -> Result<HistoryWriter> {
        let scan = scan_history(path)?;
        if scan.torn {
            let f = OpenOptions::new().write(true).open(path).map_err(|e| io_err(path, e))?;
            f.set_len(scan.valid_len).map_err(|e| io_err(path, e))?;
            f.sync_all().map_err(|e| io_err(path, e))?;
        }
        let mut file =
            OpenOptions::new().create(true).append(true).open(path).map_err(|e| io_err(path, e))?;
        if scan.valid_len == 0 {
            let mut header = Vec::with_capacity(12);
            header.extend_from_slice(HISTORY_MAGIC);
            header.extend_from_slice(&HISTORY_VERSION.to_le_bytes());
            file.write_all(&header).map_err(|e| io_err(path, e))?;
        }
        Ok(HistoryWriter { path: path.to_path_buf(), file, last_epoch: scan.last_epoch() })
    }

    /// Epoch of the last frame on disk (0 for an empty history). Used by
    /// recovery and replica ingest to dedup regenerated frames.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Append one frame. Callers gate on `frame.epoch > last_epoch()` to
    /// keep the series strictly epoch-increasing across replays.
    pub fn append(&mut self, frame: &HistoryFrame) -> Result<()> {
        let history_err = |message| PersistError::History { path: self.path.clone(), message };
        let payload = frame.encode().map_err(history_err)?;
        let bytes = frame_bytes(&payload).map_err(history_err)?;
        self.file.write_all(&bytes).map_err(|e| io_err(&self.path, e))?;
        self.last_epoch = frame.epoch;
        evofd_obs::metrics::HISTORY_FRAMES_TOTAL.inc();
        evofd_obs::metrics::HISTORY_BYTES_TOTAL.add(bytes.len() as u64);
        Ok(())
    }

    /// Flush appended frames to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data().map_err(|e| io_err(&self.path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame(epoch: u64) -> HistoryFrame {
        HistoryFrame {
            epoch,
            seq: epoch + 100,
            rows: 42,
            samples: vec![FdSample {
                fd: "[Zip] -> [City]".into(),
                confidence: 0.98,
                g3: 0.02,
                violating_groups: 3,
                violated: true,
            }],
            drifts: vec![DriftEntry {
                fd: "[Zip] -> [City]".into(),
                kind: "violated".into(),
                confidence_before: 1.0,
                confidence_after: 0.98,
                groups: vec!["10211".into(), "90210".into()],
            }],
            alerts: vec![AlertEntry {
                rule: "FD '[Zip] -> [City]' WHEN confidence < 0.99 FOR 1 EPOCHS".into(),
                fd: "[Zip] -> [City]".into(),
                fired: true,
            }],
        }
    }

    #[test]
    fn frames_round_trip() {
        for frame in [sample_frame(7), HistoryFrame { epoch: 1, ..Default::default() }] {
            let payload = frame.encode().unwrap();
            assert_eq!(HistoryFrame::decode(&payload).unwrap(), frame);
        }
    }

    #[test]
    fn truncated_payloads_error_not_panic() {
        let payload = sample_frame(1).encode().unwrap();
        for cut in 0..payload.len() {
            assert!(HistoryFrame::decode(&payload[..cut]).is_err(), "cut {cut} decoded");
        }
    }

    #[test]
    fn writer_appends_and_scan_reads_back() {
        let dir = tempdir("hist_rw");
        let path = dir.join(HISTORY_FILE);
        let mut w = HistoryWriter::open(&path).unwrap();
        assert_eq!(w.last_epoch(), 0);
        w.append(&sample_frame(1)).unwrap();
        w.append(&sample_frame(2)).unwrap();
        w.sync().unwrap();
        drop(w);

        let scan = scan_history(&path).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert!(!scan.torn);
        assert_eq!(scan.last_epoch(), 2);
        assert_eq!(scan.frames[0], sample_frame(1));

        // Reopen resumes from the durable tail.
        let w = HistoryWriter::open(&path).unwrap();
        assert_eq!(w.last_epoch(), 2);
    }

    #[test]
    fn missing_file_is_empty_history() {
        let dir = tempdir("hist_missing");
        let scan = scan_history(&dir.join(HISTORY_FILE)).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_frame() {
        let dir = tempdir("hist_torn");
        let path = dir.join(HISTORY_FILE);
        let mut w = HistoryWriter::open(&path).unwrap();
        w.append(&sample_frame(1)).unwrap();
        w.append(&sample_frame(2)).unwrap();
        w.sync().unwrap();
        drop(w);

        // Tear the last frame mid-payload.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let scan = scan_history(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert!(scan.torn);

        // Reopen truncates and appends cleanly after the valid prefix.
        let mut w = HistoryWriter::open(&path).unwrap();
        assert_eq!(w.last_epoch(), 1);
        w.append(&sample_frame(2)).unwrap();
        drop(w);
        let scan = scan_history(&path).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert!(!scan.torn);
    }

    #[test]
    fn corrupt_frame_crc_stops_the_scan() {
        let dir = tempdir("hist_crc");
        let path = dir.join(HISTORY_FILE);
        let mut w = HistoryWriter::open(&path).unwrap();
        w.append(&sample_frame(1)).unwrap();
        w.append(&sample_frame(2)).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_history(&path).unwrap();
        assert_eq!(scan.frames.len(), 1, "flipped byte invalidates frame 2");
        assert!(scan.torn);
    }

    #[test]
    fn bad_magic_is_an_error() {
        let dir = tempdir("hist_magic");
        let path = dir.join(HISTORY_FILE);
        std::fs::write(&path, b"NOTHIST!").unwrap();
        assert!(scan_history(&path).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample_frame(9).encode().unwrap(), sample_frame(9).encode().unwrap());
    }

    #[test]
    fn oversized_frame_errors_without_writing() {
        let dir = tempdir("hist_oversize");
        let path = dir.join(HISTORY_FILE);
        let mut w = HistoryWriter::open(&path).unwrap();
        w.append(&sample_frame(1)).unwrap();
        let durable_len = {
            w.sync().unwrap();
            std::fs::metadata(&path).unwrap().len()
        };

        // A single drift carrying more than MAX_FRAME_LEN bytes of group
        // keys must be rejected as a hard error, not silently truncated.
        let mut huge = HistoryFrame { epoch: 2, ..Default::default() };
        huge.drifts.push(DriftEntry {
            fd: "[A] -> [B]".into(),
            kind: "violated".into(),
            confidence_before: 1.0,
            confidence_after: 0.5,
            groups: vec!["k".repeat(1 << 20); 17],
        });
        let err = w.append(&huge).unwrap_err();
        assert!(
            err.to_string().contains("frame limit"),
            "expected a framing-limit error, got: {err}"
        );

        // Nothing reached the file: the journal still ends at the last
        // good frame and stays scannable.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), durable_len);
        let scan = scan_history(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert!(!scan.torn);
        assert_eq!(w.last_epoch(), 1, "failed append must not advance the epoch");
    }

    #[test]
    fn checked_count_guards_the_u32_boundary() {
        assert_eq!(checked_count(0, "x").unwrap(), 0);
        assert_eq!(checked_count(u32::MAX as usize, "x").unwrap(), u32::MAX);
        let err = checked_count(u32::MAX as usize + 1, "sample count").unwrap_err();
        assert!(err.contains("sample count"), "{err}");
        assert!(err.contains("overflows"), "{err}");
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("evofd_history_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
