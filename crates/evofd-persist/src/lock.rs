//! [`DirLock`]: a PID-stamped lock file guarding a table directory.
//!
//! Two processes opening the same table directory would interleave WAL
//! appends and snapshot renames and corrupt both views of the data, so
//! [`crate::DurableRelation`] acquires a `LOCK` file on create/open and
//! releases it on drop. The file holds the owner's PID in ASCII; a lock
//! whose owner is provably dead is considered **stale** and silently
//! reclaimed — a `kill -9` must not brick the table forever. Liveness is
//! probed via `/proc/<pid>` on Linux and a `kill(pid, 0)`-style signal-0
//! probe on other Unixes (so non-Linux builds neither treat every lock
//! as permanently held nor reclaim live ones). When liveness cannot be
//! determined at all (non-Unix, no procfs), the lock is treated as held:
//! refusing spuriously is safer than double-opening.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::{io_err, PersistError, Result};

/// Lock file name inside a table directory.
pub const LOCK_FILE: &str = "LOCK";

/// An exclusive hold on one table directory, released on drop.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

/// `kill(pid, 0)` liveness probe: signal 0 performs permission and
/// existence checks without delivering anything. `ESRCH` = no such
/// process; success or `EPERM` = the process exists.
#[cfg(unix)]
fn kill_probe(pid: u32) -> Option<bool> {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    if pid == 0 || pid > i32::MAX as u32 {
        // 0 would signal our own process group; beyond i32 would turn
        // negative (a process-group kill). Neither is a real PID written
        // by `DirLock::acquire` — provably not a live single process.
        return Some(false);
    }
    const ESRCH: i32 = 3;
    // SAFETY: signal 0 delivers nothing; `kill` is async-signal-safe and
    // has no preconditions beyond a valid libc linkage.
    let rc = unsafe { kill(pid as i32, 0) };
    if rc == 0 {
        Some(true)
    } else {
        match std::io::Error::last_os_error().raw_os_error() {
            Some(ESRCH) => Some(false),
            _ => Some(true), // EPERM and friends: the process exists
        }
    }
}

/// Best-effort liveness test for a PID. `None` = cannot tell.
fn pid_alive(pid: u32) -> Option<bool> {
    #[cfg(target_os = "linux")]
    if Path::new("/proc/self").exists() {
        return Some(Path::new(&format!("/proc/{pid}")).exists());
    }
    #[cfg(unix)]
    return kill_probe(pid);
    #[cfg(not(unix))]
    {
        let _ = pid;
        None // undecidable: treat the lock as held
    }
}

impl DirLock {
    /// Acquire the lock for `dir`, creating the directory if needed.
    /// Fails with [`PersistError::Locked`] if another live process (or
    /// this one, through another handle) already holds it; a stale lock
    /// left by a dead process is reclaimed.
    pub fn acquire(dir: &Path) -> Result<DirLock> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let path = dir.join(LOCK_FILE);
        for attempt in 0..2 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    // Write our PID so a later claimant can test liveness.
                    write!(file, "{}", std::process::id()).map_err(|e| io_err(&path, e))?;
                    file.sync_all().map_err(|e| io_err(&path, e))?;
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder: Option<u32> =
                        std::fs::read_to_string(&path).ok().and_then(|s| s.trim().parse().ok());
                    let stale = match holder {
                        // Unreadable/garbled owner: assume held (safe side).
                        None => false,
                        Some(pid) if pid == std::process::id() => false,
                        Some(pid) => matches!(pid_alive(pid), Some(false)),
                    };
                    if stale && attempt == 0 {
                        // Reclaim via rename-then-delete so two claimants
                        // racing on the same stale file cannot BOTH win:
                        // exactly one rename succeeds, and the loser never
                        // deletes the winner's freshly created lock.
                        let tomb = dir.join(format!("{LOCK_FILE}.stale.{}", std::process::id()));
                        if std::fs::rename(&path, &tomb).is_ok() {
                            let _ = std::fs::remove_file(&tomb);
                        }
                        continue; // retry create_new; losers see AlreadyExists
                    }
                    return Err(PersistError::Locked { path, pid: holder.unwrap_or(0) });
                }
                Err(e) => return Err(io_err(&path, e)),
            }
        }
        Err(PersistError::Locked { path, pid: 0 })
    }

    /// The lock file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("evofd_persist_lock_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn acquire_conflict_release_cycle() {
        let dir = tmpdir("cycle");
        let lock = DirLock::acquire(&dir).unwrap();
        assert!(lock.path().exists());
        // A second claim from the same (live) process is refused.
        let err = DirLock::acquire(&dir).unwrap_err();
        assert!(matches!(err, PersistError::Locked { .. }), "{err:?}");
        assert!(err.to_string().contains("locked"), "{err}");
        drop(lock);
        // Released on drop: the directory is claimable again.
        let lock = DirLock::acquire(&dir).unwrap();
        assert!(lock.path().exists());
    }

    #[test]
    fn stale_lock_from_dead_pid_is_reclaimed() {
        // Works on every Unix now: /proc on Linux, kill(pid, 0) elsewhere.
        if cfg!(unix) {
            let dir = tmpdir("stale");
            std::fs::create_dir_all(&dir).unwrap();
            // PIDs near u32::MAX exceed any real pid_max: provably dead.
            std::fs::write(dir.join(LOCK_FILE), "4294967294").unwrap();
            let lock = DirLock::acquire(&dir).unwrap();
            assert!(lock.path().exists());
        }
    }

    #[cfg(unix)]
    #[test]
    fn kill_probe_classifies_live_and_dead_pids() {
        assert_eq!(kill_probe(std::process::id()), Some(true), "we are alive");
        assert_eq!(kill_probe(1), Some(true), "init exists (EPERM still means alive)");
        assert_eq!(kill_probe(4294967294), Some(false), "beyond pid space");
        assert_eq!(kill_probe(0), Some(false), "never a lock owner");
        // A live lock owned by another live process stays held.
        let dir = tmpdir("kill_probe_held");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LOCK_FILE), "1").unwrap();
        assert!(matches!(DirLock::acquire(&dir), Err(PersistError::Locked { .. })));
    }

    #[test]
    fn garbled_lock_file_is_treated_as_held() {
        let dir = tmpdir("garbled");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LOCK_FILE), "not a pid").unwrap();
        assert!(matches!(DirLock::acquire(&dir), Err(PersistError::Locked { .. })));
    }
}
