//! Columnar snapshots: a point-in-time binary image of a
//! [`LiveRelation`]'s **physical** state (dictionaries + coded columns +
//! liveness mask) plus the [`IncrementalValidator`]'s per-FD group-tracker
//! counts.
//!
//! Because the physical layout is preserved exactly — codes, row ids,
//! tombstones — a recovered relation can replay the WAL tail on top and
//! the tracker keys (dictionary-code tuples) stay valid, making recovery
//! O(tail) instead of a full O(rows) recompute of every FD's counts.
//!
//! ## On-disk layout
//!
//! ```text
//! [ magic "EVFDSNP1" (8) ][ version u32 ][ body_len u64 ][ crc32(body) u32 ][ body ]
//! ```
//!
//! The body carries, in order: `last_seq`/`cursor`/`epoch`, the schema,
//! the columns (each dictionary in code order + the code array), the
//! packed liveness bitmap, the validator config, the FDs and the tracker
//! group counts, (since version 2) the advisor session's decision
//! records — so recovery and replica bootstrap restore the designer loop,
//! not just the data — (since version 3) the names of the columns
//! under secondary indexing, so the planner's indexes come back without
//! a WAL replay of the `CREATE INDEX` history, and (since version 4) the
//! alert rules with their runtime state (consecutive-epoch streaks,
//! firing flags), so a kill/reopen neither re-fires a firing alert nor
//! forgets progress toward one. Column bodies are encoded
//! **in parallel** on `mintpool` (one task per column) and concatenated
//! in schema order, so snapshot writing scales with width on wide
//! relations.
//!
//! Snapshots are written to a temp file, synced, then atomically renamed
//! over the previous snapshot — a crash mid-write never destroys the old
//! one.

use std::path::Path;
use std::sync::Arc;

use evofd_core::Fd;
use evofd_incremental::{
    DecisionRecord, GroupCounts, IncrementalValidator, LiveRelation, TrackerSnapshot,
    ValidatorConfig,
};
use evofd_storage::{AttrSet, Column, Field, Relation, Schema};

use crate::alert::AlertState;
use crate::codec::{dtype_from_tag, dtype_tag, Decoder, Encoder};
use crate::crc32::crc32;
use crate::error::{io_err, PersistError, Result};

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"EVFDSNP1";
/// Snapshot format version (2 added the advisor decision section, 3 the
/// indexed-column section, 4 the alert-rule section).
pub const SNAPSHOT_VERSION: u32 = 4;

/// Everything a snapshot restores.
#[derive(Debug)]
pub struct SnapshotState {
    /// The live relation, physical layout identical to what was saved.
    pub live: LiveRelation,
    /// The FDs under incremental validation.
    pub fds: Vec<Fd>,
    /// The validator configuration.
    pub config: ValidatorConfig,
    /// Per-FD tracker group counts, importable without a relation scan.
    pub trackers: Vec<TrackerSnapshot>,
    /// The advisor session's decisions at snapshot time, in decision
    /// order — enough to restore the designer loop without re-running any
    /// proposal search.
    pub decisions: Vec<DecisionRecord>,
    /// Canonical names of the columns under secondary indexing at
    /// snapshot time. Only the **set** is saved — index contents are
    /// derived state the SQL engine rebuilds from the rows on open.
    pub indexed_columns: Vec<String>,
    /// The alert rules and their runtime state at snapshot time.
    pub alerts: AlertState,
    /// The last WAL sequence number folded into this snapshot; replay
    /// skips records at or below it.
    pub last_seq: u64,
    /// The application stream cursor at snapshot time.
    pub cursor: u64,
}

fn corrupt(path: &Path, message: impl Into<String>) -> PersistError {
    PersistError::CorruptSnapshot { path: path.to_path_buf(), message: message.into() }
}

/// Encode one column's body: dictionary values in code order, then codes.
fn encode_column(col: &Column) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u32(col.dict().len() as u32);
    for v in col.dict().values() {
        e.value(v);
    }
    for row in 0..col.len() {
        e.u32(col.code_at(row));
    }
    e.into_bytes()
}

/// Serialize the full state into bytes (header + body). Exposed for
/// tests; [`write_snapshot`] adds the atomic temp-file/rename dance.
pub fn encode_snapshot(
    live: &LiveRelation,
    validator: &IncrementalValidator,
    decisions: &[DecisionRecord],
    indexed_columns: &[String],
    alerts: &AlertState,
    last_seq: u64,
    cursor: u64,
) -> Vec<u8> {
    let rel = live.relation();
    let mut body = Encoder::new();
    body.u64(last_seq);
    body.u64(cursor);
    body.u64(live.epoch());

    // Schema.
    let schema = rel.schema();
    body.str(schema.name());
    body.u32(schema.arity() as u32);
    for f in schema.fields() {
        body.str(&f.name);
        body.u8(dtype_tag(f.dtype));
        body.u8(u8::from(f.nullable));
    }

    // Columns: per-column parallel encode, sequential concatenation in
    // schema order (each prefixed with its byte length).
    body.u64(rel.row_count() as u64);
    let encoded: Vec<Vec<u8>> = mintpool::par_map(rel.columns(), encode_column);
    for col_bytes in &encoded {
        body.u64(col_bytes.len() as u64);
        body.raw(col_bytes);
    }

    // Liveness bitmap, packed LSB-first.
    let mask = live.live_mask();
    let mut packed = vec![0u8; mask.len().div_ceil(8)];
    for (i, &alive) in mask.iter().enumerate() {
        if alive {
            packed[i / 8] |= 1 << (i % 8);
        }
    }
    body.raw(&packed);

    // Validator config.
    let config = validator.config();
    body.f64(config.full_recompute_fraction);
    body.u32(config.confidence_thresholds.len() as u32);
    for &t in &config.confidence_thresholds {
        body.f64(t);
    }

    // FDs and tracker counts.
    let fds = validator.fds();
    let trackers = validator.export_trackers();
    body.u32(fds.len() as u32);
    for (fd, tracker) in fds.iter().zip(&trackers) {
        for set in [fd.lhs(), fd.rhs()] {
            body.u32(set.len() as u32);
            for a in set.iter() {
                body.u32(a.index() as u32);
            }
        }
        // An approx (memory-bounded) tracker has no exact groups to save;
        // the u32::MAX group-count marker records that fact so recovery
        // rebuilds it from live rows instead of trusting empty counts.
        // Exact trackers encode exactly as before the marker existed.
        if tracker.approx {
            body.u32(u32::MAX);
            continue;
        }
        body.u32(tracker.groups.len() as u32);
        for g in &tracker.groups {
            body.u32(g.lhs_key.len() as u32);
            for &c in &g.lhs_key {
                body.u32(c);
            }
            body.u32(g.rhs.len() as u32);
            for (rkey, n) in &g.rhs {
                body.u32(rkey.len() as u32);
                for &c in rkey {
                    body.u32(c);
                }
                body.u32(*n);
            }
        }
    }

    // Advisor decision records (version 2).
    body.u32(decisions.len() as u32);
    for record in decisions {
        crate::wal::encode_decision(&mut body, record);
    }

    // Indexed columns (version 3): the set only, never the contents.
    body.u32(indexed_columns.len() as u32);
    for col in indexed_columns {
        body.str(col);
    }

    // Alert rules + runtime (version 4).
    alerts.encode(&mut body);

    let body = body.into_bytes();
    let mut out = Vec::with_capacity(24 + body.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode snapshot bytes. `path` is only used for error messages.
pub fn decode_snapshot(path: &Path, bytes: &[u8]) -> Result<SnapshotState> {
    if bytes.len() < 24 {
        return Err(corrupt(path, "shorter than the header"));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt(path, "bad magic (not an evofd snapshot)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if !(1..=SNAPSHOT_VERSION).contains(&version) {
        return Err(corrupt(path, format!("unsupported version {version}")));
    }
    let body_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let body = bytes.get(24..24 + body_len).ok_or_else(|| corrupt(path, "truncated body"))?;
    if crc32(body) != crc {
        return Err(corrupt(path, "checksum mismatch"));
    }

    let mut d = Decoder::new(body);
    let fail = |e: crate::codec::DecodeError| corrupt(path, e.to_string());

    let last_seq = d.u64("last_seq").map_err(fail)?;
    let cursor = d.u64("cursor").map_err(fail)?;
    let epoch = d.u64("epoch").map_err(fail)?;

    // Schema.
    let name = d.str("schema name").map_err(fail)?;
    let arity = d.u32("arity").map_err(fail)? as usize;
    let mut fields = Vec::with_capacity(arity.min(1 << 12));
    for _ in 0..arity {
        let fname = d.str("field name").map_err(fail)?;
        let dtype = dtype_from_tag(d.u8("field type").map_err(fail)?)
            .ok_or_else(|| corrupt(path, "unknown field type tag"))?;
        let nullable = d.u8("nullable flag").map_err(fail)? != 0;
        fields.push(Field { name: fname, dtype, nullable });
    }
    let schema: Arc<Schema> = Schema::new(name, fields)
        .map_err(|e| corrupt(path, format!("invalid schema: {e}")))?
        .into_shared();

    // Columns.
    let row_count = d.u64("row count").map_err(fail)? as usize;
    let mut columns = Vec::with_capacity(schema.arity());
    for field in schema.fields() {
        let _col_len = d.u64("column length").map_err(fail)?;
        let dict_len = d.u32("dict length").map_err(fail)? as usize;
        let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
        for _ in 0..dict_len {
            dict.push(d.value("dict value").map_err(fail)?);
        }
        let mut codes = Vec::with_capacity(row_count.min(1 << 24));
        for _ in 0..row_count {
            codes.push(d.u32("code").map_err(fail)?);
        }
        let col = Column::from_parts(field.name.clone(), field.dtype, dict, codes)
            .map_err(|e| corrupt(path, format!("invalid column: {e}")))?;
        columns.push(col);
    }
    let rel = Relation::from_parts(schema, columns)
        .map_err(|e| corrupt(path, format!("invalid relation: {e}")))?;

    // Liveness bitmap.
    let mut mask = Vec::with_capacity(row_count);
    let mut packed_byte = 0u8;
    for i in 0..row_count {
        if i % 8 == 0 {
            packed_byte = d.u8("liveness bitmap").map_err(fail)?;
        }
        mask.push(packed_byte & (1 << (i % 8)) != 0);
    }
    let live = LiveRelation::from_parts(rel, mask, epoch)
        .map_err(|e| corrupt(path, format!("invalid live state: {e}")))?;

    // Validator config.
    let full_recompute_fraction = d.f64("recompute fraction").map_err(fail)?;
    let n_thresholds = d.u32("threshold count").map_err(fail)? as usize;
    let mut confidence_thresholds = Vec::with_capacity(n_thresholds.min(1 << 10));
    for _ in 0..n_thresholds {
        confidence_thresholds.push(d.f64("threshold").map_err(fail)?);
    }
    // `tracker_memory_limit` is session configuration, not persisted:
    // snapshots always decode with no bound and the caller re-applies one.
    let config = ValidatorConfig {
        full_recompute_fraction,
        confidence_thresholds,
        tracker_memory_limit: None,
    };

    // FDs and tracker counts.
    let n_fds = d.u32("fd count").map_err(fail)? as usize;
    let mut fds = Vec::with_capacity(n_fds.min(1 << 12));
    let mut trackers = Vec::with_capacity(n_fds.min(1 << 12));
    for _ in 0..n_fds {
        let mut sets = Vec::with_capacity(2);
        for what in ["lhs", "rhs"] {
            let n = d.u32("attr count").map_err(fail)? as usize;
            let mut ids = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                let id = d.u32("attr id").map_err(fail)? as usize;
                if id >= live.schema().arity() {
                    return Err(corrupt(path, format!("FD {what} attribute out of range")));
                }
                ids.push(id);
            }
            sets.push(AttrSet::from_indices(ids));
        }
        let rhs = sets.pop().expect("two sets");
        let lhs = sets.pop().expect("two sets");
        let fd = Fd::new(lhs, rhs).map_err(|e| corrupt(path, format!("invalid FD: {e}")))?;
        fds.push(fd);

        let n_groups_raw = d.u32("group count").map_err(fail)?;
        if n_groups_raw == u32::MAX {
            trackers.push(TrackerSnapshot { groups: Vec::new(), approx: true });
            continue;
        }
        let n_groups = n_groups_raw as usize;
        let mut groups = Vec::with_capacity(n_groups.min(1 << 24));
        for _ in 0..n_groups {
            let klen = d.u32("lhs key length").map_err(fail)? as usize;
            let mut lhs_key = Vec::with_capacity(klen.min(1 << 12));
            for _ in 0..klen {
                lhs_key.push(d.u32("lhs key code").map_err(fail)?);
            }
            let n_rhs = d.u32("rhs count").map_err(fail)? as usize;
            let mut rhs = Vec::with_capacity(n_rhs.min(1 << 20));
            for _ in 0..n_rhs {
                let rlen = d.u32("rhs key length").map_err(fail)? as usize;
                let mut rkey = Vec::with_capacity(rlen.min(1 << 12));
                for _ in 0..rlen {
                    rkey.push(d.u32("rhs key code").map_err(fail)?);
                }
                let n = d.u32("group row count").map_err(fail)?;
                rhs.push((rkey, n));
            }
            groups.push(GroupCounts { lhs_key, rhs });
        }
        trackers.push(TrackerSnapshot { groups, approx: false });
    }

    // Advisor decision records (version 2; a v1 body simply ends here —
    // it decodes as a session with no decisions).
    let mut decisions = Vec::new();
    if version >= 2 {
        let n_decisions = d.u32("decision count").map_err(fail)? as usize;
        decisions.reserve(n_decisions.min(1 << 16));
        for _ in 0..n_decisions {
            let record = crate::wal::decode_decision(&mut d)
                .ok_or_else(|| corrupt(path, "malformed decision record"))?;
            decisions.push(record);
        }
    }
    // Indexed columns (version 3; older bodies decode as no indexes).
    let mut indexed_columns = Vec::new();
    if version >= 3 {
        let n_indexes = d.u32("index count").map_err(fail)? as usize;
        indexed_columns.reserve(n_indexes.min(1 << 12));
        for _ in 0..n_indexes {
            let col = d.str("indexed column").map_err(fail)?;
            if live.schema().resolve(&col).is_err() {
                return Err(corrupt(path, format!("indexed column `{col}` is not in the schema")));
            }
            indexed_columns.push(col);
        }
    }
    // Alert rules + runtime (version 4; older bodies decode as no rules).
    let mut alerts = AlertState::new();
    if version >= 4 {
        alerts = AlertState::decode(&mut d).map_err(|e| corrupt(path, e))?;
    }
    if !d.is_exhausted() {
        return Err(corrupt(path, "trailing bytes after the alert section"));
    }

    Ok(SnapshotState {
        live,
        fds,
        config,
        trackers,
        decisions,
        indexed_columns,
        alerts,
        last_seq,
        cursor,
    })
}

/// Write a snapshot atomically: temp file, `fsync`, rename over `path`,
/// `fsync` the directory.
#[allow(clippy::too_many_arguments)]
pub fn write_snapshot(
    path: &Path,
    live: &LiveRelation,
    validator: &IncrementalValidator,
    decisions: &[DecisionRecord],
    indexed_columns: &[String],
    alerts: &AlertState,
    last_seq: u64,
    cursor: u64,
) -> Result<()> {
    let bytes =
        encode_snapshot(live, validator, decisions, indexed_columns, alerts, last_seq, cursor);
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        use std::io::Write;
        file.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
        file.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all(); // best-effort directory durability
        }
    }
    Ok(())
}

/// Read and decode a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<SnapshotState> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    decode_snapshot(path, &bytes)
}

/// Read only a snapshot's `(last_seq, cursor)` header fields — a cheap
/// position probe (40 bytes) that does not decode or checksum the body.
/// Safe against partial files because snapshots are written atomically
/// (temp + rename): an existing snapshot file is always complete.
pub fn read_snapshot_position(path: &Path) -> Result<(u64, u64)> {
    use std::io::Read;
    let mut file = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
    let mut head = [0u8; 40];
    file.read_exact(&mut head).map_err(|e| io_err(path, e))?;
    if head[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt(path, "bad magic (not an evofd snapshot)"));
    }
    let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
    if !(1..=SNAPSHOT_VERSION).contains(&version) {
        return Err(corrupt(path, format!("unsupported version {version}")));
    }
    let last_seq = u64::from_le_bytes(head[24..32].try_into().expect("8 bytes"));
    let cursor = u64::from_le_bytes(head[32..40].try_into().expect("8 bytes"));
    Ok((last_seq, cursor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_incremental::Delta;
    use evofd_storage::{relation_of_strs, Value};

    fn srow(a: &str, b: &str) -> Vec<Value> {
        vec![Value::str(a), Value::str(b)]
    }

    fn setup() -> (LiveRelation, IncrementalValidator) {
        let rel = relation_of_strs(
            "t",
            &["X", "Y"],
            &[&["a", "1"], &["b", "2"], &["a", "1"], &["c", "3"]],
        )
        .unwrap();
        let fds = vec![
            Fd::parse(rel.schema(), "X -> Y").unwrap(),
            Fd::parse(rel.schema(), "Y -> X").unwrap(),
        ];
        let mut live = LiveRelation::new(rel);
        let mut v = IncrementalValidator::new(&live, fds);
        // Mutate so tombstones, appended rows and violations all exist.
        let applied = live.apply(&Delta::inserting(vec![srow("a", "9")])).unwrap();
        v.apply(&live, &applied);
        let applied = live.apply(&Delta::deleting([1])).unwrap();
        v.apply(&live, &applied);
        (live, v)
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let (live, v) = setup();
        let decisions = vec![
            DecisionRecord {
                fd: "[X] -> [Y]".into(),
                action: evofd_incremental::DecisionAction::Accept {
                    proposal: 0,
                    evolved: "[X, Z] -> [Y]".into(),
                },
            },
            DecisionRecord {
                fd: "[Y] -> [X]".into(),
                action: evofd_incremental::DecisionAction::Keep,
            },
        ];
        let indexed = vec!["Y".to_string()];
        let mut alerts = AlertState::new();
        alerts.install(vec![crate::alert::AlertRule::parse(
            "FD '[X] -> [Y]' WHEN confidence < 0.9 FOR 2 EPOCHS",
        )
        .unwrap()]);
        alerts.evaluate(|_| Some((0.5, 0.5, 1u64)));
        let bytes = encode_snapshot(&live, &v, &decisions, &indexed, &alerts, 7, 42);
        let state = decode_snapshot(Path::new("mem"), &bytes).unwrap();
        assert_eq!(state.last_seq, 7);
        assert_eq!(state.cursor, 42);
        assert_eq!(state.indexed_columns, indexed, "index set survives the round trip");
        assert_eq!(state.alerts, alerts, "alert rules + runtime survive the round trip");
        assert_eq!(state.live.epoch(), live.epoch());
        assert_eq!(state.live.live_mask(), live.live_mask());
        assert_eq!(state.live.row_count(), live.row_count());
        assert_eq!(state.fds, v.fds());
        assert_eq!(state.decisions, decisions, "advisor session survives the round trip");
        // Physical layout: identical codes and dictionaries per column.
        for (a, b) in live.relation().columns().iter().zip(state.live.relation().columns()) {
            assert_eq!(a.codes(), b.codes());
            assert_eq!(a.dict().values(), b.dict().values());
        }
        // The validator rebuilt from the snapshot matches the original.
        let rebuilt = IncrementalValidator::from_tracker_snapshots(
            &state.live,
            state.fds.clone(),
            state.config.clone(),
            &state.trackers,
        )
        .unwrap();
        for i in 0..v.fds().len() {
            assert_eq!(rebuilt.measures(i), v.measures(i));
            assert_eq!(rebuilt.summary(i).violating_rows, v.summary(i).violating_rows);
        }
    }

    #[test]
    fn approx_trackers_round_trip_via_marker() {
        let (live, mut v) = setup();
        // Degrade every tracker via the session memory bound.
        let config = ValidatorConfig { tracker_memory_limit: Some(1), ..v.config().clone() };
        v.set_config(config.clone());
        assert!(v.is_approx(0) && v.is_approx(1), "a 1-byte bound degrades both");

        let bytes = encode_snapshot(&live, &v, &[], &[], &AlertState::new(), 1, 0);
        let state = decode_snapshot(Path::new("mem"), &bytes).unwrap();
        assert!(
            state.trackers.iter().all(|t| t.approx && t.groups.is_empty()),
            "approx trackers persist only the marker"
        );
        // The limit is session config: the decoded config never carries it.
        assert_eq!(state.config.tracker_memory_limit, None);

        // Re-applying the limit reproduces the original sketch state —
        // it is a pure function of the live multiset and the bound.
        let rebuilt = IncrementalValidator::from_tracker_snapshots(
            &state.live,
            state.fds.clone(),
            config,
            &state.trackers,
        )
        .unwrap();
        for i in 0..v.fds().len() {
            assert!(rebuilt.is_approx(i));
            assert_eq!(rebuilt.measures(i), v.measures(i));
        }

        // Without a limit, recovery rebuilds exact state from live rows.
        let exact = IncrementalValidator::from_tracker_snapshots(
            &state.live,
            state.fds.clone(),
            state.config.clone(),
            &state.trackers,
        )
        .unwrap();
        let fresh = IncrementalValidator::new(&state.live, state.fds.clone());
        assert_eq!(exact.export_trackers(), fresh.export_trackers());
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let (live, v) = setup();
        assert_eq!(
            encode_snapshot(&live, &v, &[], &[], &AlertState::new(), 1, 0),
            encode_snapshot(&live, &v, &[], &[], &AlertState::new(), 1, 0),
            "canonical tracker order makes equal states byte-identical"
        );
    }

    #[test]
    fn file_round_trip_and_atomic_overwrite() {
        let dir = std::env::temp_dir().join("evofd_persist_snap_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.bin");
        let (live, v) = setup();
        write_snapshot(&path, &live, &v, &[], &[], &AlertState::new(), 3, 0).unwrap();
        let first = read_snapshot(&path).unwrap();
        assert_eq!(first.last_seq, 3);
        // Overwrite with newer state; the temp file must be gone.
        write_snapshot(&path, &live, &v, &[], &[], &AlertState::new(), 4, 9).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let second = read_snapshot(&path).unwrap();
        assert_eq!(second.last_seq, 4);
        assert_eq!(second.cursor, 9);
        // The cheap position probe agrees with the full decode.
        assert_eq!(read_snapshot_position(&path).unwrap(), (4, 9));
    }

    #[test]
    fn older_snapshot_versions_still_decode() {
        let (live, v) = setup();
        let v4 = encode_snapshot(&live, &v, &[], &[], &AlertState::new(), 3, 4);
        let body_len = u64::from_le_bytes(v4[12..20].try_into().unwrap()) as usize;
        let body = &v4[24..24 + body_len];
        // A v3 image lacks the trailing (empty) alert section; a v2 image
        // additionally lacks the (empty) index section; a v1 image also
        // lacks the (empty) decision section. All are 4-byte u32 counts
        // here, so truncate-and-restamp builds the old formats —
        // pre-upgrade table dirs must keep opening.
        let stamp = |version: u32, body: &[u8]| {
            let mut img = Vec::new();
            img.extend_from_slice(&SNAPSHOT_MAGIC);
            img.extend_from_slice(&version.to_le_bytes());
            img.extend_from_slice(&(body.len() as u64).to_le_bytes());
            img.extend_from_slice(&crc32(body).to_le_bytes());
            img.extend_from_slice(body);
            img
        };
        for (version, cut) in [(3u32, 4usize), (2, 8), (1, 12)] {
            let img = stamp(version, &body[..body.len() - cut]);
            let state = decode_snapshot(Path::new("mem"), &img).unwrap();
            assert!(state.decisions.is_empty(), "v{version}");
            assert!(state.indexed_columns.is_empty(), "v{version}");
            assert!(state.alerts.rules.is_empty(), "v{version}");
            assert_eq!(state.last_seq, 3);
            assert_eq!(state.cursor, 4);
            assert_eq!(state.fds, v.fds());
            assert_eq!(state.live.row_count(), live.row_count());
        }
        // Future versions stay rejected.
        let mut v9 = v4.clone();
        v9[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(decode_snapshot(Path::new("mem"), &v9).is_err());
    }

    #[test]
    fn corruption_detected() {
        let (live, v) = setup();
        let good = encode_snapshot(&live, &v, &[], &[], &AlertState::new(), 1, 0);
        // Flip every byte of the body one at a time — all must be caught
        // (header flips change magic/version/len/crc, body flips fail crc).
        let mut bytes = good.clone();
        for off in [0usize, 9, 14, 21, 30, good.len() - 1] {
            bytes[off] ^= 0xFF;
            assert!(
                decode_snapshot(Path::new("mem"), &bytes).is_err(),
                "flip at byte {off} accepted"
            );
            bytes[off] ^= 0xFF;
        }
        // Truncations at every length are rejected.
        for cut in 0..good.len() {
            assert!(
                decode_snapshot(Path::new("mem"), &good[..cut]).is_err(),
                "truncation to {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn empty_relation_snapshot() {
        let rel = relation_of_strs("t", &["X", "Y"], &[]).unwrap();
        let live = LiveRelation::new(rel);
        let v = IncrementalValidator::new(&live, vec![Fd::parse(live.schema(), "X -> Y").unwrap()]);
        let bytes = encode_snapshot(&live, &v, &[], &[], &AlertState::new(), 0, 0);
        let state = decode_snapshot(Path::new("mem"), &bytes).unwrap();
        assert_eq!(state.live.row_count(), 0);
        assert_eq!(state.trackers[0].groups.len(), 0);
    }
}
