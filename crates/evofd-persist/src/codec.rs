//! Byte-level encoding shared by the WAL and the snapshot format.
//!
//! Everything is little-endian and length-prefixed; [`Value`]s carry a
//! one-byte type tag. The decoder never panics on malformed input — every
//! read returns a descriptive error the caller wraps into its corrupt-
//! file variant (for the WAL, a decode failure at the tail means a torn
//! write, not corruption).

use evofd_storage::{DataType, Value};

/// Decoder errors: what the reader expected and where it stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub at: usize,
    /// What was being decoded.
    pub what: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "truncated or malformed {} at byte {}", self.what, self.at)
    }
}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh empty buffer.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Consume and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an f64 by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write a length-prefixed byte blob (see [`Decoder::bytes`]).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Write a tagged [`Value`].
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(u8::from(*b));
            }
            Value::Int(i) => {
                self.u8(2);
                self.buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(x) => {
                self.u8(3);
                self.f64(*x);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
        }
    }
}

/// Forward-only decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = std::result::Result<T, DecodeError>;

impl<'a> Decoder<'a> {
    /// Decode from the start of a slice.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True iff every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> DecodeResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(DecodeError { at: self.pos, what })?;
        if end > self.buf.len() {
            return Err(DecodeError { at: self.pos, what });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> DecodeResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self, what: &'static str) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self, what: &'static str) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Read an f64 by bit pattern.
    pub fn f64(&mut self, what: &'static str) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> DecodeResult<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError { at: self.pos, what })
    }

    /// Read a length-prefixed byte blob (the dual of [`Encoder::str`]'s
    /// framing for non-UTF-8 payloads, e.g. shipped snapshot images).
    pub fn bytes(&mut self, what: &'static str) -> DecodeResult<Vec<u8>> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    /// Read a tagged [`Value`].
    pub fn value(&mut self, what: &'static str) -> DecodeResult<Value> {
        match self.u8(what)? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.u8(what)? != 0)),
            2 => {
                let bytes = self.take(8, what)?;
                Ok(Value::Int(i64::from_le_bytes(bytes.try_into().expect("8 bytes"))))
            }
            3 => Ok(Value::Float(self.f64(what)?)),
            4 => Ok(Value::str(self.str(what)?)),
            _ => Err(DecodeError { at: self.pos, what }),
        }
    }
}

/// Encode a [`DataType`] as one byte.
pub fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

/// Decode a [`DataType`] tag.
pub fn dtype_from_tag(tag: u8) -> Option<DataType> {
    match tag {
        0 => Some(DataType::Bool),
        1 => Some(DataType::Int),
        2 => Some(DataType::Float),
        3 => Some(DataType::Str),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.f64(-0.5);
        e.str("héllo");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8("a").unwrap(), 7);
        assert_eq!(d.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(d.f64("d").unwrap(), -0.5);
        assert_eq!(d.str("e").unwrap(), "héllo");
        assert!(d.is_exhausted());
    }

    #[test]
    fn value_round_trips() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(f64::NAN),
            Value::str("evolving"),
        ];
        let mut e = Encoder::new();
        for v in &values {
            e.value(v);
        }
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        for v in &values {
            assert_eq!(&d.value("v").unwrap(), v, "total equality: NaN == NaN");
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Encoder::new();
        e.value(&Value::str("long enough to truncate"));
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(d.value("v").is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn bad_tags_rejected() {
        let mut d = Decoder::new(&[9]);
        assert!(d.value("v").is_err());
        assert_eq!(dtype_from_tag(9), None);
        for t in [DataType::Bool, DataType::Int, DataType::Float, DataType::Str] {
            assert_eq!(dtype_from_tag(dtype_tag(t)), Some(t));
        }
    }
}
