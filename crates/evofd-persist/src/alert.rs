//! Declarative FD-health alert rules.
//!
//! `ALERT ON t FD '[Zip] -> [City]' WHEN confidence < 0.98 FOR 5 EPOCHS`
//! journals a rule that is evaluated on the history sampling path: when
//! the watched measure satisfies the comparison for the configured number
//! of *consecutive sampled epochs*, the rule fires — once — into the
//! durable history, the trace ring, a counter family and the drift feed,
//! and stays firing until the condition clears (then it resolves, and can
//! fire again).
//!
//! Following the `FdSet` discipline, only the **rule set** is journaled
//! (as canonical rule text, full-set replacement); the runtime state
//! (consecutive-epoch counters, firing flags, fire counts) rides in the
//! snapshot so a kill/reopen neither re-fires a firing alert nor forgets
//! progress toward one.

use std::fmt;

use crate::codec::{Decoder, Encoder};

/// Which health measure a rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertMetric {
    /// Confidence (1 - g3).
    Confidence,
    /// g3 error measure.
    G3,
    /// Number of violating groups.
    ViolatingGroups,
}

impl AlertMetric {
    fn token(self) -> &'static str {
        match self {
            AlertMetric::Confidence => "confidence",
            AlertMetric::G3 => "g3",
            AlertMetric::ViolatingGroups => "violating_groups",
        }
    }

    fn parse(tok: &str) -> Option<AlertMetric> {
        match tok.to_ascii_lowercase().as_str() {
            "confidence" => Some(AlertMetric::Confidence),
            "g3" => Some(AlertMetric::G3),
            "violating_groups" => Some(AlertMetric::ViolatingGroups),
            _ => None,
        }
    }
}

/// Comparison operator of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl AlertOp {
    fn token(self) -> &'static str {
        match self {
            AlertOp::Lt => "<",
            AlertOp::Le => "<=",
            AlertOp::Gt => ">",
            AlertOp::Ge => ">=",
        }
    }

    fn parse(tok: &str) -> Option<AlertOp> {
        match tok {
            "<" => Some(AlertOp::Lt),
            "<=" => Some(AlertOp::Le),
            ">" => Some(AlertOp::Gt),
            ">=" => Some(AlertOp::Ge),
            _ => None,
        }
    }

    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            AlertOp::Lt => value < threshold,
            AlertOp::Le => value <= threshold,
            AlertOp::Gt => value > threshold,
            AlertOp::Ge => value >= threshold,
        }
    }
}

/// One declarative alert rule, scoped to the table whose journal carries
/// it (rules never name their table — the directory does).
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Display string of the watched FD (e.g. `[Zip] -> [City]`).
    pub fd: String,
    /// The measure compared.
    pub metric: AlertMetric,
    /// The comparison.
    pub op: AlertOp,
    /// The threshold.
    pub threshold: f64,
    /// Consecutive sampled epochs the condition must hold before firing
    /// (at least 1).
    pub for_epochs: u64,
}

impl fmt::Display for AlertRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FD '{}' WHEN {} {} {} FOR {} EPOCHS",
            self.fd,
            self.metric.token(),
            self.op.token(),
            self.threshold,
            self.for_epochs
        )
    }
}

impl AlertRule {
    /// Parse canonical rule text, the inverse of [`fmt::Display`]. The
    /// grammar is `FD '<fd>' WHEN <metric> <op> <threshold> FOR <n>
    /// EPOCHS`; keywords are case-insensitive, the FD string is quoted
    /// with single quotes and taken verbatim.
    pub fn parse(text: &str) -> Result<AlertRule, String> {
        let rest = text.trim();
        let rest = strip_keyword(rest, "FD").ok_or("expected FD '<fd>'")?;
        let rest = rest.trim_start();
        let rest = rest.strip_prefix('\'').ok_or("expected quoted FD after FD")?;
        let (fd, rest) = rest.split_once('\'').ok_or("unterminated FD quote")?;
        if fd.is_empty() {
            return Err("empty FD".into());
        }
        let rest = strip_keyword(rest.trim_start(), "WHEN").ok_or("expected WHEN")?;
        let mut toks = rest.split_whitespace();
        let metric = AlertMetric::parse(toks.next().ok_or("expected metric")?)
            .ok_or("unknown metric (confidence | g3 | violating_groups)")?;
        let op = AlertOp::parse(toks.next().ok_or("expected comparison")?)
            .ok_or("unknown comparison (< <= > >=)")?;
        let threshold: f64 = toks
            .next()
            .ok_or("expected threshold")?
            .parse()
            .map_err(|_| "threshold is not a number".to_string())?;
        if !threshold.is_finite() {
            return Err("threshold must be finite".into());
        }
        let for_epochs = match toks.next() {
            None => 1,
            Some(kw) if kw.eq_ignore_ascii_case("FOR") => {
                let n: u64 = toks
                    .next()
                    .ok_or("expected epoch count after FOR")?
                    .parse()
                    .map_err(|_| "epoch count is not an integer".to_string())?;
                if n == 0 {
                    return Err("FOR 0 EPOCHS is meaningless (use FOR 1)".into());
                }
                match toks.next() {
                    Some(kw)
                        if kw.eq_ignore_ascii_case("EPOCHS")
                            || kw.eq_ignore_ascii_case("EPOCH") =>
                    {
                        n
                    }
                    _ => return Err("expected EPOCHS after the count".into()),
                }
            }
            Some(other) => return Err(format!("unexpected token `{other}`")),
        };
        if toks.next().is_some() {
            return Err("trailing tokens after EPOCHS".into());
        }
        Ok(AlertRule { fd: fd.to_string(), metric, op, threshold, for_epochs })
    }

    /// Evaluate the comparison against one sampled measure set.
    fn holds(&self, confidence: f64, g3: f64, violating_groups: u64) -> bool {
        let value = match self.metric {
            AlertMetric::Confidence => confidence,
            AlertMetric::G3 => g3,
            AlertMetric::ViolatingGroups => violating_groups as f64,
        };
        self.op.holds(value, self.threshold)
    }
}

fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let s = s.trim_start();
    if s.len() >= kw.len() && s[..kw.len()].eq_ignore_ascii_case(kw) {
        Some(&s[kw.len()..])
    } else {
        None
    }
}

/// Per-rule evaluation state, snapshot-carried so alerts fire exactly
/// once across kill/reopen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlertRuntime {
    /// Consecutive sampled epochs the condition has held.
    pub consecutive: u64,
    /// True while the alert is firing (condition held long enough and
    /// has not cleared since).
    pub firing: bool,
    /// All-time number of times the rule has fired.
    pub fired_count: u64,
}

/// One fired/resolved transition from an evaluation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Index of the rule in the rule set.
    pub rule_index: usize,
    /// Canonical rule text.
    pub rule: String,
    /// The watched FD.
    pub fd: String,
    /// True = fired, false = resolved.
    pub fired: bool,
}

/// The table's rule set plus per-rule runtime.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AlertState {
    /// The rules, in journal order.
    pub rules: Vec<AlertRule>,
    /// Parallel runtime state (`runtime.len() == rules.len()`).
    pub runtime: Vec<AlertRuntime>,
}

impl AlertState {
    /// Empty state.
    pub fn new() -> AlertState {
        AlertState::default()
    }

    /// Replace the rule set, preserving runtime for rules whose canonical
    /// text is unchanged — re-declaring an already-firing alert does not
    /// re-fire it.
    pub fn install(&mut self, rules: Vec<AlertRule>) {
        let old: Vec<(String, AlertRuntime)> =
            self.rules.iter().zip(&self.runtime).map(|(r, rt)| (r.to_string(), *rt)).collect();
        self.runtime = rules
            .iter()
            .map(|r| {
                let text = r.to_string();
                old.iter().find(|(t, _)| *t == text).map(|(_, rt)| *rt).unwrap_or_default()
            })
            .collect();
        self.rules = rules;
    }

    /// Canonical text of every rule, in order (the journaled form).
    pub fn rule_texts(&self) -> Vec<String> {
        self.rules.iter().map(|r| r.to_string()).collect()
    }

    /// Evaluate every rule against one sampled epoch. `measures` maps an
    /// FD display string to `(confidence, g3, violating_groups)`; rules
    /// watching an FD absent from the map are dormant (their streak
    /// resets — an untracked FD has no health to alert on).
    pub fn evaluate<'a, F>(&mut self, measure_of: F) -> Vec<AlertTransition>
    where
        F: Fn(&str) -> Option<(f64, f64, u64)> + 'a,
    {
        let mut transitions = Vec::new();
        for (i, (rule, rt)) in self.rules.iter().zip(self.runtime.iter_mut()).enumerate() {
            let Some((confidence, g3, groups)) = measure_of(&rule.fd) else {
                rt.consecutive = 0;
                if rt.firing {
                    rt.firing = false;
                    transitions.push(AlertTransition {
                        rule_index: i,
                        rule: rule.to_string(),
                        fd: rule.fd.clone(),
                        fired: false,
                    });
                }
                continue;
            };
            if rule.holds(confidence, g3, groups) {
                rt.consecutive = rt.consecutive.saturating_add(1);
                if !rt.firing && rt.consecutive >= rule.for_epochs {
                    rt.firing = true;
                    rt.fired_count += 1;
                    transitions.push(AlertTransition {
                        rule_index: i,
                        rule: rule.to_string(),
                        fd: rule.fd.clone(),
                        fired: true,
                    });
                }
            } else {
                rt.consecutive = 0;
                if rt.firing {
                    rt.firing = false;
                    transitions.push(AlertTransition {
                        rule_index: i,
                        rule: rule.to_string(),
                        fd: rule.fd.clone(),
                        fired: false,
                    });
                }
            }
        }
        transitions
    }

    /// Number of rules currently firing.
    pub fn firing_count(&self) -> usize {
        self.runtime.iter().filter(|rt| rt.firing).count()
    }

    /// Encode rules + runtime (the snapshot's alert section).
    pub fn encode(&self, e: &mut Encoder) {
        e.u32(self.rules.len() as u32);
        for (rule, rt) in self.rules.iter().zip(&self.runtime) {
            e.str(&rule.to_string());
            e.u64(rt.consecutive);
            e.u8(u8::from(rt.firing));
            e.u64(rt.fired_count);
        }
    }

    /// Decode the snapshot alert section written by [`AlertState::encode`].
    pub fn decode(d: &mut Decoder<'_>) -> Result<AlertState, String> {
        let n = d.u32("alert rule count").map_err(|e| e.to_string())? as usize;
        let mut state = AlertState::new();
        for _ in 0..n {
            let text = d.str("alert rule text").map_err(|e| e.to_string())?;
            let rule = AlertRule::parse(&text)
                .map_err(|e| format!("journaled alert rule `{text}`: {e}"))?;
            let rt = AlertRuntime {
                consecutive: d.u64("alert consecutive").map_err(|e| e.to_string())?,
                firing: d.u8("alert firing flag").map_err(|e| e.to_string())? != 0,
                fired_count: d.u64("alert fired count").map_err(|e| e.to_string())?,
            };
            state.rules.push(rule);
            state.runtime.push(rt);
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(text: &str) -> AlertRule {
        AlertRule::parse(text).unwrap()
    }

    #[test]
    fn canonical_text_round_trips() {
        for text in [
            "FD '[Zip] -> [City]' WHEN confidence < 0.98 FOR 5 EPOCHS",
            "FD '[A] -> [B]' WHEN g3 >= 0.5 FOR 1 EPOCHS",
            "FD '[A, B] -> [C]' WHEN violating_groups > 10 FOR 2 EPOCHS",
        ] {
            let r = rule(text);
            assert_eq!(r.to_string(), text);
            assert_eq!(AlertRule::parse(&r.to_string()).unwrap(), r);
        }
    }

    #[test]
    fn parse_is_keyword_case_insensitive_and_defaults_for() {
        let r = rule("fd '[X] -> [Y]' when CONFIDENCE <= 0.9");
        assert_eq!(r.for_epochs, 1);
        assert_eq!(r.metric, AlertMetric::Confidence);
        assert_eq!(r.op, AlertOp::Le);
        assert_eq!(rule("FD '[X] -> [Y]' WHEN g3 > 0.1 for 3 epochs").for_epochs, 3);
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        for bad in [
            "",
            "WHEN confidence < 0.9",
            "FD [X] -> [Y] WHEN confidence < 0.9",
            "FD '' WHEN confidence < 0.9",
            "FD '[X] -> [Y]' WHEN entropy < 0.9",
            "FD '[X] -> [Y]' WHEN confidence != 0.9",
            "FD '[X] -> [Y]' WHEN confidence < banana",
            "FD '[X] -> [Y]' WHEN confidence < NaN",
            "FD '[X] -> [Y]' WHEN confidence < 0.9 FOR 0 EPOCHS",
            "FD '[X] -> [Y]' WHEN confidence < 0.9 FOR x EPOCHS",
            "FD '[X] -> [Y]' WHEN confidence < 0.9 FOR 2",
            "FD '[X] -> [Y]' WHEN confidence < 0.9 FOR 2 EPOCHS trailing",
        ] {
            assert!(AlertRule::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn fires_after_consecutive_epochs_and_only_once() {
        let mut st = AlertState::new();
        st.install(vec![rule("FD 'f' WHEN confidence < 0.9 FOR 3 EPOCHS")]);
        let low = |_: &str| Some((0.5, 0.5, 2u64));
        assert!(st.evaluate(low).is_empty());
        assert!(st.evaluate(low).is_empty());
        let t = st.evaluate(low);
        assert_eq!(t.len(), 1);
        assert!(t[0].fired);
        assert_eq!(st.firing_count(), 1);
        // Still low: no re-fire.
        assert!(st.evaluate(low).is_empty());
        assert_eq!(st.runtime[0].fired_count, 1);
        // Recovers: resolves.
        let high = |_: &str| Some((0.99, 0.01, 0u64));
        let t = st.evaluate(high);
        assert_eq!(t.len(), 1);
        assert!(!t[0].fired);
        assert_eq!(st.firing_count(), 0);
        // Can fire again after a fresh streak.
        assert!(st.evaluate(low).is_empty());
        assert!(st.evaluate(low).is_empty());
        assert_eq!(st.evaluate(low).len(), 1);
        assert_eq!(st.runtime[0].fired_count, 2);
    }

    #[test]
    fn streak_resets_on_recovery_and_untracked_fd_is_dormant() {
        let mut st = AlertState::new();
        st.install(vec![rule("FD 'f' WHEN g3 > 0.1 FOR 2 EPOCHS")]);
        let bad = |_: &str| Some((0.5, 0.5, 1u64));
        let good = |_: &str| Some((1.0, 0.0, 0u64));
        assert!(st.evaluate(bad).is_empty());
        assert!(st.evaluate(good).is_empty(), "streak broken");
        assert!(st.evaluate(bad).is_empty(), "streak restarts at 1");
        assert_eq!(st.evaluate(bad).len(), 1);
        // FD disappears from the tracked set: resolve + dormant.
        let gone = |_: &str| None;
        let t = st.evaluate(gone);
        assert_eq!(t.len(), 1);
        assert!(!t[0].fired);
        assert!(st.evaluate(gone).is_empty());
    }

    #[test]
    fn install_preserves_runtime_for_unchanged_rules() {
        let mut st = AlertState::new();
        st.install(vec![rule("FD 'f' WHEN confidence < 0.9 FOR 1 EPOCHS")]);
        st.evaluate(|_| Some((0.5, 0.5, 1u64)));
        assert_eq!(st.firing_count(), 1);
        // Re-declare the same rule plus a new one: firing state survives.
        st.install(vec![
            rule("FD 'f' WHEN confidence < 0.9 FOR 1 EPOCHS"),
            rule("FD 'g' WHEN g3 > 0.5 FOR 2 EPOCHS"),
        ]);
        assert_eq!(st.firing_count(), 1);
        assert_eq!(st.runtime[1], AlertRuntime::default());
        // Replacing with a different threshold resets runtime.
        st.install(vec![rule("FD 'f' WHEN confidence < 0.8 FOR 1 EPOCHS")]);
        assert_eq!(st.firing_count(), 0);
    }

    #[test]
    fn snapshot_section_round_trips() {
        let mut st = AlertState::new();
        st.install(vec![
            rule("FD 'f' WHEN confidence < 0.9 FOR 2 EPOCHS"),
            rule("FD 'g' WHEN violating_groups >= 3 FOR 1 EPOCHS"),
        ]);
        st.evaluate(|fd| if fd == "g" { Some((1.0, 0.0, 5u64)) } else { Some((0.5, 0.5, 0u64)) });
        let mut e = Encoder::new();
        st.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = AlertState::decode(&mut d).unwrap();
        assert!(d.is_exhausted());
        assert_eq!(back, st);
    }
}
