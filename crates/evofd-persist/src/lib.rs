//! # evofd-persist
//!
//! Durable storage for the `evofd` engine: a **delta write-ahead log**
//! plus **columnar snapshots** with crash recovery, turning the in-memory
//! [`evofd_incremental`] machinery into a storage engine whose state —
//! live relations, epochs, per-FD tracker counts, even the drift history
//! implicit in the delta stream — survives process death.
//!
//! The design follows the classic journal/page-store split (cf. SQLite's
//! WAL, the related `oxibase`/`sqlite` repos this reproduction tracks),
//! specialised to the paper's workload:
//!
//! * [`wal`] — length-prefixed, CRC-32-checksummed records of
//!   [`Delta`](evofd_incremental::Delta) batches, stamped with sequence
//!   numbers and the live-relation **epoch** each delta produces (LSN ↔
//!   epoch alignment), written journal-before-apply with per-commit,
//!   group-commit or no-sync `fsync` policies. Torn tails truncate to the
//!   last valid checksum.
//! * [`snapshot`] — a binary columnar image of the live relation's exact
//!   physical state (dictionaries, codes, tombstone mask) plus the
//!   incremental validator's group-tracker counts, encoded per-column in
//!   parallel on `mintpool` and written atomically (temp + rename).
//!   Recovery = snapshot load + WAL-tail replay, **O(tail)** — no FD
//!   recount.
//! * [`store`] — [`DurableRelation`] (journal-then-apply, rollback records
//!   on failed deltas, journaled tombstone compaction, WAL-size-triggered
//!   snapshot compaction) and [`Database`] (a directory of tables).
//! * [`engine`] — [`DurableEngine`], an [`evofd_sql::Engine`] whose
//!   INSERT/DELETE/UPDATE are durable transactions through the WAL, plus
//!   a read-only **replica mode** serving SELECT / `SHOW FDS` /
//!   `CHECK FD` on a follower.
//! * [`replication`] — WAL-shipping replication: a leader serves its log
//!   as a CRC-framed stream from any `(snapshot_seq, seq)` position
//!   ([`DurableRelation::ship_from`]) and a [`ReplicaState`] follower
//!   bootstraps from a shipped snapshot then applies the tail
//!   continuously — recovery that never stops. Transports:
//!   [`ChannelTransport`] (in-process) and [`DirTransport`] (tailed
//!   directory, no network stack).
//! * [`lock`] — a PID-stamped [`DirLock`] per table directory, so two
//!   processes cannot open the same table.
//!
//! ## Quickstart
//!
//! ```
//! use evofd_core::Fd;
//! use evofd_incremental::{Delta, ValidatorConfig};
//! use evofd_persist::{Database, PersistOptions};
//! use evofd_storage::{relation_of_strs, Value};
//!
//! let dir = std::env::temp_dir().join("evofd_persist_doc");
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // Create a durable table with one FD under incremental validation.
//! let rel = relation_of_strs("places", &["Zip", "City"], &[
//!     &["10211", "NY"],
//! ]).unwrap();
//! let fd = Fd::parse(rel.schema(), "Zip -> City").unwrap();
//! let mut db = Database::open(&dir, PersistOptions::default()).unwrap();
//! db.create_table(rel, vec![fd], ValidatorConfig::default()).unwrap();
//!
//! // Journaled-then-applied: survives a kill right after this call.
//! let delta = Delta::inserting(vec![vec![Value::str("10211"), Value::str("Boston")]]);
//! let (_, drift) = db.get_mut("places").unwrap().apply(&delta).unwrap();
//! assert_eq!(drift.len(), 1, "Zip -> City drifted — durably");
//! drop(db);
//!
//! // Crash recovery: snapshot + WAL tail replay.
//! let db = Database::open(&dir, PersistOptions::default()).unwrap();
//! assert!(!db.get("places").unwrap().validator().is_exact(0));
//! ```

#![warn(missing_docs)]

pub mod alert;
pub mod codec;
pub mod crc32;
pub mod engine;
pub mod error;
pub mod history;
pub mod lock;
pub mod monitor;
pub mod replication;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use alert::{AlertMetric, AlertOp, AlertRule, AlertRuntime, AlertState, AlertTransition};
pub use crc32::{crc32, Crc32};
pub use engine::DurableEngine;
pub use error::{PersistError, Result};
pub use history::{
    scan_history, AlertEntry, DriftEntry, FdSample, HistoryFrame, HistoryScan, HistoryWriter,
    HISTORY_FILE,
};
pub use lock::{DirLock, LOCK_FILE};
pub use monitor::DbMonitorSource;
pub use replication::{
    read_position, AckTracker, ChannelTransport, DirTransport, FrameTransport, ReplicaState,
    ShipPosition, Shipment, SyncReport,
};
pub use snapshot::{read_snapshot, write_snapshot, SnapshotState};
pub use store::{
    Database, DurableRelation, PersistOptions, RecoveryReport, ReplicaIngest, SNAPSHOT_FILE,
    WAL_FILE,
};
pub use wal::{recover_wal, scan_wal, SyncPolicy, WalRecord, WalScan, WalWriter};
