//! Vendored CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum
//! guarding every WAL record and snapshot body. Table-driven, computed
//! once at first use; no external crates (the build environment has no
//! registry access, same rationale as the `vendor/` shims).

use std::sync::OnceLock;

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
                bit += 1;
            }
            t[i] = crc;
            i += 1;
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finish and return the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"delta wal columnar snapshot";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 1;
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 1;
        }
    }
}
