//! [`DurableRelation`]: a [`LiveRelation`] + [`IncrementalValidator`] pair
//! whose every delta is journaled to a WAL **before** it is applied, with
//! periodic columnar snapshots so recovery is snapshot-load + WAL-tail
//! replay; and [`Database`], a directory of durable relations.
//!
//! ## Directory layout
//!
//! ```text
//! <data-dir>/<table>/snapshot.bin   columnar snapshot (atomic rename)
//! <data-dir>/<table>/wal.log        delta WAL since that snapshot
//! ```
//!
//! ## Write path
//!
//! 1. encode the delta as a WAL record stamped with the epoch the live
//!    relation will hold after application (journal-before-apply);
//! 2. apply to the [`LiveRelation`] (atomic: all or nothing) and fan the
//!    tracker updates out via [`IncrementalValidator::apply`];
//! 3. on apply failure, append a rollback record cancelling the journaled
//!    delta and surface the error — matching the in-memory engines'
//!    restore-on-error contract;
//! 4. if the tombstone fraction passed the live relation's threshold,
//!    compact and journal a compact record (replay compacts at exactly the
//!    same point — compaction is deterministic);
//! 5. if the WAL outgrew [`PersistOptions::wal_compact_bytes`], write a
//!    fresh snapshot and reset the WAL (snapshot-compaction).
//!
//! ## Recovery
//!
//! [`DurableRelation::open`] loads the snapshot (exact physical layout,
//! imported tracker counts — no relation scan), truncates any torn WAL
//! tail to the last checksum-valid record, collects rollback targets, and
//! replays the surviving records with `seq` beyond the snapshot's. Every
//! replayed delta's epoch is checked against its journaled `epoch_after`;
//! divergence is a hard [`PersistError::Recovery`] error, not silent
//! corruption.

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use evofd_core::{Fd, Repair};
use evofd_incremental::{
    AppliedDelta, DecisionAction, DecisionRecord, Delta, DriftKind, FdDrift, IncrementalValidator,
    LiveAdvisor, LiveRelation, ValidatorConfig, DEFAULT_COMPACT_THRESHOLD,
};
use evofd_storage::Relation;

use crate::alert::{AlertRule, AlertState, AlertTransition};
use crate::error::{io_err, PersistError, Result};
use crate::history::{
    scan_history, scan_history_bytes, AlertEntry, DriftEntry, FdSample, HistoryFrame,
    HistoryWriter, HISTORY_FILE,
};
use crate::lock::DirLock;
use crate::replication::Shipment;
use crate::snapshot::{decode_snapshot, encode_snapshot, read_snapshot, write_snapshot};
use crate::wal::{recover_wal, scan_wal, SyncPolicy, WalRecord, WalWriter};

/// Snapshot file name inside a table directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// WAL file name inside a table directory.
pub const WAL_FILE: &str = "wal.log";

/// Tuning knobs for the durable engine.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// When the WAL writer `fsync`s (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// WAL length (bytes) above which a snapshot is written and the WAL
    /// reset — the snapshot-compaction threshold.
    pub wal_compact_bytes: u64,
    /// Tombstone fraction above which the live relation compacts (the
    /// same knob as [`LiveRelation::with_compact_threshold`]).
    pub compact_threshold: f64,
    /// Epoch stride of the durable FD-health history: a frame is sampled
    /// into the table's `history.bin` whenever `epoch % stride == 0`.
    /// `1` samples every applied delta; `0` disables history entirely
    /// (no file is opened and nothing is ever written).
    pub history_stride: u64,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            sync: SyncPolicy::PerCommit,
            wal_compact_bytes: 4 << 20,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            history_stride: 1,
        }
    }
}

/// What [`DurableRelation::open`] did to get back to a consistent state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch restored from the snapshot.
    pub snapshot_epoch: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// Journaled deltas skipped because a rollback record cancelled them.
    pub rolled_back: usize,
    /// Bytes of torn tail truncated from the WAL.
    pub torn_bytes: u64,
}

/// What [`DurableRelation::ingest_replicated`] did with one shipped
/// record (the follower-side apply outcome).
#[derive(Debug)]
pub enum ReplicaIngest {
    /// The record applied (or was a rollback/cursor bookkeeping record);
    /// any FD drift it caused is attached.
    Applied(Vec<FdDrift>),
    /// The record's `seq` was already acked — a duplicate delivery,
    /// ignored without journaling.
    Skipped,
    /// A journaled delta was rejected by the engine (deterministically —
    /// the leader rejected it too); the follower now expects the leader's
    /// rollback record for it.
    Doomed,
}

/// Stable one-token rendering of a [`DriftKind`](evofd_incremental::DriftKind)
/// for durable [`DriftEntry`] records (byte-for-byte deterministic; parsed
/// back by nothing — the history file stores, SQL filters on substrings).
fn drift_kind_token(kind: &DriftKind) -> String {
    match kind {
        DriftKind::BecameViolated => "violated".into(),
        DriftKind::BecameExact => "exact".into(),
        DriftKind::ConfidenceCrossed { threshold, upward } => {
            format!("crossed-{}@{threshold}", if *upward { "up" } else { "down" })
        }
        DriftKind::AlertFired { rule } => format!("alert-fired:{rule}"),
        DriftKind::AlertResolved { rule } => format!("alert-resolved:{rule}"),
    }
}

/// Sample one durable history frame and evaluate the alert rules, shared
/// verbatim by the leader apply path, recovery replay and replica ingest
/// so all three derive byte-identical history files.
///
/// Free function (not a method) because recovery replay holds `live` /
/// `validator` / `alerts` as locals before the [`DurableRelation`] exists.
///
/// Alert runtime is **always** advanced on a sampled epoch — the streaks
/// forward-derive deterministically from the snapshot — but the frame is
/// only appended when this epoch is beyond the file's last frame, which
/// is what de-duplicates replayed and re-shipped epochs. Returns the
/// alert transitions; only *live* paths publish them (feed + metrics) —
/// replay re-deriving runtime must not double-count.
fn record_history_frame(
    history: Option<&mut HistoryWriter>,
    stride: u64,
    live: &LiveRelation,
    validator: &IncrementalValidator,
    alerts: &mut AlertState,
    seq: u64,
    drift: &[FdDrift],
) -> Result<Vec<AlertTransition>> {
    let Some(history) = history else { return Ok(Vec::new()) };
    let epoch = live.epoch();
    if stride == 0 || !epoch.is_multiple_of(stride) {
        return Ok(Vec::new());
    }
    let schema = live.schema();
    let samples: Vec<FdSample> = validator
        .fds()
        .iter()
        .enumerate()
        .map(|(i, fd)| FdSample {
            fd: fd.display(schema),
            confidence: validator.measures(i).confidence,
            g3: validator.g3(i),
            violating_groups: validator.summary(i).violating_groups as u64,
            violated: !validator.is_exact(i),
        })
        .collect();
    let transitions = alerts.evaluate(|fd_text| {
        samples.iter().find(|s| s.fd == fd_text).map(|s| (s.confidence, s.g3, s.violating_groups))
    });
    let frame = HistoryFrame {
        epoch,
        seq,
        rows: live.row_count() as u64,
        samples,
        drifts: drift
            .iter()
            .map(|d| DriftEntry {
                fd: d.fd.display(schema),
                kind: drift_kind_token(&d.kind),
                confidence_before: d.confidence_before,
                confidence_after: d.confidence_after,
                groups: d.groups.clone(),
            })
            .collect(),
        alerts: transitions
            .iter()
            .map(|t| AlertEntry { rule: t.rule.to_string(), fd: t.fd.clone(), fired: t.fired })
            .collect(),
    };
    if !frame.is_empty() && epoch > history.last_epoch() {
        history.append(&frame)?;
    }
    Ok(transitions)
}

/// Retire decisions whose FD is no longer tracked (after an `FdSet`
/// change) — deterministic on leader, recovery and replicas alike.
fn retain_decisions(
    decisions: &mut Vec<DecisionRecord>,
    validator: &IncrementalValidator,
    live: &LiveRelation,
) {
    let kept: HashSet<String> = validator.fds().iter().map(|f| f.display(live.schema())).collect();
    decisions.retain(|d| kept.contains(&d.fd));
}

/// A live relation + incremental validator with WAL + snapshot durability.
#[derive(Debug)]
pub struct DurableRelation {
    dir: PathBuf,
    live: LiveRelation,
    validator: IncrementalValidator,
    wal: WalWriter,
    opts: PersistOptions,
    next_seq: u64,
    cursor: u64,
    recovery: RecoveryReport,
    /// `last_seq` of the snapshot currently on disk — the shipping
    /// horizon: records at or below it are only available via bootstrap.
    snapshot_seq: u64,
    /// Follower-side only: a journaled delta the engine rejected, awaiting
    /// the leader's rollback record.
    doomed: Option<u64>,
    /// Journaled advisor decisions, in decision order — the durable
    /// designer session (snapshot section + WAL `Decision` records).
    decisions: Vec<DecisionRecord>,
    /// Canonical names of the columns under secondary indexing (snapshot
    /// section + WAL `IndexSet` records). Only the set is durable; index
    /// contents are derived state the SQL engine rebuilds from the rows.
    indexed_columns: Vec<String>,
    /// The live advisor, materialized on first use and maintained per
    /// delta from then on. Derived state: rebuildable from `live`,
    /// `validator` and `decisions` at any time.
    advisor: Option<LiveAdvisor>,
    /// Journaled alert rules (WAL `AlertSet` records carry the full set,
    /// like `FdSet`) plus their runtime streaks (snapshot section v4;
    /// forward-derived deterministically across replay).
    alerts: AlertState,
    /// The durable FD-health time series writer — `None` when
    /// [`PersistOptions::history_stride`] is 0. Appended by
    /// [`record_history_frame`]; never reset by checkpoints.
    history: Option<HistoryWriter>,
    /// Cached per-table metric handles for the apply hot path (applies
    /// counter + latency histogram) — avoids a registry lookup per delta.
    apply_stats: Option<(Arc<evofd_obs::Counter>, Arc<evofd_obs::Histogram>)>,
    /// Held for the lifetime of this handle; released on drop.
    #[allow(dead_code)] // held for its Drop side effect
    lock: DirLock,
}

impl DurableRelation {
    /// Create a table directory from an initial relation and FD set:
    /// writes the initial snapshot (epoch 0) and an empty WAL. Fails if a
    /// snapshot already exists there.
    pub fn create(
        dir: &Path,
        rel: Relation,
        fds: Vec<Fd>,
        config: ValidatorConfig,
        opts: PersistOptions,
    ) -> Result<DurableRelation> {
        let snap_path = dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            return Err(PersistError::Table {
                name: rel.name().to_string(),
                message: format!("{} already exists", snap_path.display()),
            });
        }
        let lock = DirLock::acquire(dir)?;
        let mut live = LiveRelation::new(rel);
        live.set_compact_threshold(opts.compact_threshold);
        let validator = IncrementalValidator::with_config(&live, fds, config);
        write_snapshot(&snap_path, &live, &validator, &[], &[], &AlertState::new(), 0, 0)?;
        let wal = WalWriter::create(&dir.join(WAL_FILE), opts.sync)?;
        let history = if opts.history_stride > 0 {
            Some(HistoryWriter::open(&dir.join(HISTORY_FILE))?)
        } else {
            None
        };
        Ok(DurableRelation {
            dir: dir.to_path_buf(),
            live,
            validator,
            wal,
            opts,
            next_seq: 1,
            cursor: 0,
            recovery: RecoveryReport::default(),
            snapshot_seq: 0,
            doomed: None,
            decisions: Vec::new(),
            indexed_columns: Vec::new(),
            alerts: AlertState::new(),
            history,
            advisor: None,
            apply_stats: None,
            lock,
        })
    }

    /// Open an existing table directory: acquire its lock, load the
    /// snapshot, truncate any torn WAL tail, replay the surviving records.
    pub fn open(dir: &Path, opts: PersistOptions) -> Result<DurableRelation> {
        let lock = DirLock::acquire(dir)?;
        DurableRelation::open_with_lock(dir, opts, lock)
    }

    /// [`DurableRelation::open`] with a pre-acquired lock (bootstrap paths
    /// that must hold the lock while writing the initial files).
    pub(crate) fn open_with_lock(
        dir: &Path,
        opts: PersistOptions,
        lock: DirLock,
    ) -> Result<DurableRelation> {
        let recovery_timer = evofd_obs::Timer::start();
        let load_timer = evofd_obs::Timer::start();
        let state = read_snapshot(&dir.join(SNAPSHOT_FILE))?;
        load_timer.observe(&evofd_obs::metrics::SNAPSHOT_LOAD_SECONDS);
        let mut live = state.live;
        live.set_compact_threshold(opts.compact_threshold);
        let mut validator = IncrementalValidator::from_tracker_snapshots(
            &live,
            state.fds,
            state.config,
            &state.trackers,
        )
        .map_err(|e| PersistError::Recovery { message: e.to_string() })?;
        let mut cursor = state.cursor;
        let mut decisions = state.decisions;
        let mut indexed_columns = state.indexed_columns;
        let mut alerts = state.alerts;
        let mut history = if opts.history_stride > 0 {
            Some(HistoryWriter::open(&dir.join(HISTORY_FILE))?)
        } else {
            None
        };

        let wal_path = dir.join(WAL_FILE);
        let mut scan = recover_wal(&wal_path)?;
        let rollback_targets: HashSet<u64> = scan
            .records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Rollback { target_seq, .. } => Some(*target_seq),
                _ => None,
            })
            .collect();

        let mut report = RecoveryReport {
            snapshot_epoch: live.epoch(),
            torn_bytes: scan.torn_bytes,
            ..RecoveryReport::default()
        };
        let mut max_seq = state.last_seq;
        for (i, record) in scan.records.iter().enumerate() {
            let seq = record.seq();
            max_seq = max_seq.max(seq);
            if seq <= state.last_seq {
                continue; // already folded into the snapshot
            }
            match record {
                WalRecord::Delta { seq, epoch_after, cursor: delta_cursor, inserts, deletes } => {
                    if rollback_targets.contains(seq) {
                        report.rolled_back += 1;
                        continue;
                    }
                    let delta = Delta {
                        inserts: inserts.clone(),
                        deletes: deletes.iter().map(|&d| d as usize).collect(),
                    };
                    let applied = match live.apply(&delta) {
                        Ok(applied) => applied,
                        // A doomed FINAL delta with no rollback record is
                        // the crash window between journaling a delta,
                        // having the engine reject it atomically, and
                        // persisting the rollback: the process died in
                        // between. The engine's rejection is deterministic
                        // and the in-memory state never advanced, so the
                        // record is an implicit rollback — amputate it
                        // from the log and carry on. Anywhere *before*
                        // the tail the same failure means real
                        // corruption (later records were journaled
                        // against a state this delta never produced).
                        Err(e) if i + 1 == scan.records.len() => {
                            let cut = scan.offsets[i];
                            let file = std::fs::OpenOptions::new()
                                .write(true)
                                .open(&wal_path)
                                .map_err(|e| io_err(&wal_path, e))?;
                            file.set_len(cut).map_err(|e| io_err(&wal_path, e))?;
                            file.sync_all().map_err(|e| io_err(&wal_path, e))?;
                            scan.valid_bytes = cut;
                            report.rolled_back += 1;
                            let _ = e; // rejection reason; state unchanged
                            break;
                        }
                        Err(e) => {
                            return Err(PersistError::Recovery {
                                message: format!("replaying record {seq}: {e}"),
                            })
                        }
                    };
                    if applied.epoch != *epoch_after {
                        return Err(PersistError::Recovery {
                            message: format!(
                                "record {seq}: journaled epoch {epoch_after} but replay \
                                 reached {}",
                                applied.epoch
                            ),
                        });
                    }
                    let drift = validator.apply_at(&live, &applied, *seq);
                    // Regenerate any history tail the crash lost: frames
                    // for epochs already in the file are deduplicated, the
                    // alert streaks forward-derive either way. Transitions
                    // are NOT re-published — they already fired live.
                    record_history_frame(
                        history.as_mut(),
                        opts.history_stride,
                        &live,
                        &validator,
                        &mut alerts,
                        *seq,
                        &drift,
                    )?;
                    if let Some(v) = delta_cursor {
                        cursor = *v;
                    }
                    report.replayed += 1;
                }
                WalRecord::Compact { seq, epoch_after } => {
                    live.compact();
                    if live.epoch() != *epoch_after {
                        return Err(PersistError::Recovery {
                            message: format!(
                                "record {seq}: journaled compaction epoch {epoch_after} but \
                                 replay reached {}",
                                live.epoch()
                            ),
                        });
                    }
                    validator.resync(&live);
                    report.replayed += 1;
                }
                WalRecord::Cursor { value, .. } => {
                    cursor = *value;
                    report.replayed += 1;
                }
                WalRecord::FdSet { seq, fds: texts } => {
                    let mut parsed = Vec::with_capacity(texts.len());
                    for t in texts {
                        parsed.push(Fd::parse(live.schema(), t).map_err(|e| {
                            PersistError::Recovery {
                                message: format!("record {seq}: journaled FD `{t}`: {e}"),
                            }
                        })?);
                    }
                    validator = IncrementalValidator::with_config(
                        &live,
                        parsed,
                        validator.config().clone(),
                    );
                    retain_decisions(&mut decisions, &validator, &live);
                    report.replayed += 1;
                }
                WalRecord::Decision { record, .. } => {
                    decisions.push(record.clone());
                    report.replayed += 1;
                }
                WalRecord::IndexSet { seq, columns } => {
                    for col in columns {
                        live.schema().resolve(col).map_err(|_| PersistError::Recovery {
                            message: format!(
                                "record {seq}: indexed column `{col}` is not in the schema"
                            ),
                        })?;
                    }
                    indexed_columns = columns.clone();
                    report.replayed += 1;
                }
                WalRecord::AlertSet { seq, rules: texts } => {
                    let mut parsed = Vec::with_capacity(texts.len());
                    for t in texts {
                        parsed.push(AlertRule::parse(t).map_err(|e| PersistError::Recovery {
                            message: format!("record {seq}: journaled alert rule `{t}`: {e}"),
                        })?);
                    }
                    alerts.install(parsed);
                    report.replayed += 1;
                }
                WalRecord::Rollback { .. } => {}
            }
        }

        let wal = WalWriter::open_at(&wal_path, opts.sync, scan.valid_bytes)?;
        evofd_obs::metrics::RECOVERY_REPLAYED_TOTAL.add(report.replayed as u64);
        recovery_timer.observe(&evofd_obs::metrics::RECOVERY_SECONDS);
        Ok(DurableRelation {
            dir: dir.to_path_buf(),
            live,
            validator,
            wal,
            opts,
            next_seq: max_seq + 1,
            cursor,
            recovery: report,
            snapshot_seq: state.last_seq,
            doomed: None,
            decisions,
            indexed_columns,
            alerts,
            history,
            advisor: None,
            apply_stats: None,
            lock,
        })
    }

    /// The live relation (read-only; mutate through [`Self::apply`]).
    pub fn live(&self) -> &LiveRelation {
        &self.live
    }

    /// The incremental validator (read-only).
    pub fn validator(&self) -> &IncrementalValidator {
        &self.validator
    }

    /// Mutable validator access — for drift-feed subscriptions; do not
    /// mutate tracker state out of band.
    pub fn validator_mut(&mut self) -> &mut IncrementalValidator {
        &mut self.validator
    }

    /// The table name (from the schema).
    pub fn name(&self) -> &str {
        self.live.schema().name()
    }

    /// The table's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current WAL length in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// What the last [`DurableRelation::open`] replayed (all zeros for a
    /// freshly created table).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The application stream cursor (see [`Self::set_cursor`]).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Journal and set the stream cursor — an application-defined resume
    /// position (e.g. delta-stream records consumed by `evofd watch`).
    pub fn set_cursor(&mut self, value: u64) -> Result<()> {
        if value == self.cursor {
            return Ok(()); // no movement: don't grow the WAL or pay a sync
        }
        let seq = self.next_seq;
        self.wal.append(&WalRecord::Cursor { seq, value })?;
        self.next_seq += 1;
        self.cursor = value;
        Ok(())
    }

    /// Adjust the tombstone compaction threshold (also journaled state in
    /// the sense that compactions themselves are journaled; the threshold
    /// is session configuration).
    pub fn set_compact_threshold(&mut self, threshold: f64) {
        self.live.set_compact_threshold(threshold);
        self.opts.compact_threshold = threshold;
    }

    /// Apply a delta durably: journal, apply, maintain trackers, maybe
    /// compact, maybe snapshot. Returns the application record and the
    /// drift events. On failure the WAL carries a rollback record and the
    /// in-memory state is unchanged.
    pub fn apply(&mut self, delta: &Delta) -> Result<(AppliedDelta, Vec<FdDrift>)> {
        self.apply_with_cursor(delta, None)
    }

    /// Like [`Self::apply`], additionally committing a stream-cursor
    /// update in the **same** WAL record, so a crash can never separate a
    /// consumed stream position from its applied delta.
    pub fn apply_with_cursor(
        &mut self,
        delta: &Delta,
        cursor: Option<u64>,
    ) -> Result<(AppliedDelta, Vec<FdDrift>)> {
        if delta.is_empty() {
            if let Some(v) = cursor {
                self.set_cursor(v)?;
            }
            let applied = self.live.apply(delta)?; // no-op, keeps semantics
            return Ok((applied, Vec::new()));
        }
        let _span = evofd_obs::span("store.apply");
        let timer = evofd_obs::Timer::start();
        let seq = self.next_seq;
        self.wal.append(&WalRecord::Delta {
            seq,
            epoch_after: self.live.epoch() + 1,
            cursor,
            inserts: delta.inserts.clone(),
            deletes: delta.deletes.iter().map(|&d| d as u64).collect(),
        })?;
        self.next_seq += 1;

        match self.live.apply(delta) {
            Ok(applied) => {
                if let Some(v) = cursor {
                    self.cursor = v;
                }
                let drift = self.validator.apply_at(&self.live, &applied, seq);
                if let Some(advisor) = &mut self.advisor {
                    advisor.apply(&self.live, &self.validator, &applied);
                }
                // Sample history + evaluate alerts BEFORE any compaction
                // bumps the epoch past the one this delta journaled.
                let transitions = record_history_frame(
                    self.history.as_mut(),
                    self.opts.history_stride,
                    &self.live,
                    &self.validator,
                    &mut self.alerts,
                    seq,
                    &drift,
                )?;
                self.publish_alert_transitions(transitions, seq);
                if self.live.maybe_compact() > 0 {
                    if evofd_obs::enabled() {
                        evofd_obs::metrics::STORE_COMPACTIONS_TOTAL.with_label("tombstone").inc();
                        evofd_obs::metrics::ADVISOR_RESYNCS_TOTAL.with_label("compaction").inc();
                    }
                    self.validator.resync(&self.live);
                    if let Some(advisor) = &mut self.advisor {
                        advisor.resync(&self.live, &self.validator);
                    }
                    let seq = self.next_seq;
                    self.wal.append(&WalRecord::Compact { seq, epoch_after: self.live.epoch() })?;
                    self.next_seq += 1;
                }
                if self.wal.bytes() > self.opts.wal_compact_bytes {
                    if evofd_obs::enabled() {
                        evofd_obs::metrics::STORE_COMPACTIONS_TOTAL
                            .with_label("wal-threshold")
                            .inc();
                    }
                    self.checkpoint()?;
                }
                if let Some(ns) = timer.elapsed_ns() {
                    if self.apply_stats.is_none() {
                        let table = self.live.schema().name();
                        self.apply_stats = Some((
                            evofd_obs::metrics::STORE_APPLIES_TOTAL.with_label(table),
                            evofd_obs::metrics::STORE_APPLY_SECONDS.with_label(table),
                        ));
                    }
                    if let Some((applies, hist)) = &self.apply_stats {
                        applies.add(1);
                        hist.record(ns);
                    }
                }
                Ok((applied, drift))
            }
            Err(e) => {
                let seq = self.next_seq;
                self.wal.append(&WalRecord::Rollback { seq, target_seq: seq - 1 })?;
                self.next_seq += 1;
                // A rollback must be durable before the error is surfaced,
                // whatever the group-commit policy, or replay would re-apply
                // the cancelled delta.
                self.wal.sync()?;
                Err(e.into())
            }
        }
    }

    /// Write a snapshot of the current state and reset the WAL. Called
    /// automatically when the WAL outgrows the threshold; callable
    /// explicitly for a clean shutdown. Moves the shipping horizon: a
    /// follower positioned before the new snapshot must re-bootstrap.
    pub fn checkpoint(&mut self) -> Result<()> {
        let timer = evofd_obs::Timer::start();
        // History frames for epochs the WAL is about to forget must be
        // durable BEFORE the reset — replay can no longer regenerate them.
        if let Some(history) = &mut self.history {
            history.sync()?;
        }
        write_snapshot(
            &self.dir.join(SNAPSHOT_FILE),
            &self.live,
            &self.validator,
            &self.decisions,
            &self.indexed_columns,
            &self.alerts,
            self.next_seq - 1,
            self.cursor,
        )?;
        timer.observe(&evofd_obs::metrics::SNAPSHOT_ENCODE_SECONDS);
        self.snapshot_seq = self.next_seq - 1;
        self.wal.reset()
    }

    /// Flush any group-commit buffer to disk without snapshotting.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    // ------------------------------------------------------------------
    // WAL shipping (leader side).
    // ------------------------------------------------------------------

    /// The highest sequence number this table has journaled (0 for a
    /// fresh table) — the position a caught-up follower has acked.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// `last_seq` of the snapshot currently on disk: the **shipping
    /// horizon**. Records at or below it have been folded into the
    /// snapshot and can only be obtained by bootstrapping.
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// Encode a point-in-time snapshot of the *current* state (not the
    /// on-disk one) — what the in-process transport ships to bootstrap a
    /// follower directly at [`DurableRelation::last_seq`].
    pub fn encode_current_snapshot(&self) -> Vec<u8> {
        encode_snapshot(
            &self.live,
            &self.validator,
            &self.decisions,
            &self.indexed_columns,
            &self.alerts,
            self.last_seq(),
            self.cursor,
        )
    }

    /// Serve the replication stream from position `seq` (the follower's
    /// last acked sequence number): whole CRC-framed WAL records with
    /// sequence numbers beyond `seq`, or a bootstrap snapshot when `seq`
    /// predates the shipping horizon (the WAL no longer holds the records
    /// the follower needs).
    pub fn ship_from(&self, seq: u64) -> Result<Shipment> {
        if seq < self.snapshot_seq {
            return Ok(Shipment::Bootstrap {
                snapshot: self.encode_current_snapshot(),
                history: self.history_bytes(),
            });
        }
        let scan = scan_wal(&self.dir.join(WAL_FILE))?;
        let frames: Vec<Vec<u8>> =
            scan.records.iter().filter(|r| r.seq() > seq).map(WalRecord::encode_frame).collect();
        evofd_obs::metrics::REPL_FRAMES_SHIPPED_TOTAL.add(frames.len() as u64);
        Ok(Shipment::Frames(frames))
    }

    // ------------------------------------------------------------------
    // Replica ingest (follower side).
    // ------------------------------------------------------------------

    /// Apply one shipped leader record to this (follower) table: journal
    /// it to the local WAL with the **leader's** sequence number, then
    /// apply with exactly the semantics the recovery replay uses —
    /// journal-before-apply, epoch cross-checks, deterministic rejection
    /// held as a pending doom until the leader's rollback arrives.
    /// Duplicate deliveries (`seq` already acked) are skipped.
    pub(crate) fn ingest_replicated(&mut self, record: &WalRecord) -> Result<ReplicaIngest> {
        let seq = record.seq();
        if seq < self.next_seq {
            return Ok(ReplicaIngest::Skipped);
        }
        if let Some(doom) = self.doomed {
            // The only legal next record is the leader's rollback of the
            // doomed delta; anything else means the streams diverged.
            match record {
                WalRecord::Rollback { target_seq, .. } if *target_seq == doom => {}
                _ => {
                    return Err(PersistError::Replication {
                        message: format!(
                            "expected a rollback of doomed delta {doom}, got record {seq}"
                        ),
                    })
                }
            }
        }
        match record {
            WalRecord::Delta { seq, epoch_after, cursor, inserts, deletes } => {
                // Epoch continuity gate, checked BEFORE anything mutates:
                // every leader delta advances the epoch by exactly one, so
                // a mismatch here means deltas were skipped (e.g. a racy
                // transport shipped frames across a checkpoint gap) or the
                // states diverged. Rejecting now keeps the local WAL free
                // of a record its own recovery could not replay.
                if *epoch_after != self.live.epoch() + 1 {
                    if evofd_obs::enabled() {
                        evofd_obs::metrics::REPL_REJECTS_TOTAL.with_label("epoch").inc();
                    }
                    return Err(PersistError::Replication {
                        message: format!(
                            "record {seq}: leader epoch_after {epoch_after} does not follow \
                             replica epoch {} — deltas were skipped or states diverged; \
                             re-bootstrap the replica",
                            self.live.epoch()
                        ),
                    });
                }
                self.wal.append(record)?;
                self.next_seq = seq + 1;
                let delta = Delta {
                    inserts: inserts.clone(),
                    deletes: deletes.iter().map(|&d| d as usize).collect(),
                };
                match self.live.apply(&delta) {
                    Err(_) => {
                        // Deterministic rejection: the leader rejected this
                        // delta too and will ship its rollback next. The
                        // journaled copy mirrors the leader's WAL; if we
                        // die first, recovery amputates it (doomed tail).
                        self.doomed = Some(*seq);
                        Ok(ReplicaIngest::Doomed)
                    }
                    Ok(applied) => {
                        if applied.epoch != *epoch_after {
                            return Err(PersistError::Replication {
                                message: format!(
                                    "record {seq}: leader journaled epoch {epoch_after} but \
                                     replica reached {} — states diverged",
                                    applied.epoch
                                ),
                            });
                        }
                        if let Some(v) = cursor {
                            self.cursor = *v;
                        }
                        let drift = self.validator.apply_at(&self.live, &applied, *seq);
                        // A materialized advisor session (replica-side
                        // SUGGEST/SHOW FDS) is maintained per ingested
                        // delta, exactly like the leader's apply path.
                        if let Some(advisor) = &mut self.advisor {
                            advisor.apply(&self.live, &self.validator, &applied);
                        }
                        // The follower derives the same history frames and
                        // alert streaks from the same delta stream — its
                        // history.bin converges byte-for-byte with the
                        // leader's (bootstrap ships the folded prefix).
                        let transitions = record_history_frame(
                            self.history.as_mut(),
                            self.opts.history_stride,
                            &self.live,
                            &self.validator,
                            &mut self.alerts,
                            *seq,
                            &drift,
                        )?;
                        self.publish_alert_transitions(transitions, *seq);
                        // No tombstone compaction here: the leader journals
                        // its compactions as Compact records, and replaying
                        // them at the same point is what keeps the physical
                        // layouts (codes, row ids) byte-identical.
                        if self.wal.bytes() > self.opts.wal_compact_bytes {
                            self.checkpoint()?;
                        }
                        Ok(ReplicaIngest::Applied(drift))
                    }
                }
            }
            WalRecord::Rollback { seq, .. } => {
                // With a doom pending this cancels it; without one the
                // target delta was never applied here (our own recovery
                // amputated it as a doomed tail) — either way the rollback
                // is journaled so local replay also skips the target.
                self.wal.append(record)?;
                self.wal.sync()?;
                self.next_seq = seq + 1;
                self.doomed = None;
                Ok(ReplicaIngest::Applied(Vec::new()))
            }
            WalRecord::Compact { seq, epoch_after } => {
                // Same pre-mutation continuity gate as deltas: a leader
                // compaction advances the epoch by exactly one.
                if *epoch_after != self.live.epoch() + 1 {
                    if evofd_obs::enabled() {
                        evofd_obs::metrics::REPL_REJECTS_TOTAL.with_label("epoch").inc();
                    }
                    return Err(PersistError::Replication {
                        message: format!(
                            "record {seq}: leader compaction epoch_after {epoch_after} does \
                             not follow replica epoch {} — deltas were skipped or states \
                             diverged; re-bootstrap the replica",
                            self.live.epoch()
                        ),
                    });
                }
                self.wal.append(record)?;
                self.next_seq = seq + 1;
                self.live.compact();
                if self.live.epoch() != *epoch_after {
                    return Err(PersistError::Replication {
                        message: format!(
                            "record {seq}: leader compacted to epoch {epoch_after} but replica \
                             reached {} — states diverged",
                            self.live.epoch()
                        ),
                    });
                }
                self.validator.resync(&self.live);
                // Compaction remaps row ids and dictionary codes: a
                // materialized advisor's indexes must rebuild too.
                if let Some(advisor) = &mut self.advisor {
                    advisor.resync(&self.live, &self.validator);
                }
                Ok(ReplicaIngest::Applied(Vec::new()))
            }
            WalRecord::Cursor { seq, value } => {
                self.wal.append(record)?;
                self.next_seq = seq + 1;
                self.cursor = *value;
                Ok(ReplicaIngest::Applied(Vec::new()))
            }
            WalRecord::FdSet { seq, fds: texts } => {
                // Parse BEFORE journaling so a malformed record never
                // reaches the local WAL (its own recovery would fail on
                // it with the same error).
                let mut parsed = Vec::with_capacity(texts.len());
                for t in texts {
                    parsed.push(Fd::parse(self.live.schema(), t).map_err(|e| {
                        PersistError::Replication {
                            message: format!("record {seq}: shipped FD `{t}`: {e}"),
                        }
                    })?);
                }
                self.wal.append(record)?;
                self.next_seq = seq + 1;
                self.install_fd_set(parsed);
                Ok(ReplicaIngest::Applied(Vec::new()))
            }
            WalRecord::Decision { seq, record: decision } => {
                // Validate BEFORE journaling (same discipline as FdSet):
                // a rejected decision must never reach the local WAL, or
                // recovery would re-install it unconditionally and every
                // later advisor materialization would fail.
                let known = Fd::parse(self.live.schema(), &decision.fd)
                    .ok()
                    .and_then(|fd| self.validator.fds().iter().position(|f| *f == fd));
                if known.is_none() {
                    if evofd_obs::enabled() {
                        evofd_obs::metrics::REPL_REJECTS_TOTAL.with_label("decision").inc();
                    }
                    return Err(PersistError::Replication {
                        message: format!(
                            "record {seq}: decision names unknown FD `{}`",
                            decision.fd
                        ),
                    });
                }
                if self.decisions.iter().any(|d| d.fd == decision.fd) {
                    if evofd_obs::enabled() {
                        evofd_obs::metrics::REPL_REJECTS_TOTAL.with_label("decision").inc();
                    }
                    return Err(PersistError::Replication {
                        message: format!(
                            "record {seq}: FD `{}` already carries a decision",
                            decision.fd
                        ),
                    });
                }
                self.wal.append(record)?;
                self.next_seq = seq + 1;
                if let Some(advisor) = &mut self.advisor {
                    advisor.restore(decision).map_err(|e| PersistError::Replication {
                        message: format!("record {seq}: {e}"),
                    })?;
                }
                self.decisions.push(decision.clone());
                Ok(ReplicaIngest::Applied(Vec::new()))
            }
            WalRecord::IndexSet { seq, columns } => {
                // Validate BEFORE journaling (same discipline as FdSet): a
                // record naming a column the schema lacks must never reach
                // the local WAL.
                for col in columns {
                    self.live.schema().resolve(col).map_err(|_| PersistError::Replication {
                        message: format!(
                            "record {seq}: shipped indexed column `{col}` is not in the schema"
                        ),
                    })?;
                }
                self.wal.append(record)?;
                self.next_seq = seq + 1;
                self.indexed_columns = columns.clone();
                Ok(ReplicaIngest::Applied(Vec::new()))
            }
            WalRecord::AlertSet { seq, rules: texts } => {
                // Parse BEFORE journaling (same discipline as FdSet): a
                // malformed rule must never reach the local WAL.
                let mut parsed = Vec::with_capacity(texts.len());
                for t in texts {
                    parsed.push(AlertRule::parse(t).map_err(|e| PersistError::Replication {
                        message: format!("record {seq}: shipped alert rule `{t}`: {e}"),
                    })?);
                }
                self.wal.append(record)?;
                self.next_seq = seq + 1;
                self.alerts.install(parsed);
                Ok(ReplicaIngest::Applied(Vec::new()))
            }
        }
    }

    /// Replace this table's entire state from a shipped bootstrap
    /// snapshot: validate + decode the image, install it as the on-disk
    /// snapshot (atomic temp + rename), reset the WAL and adopt the
    /// snapshot's position. The directory lock is held throughout.
    pub(crate) fn install_snapshot(&mut self, bytes: &[u8]) -> Result<()> {
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let state = decode_snapshot(&snap_path, bytes)?;
        let mut live = state.live;
        live.set_compact_threshold(self.opts.compact_threshold);
        let validator = IncrementalValidator::from_tracker_snapshots(
            &live,
            state.fds,
            state.config,
            &state.trackers,
        )
        .map_err(|e| PersistError::Recovery { message: e.to_string() })?;
        // Persist the image exactly as shipped (atomic, like write_snapshot).
        let tmp = snap_path.with_extension("tmp");
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            file.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
            file.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &snap_path).map_err(|e| io_err(&snap_path, e))?;
        self.wal.reset()?;
        self.live = live;
        self.validator = validator;
        self.next_seq = state.last_seq + 1;
        self.snapshot_seq = state.last_seq;
        self.cursor = state.cursor;
        self.doomed = None;
        self.decisions = state.decisions;
        self.indexed_columns = state.indexed_columns;
        self.alerts = state.alerts;
        self.advisor = None; // derived: rebuilt lazily over the new state
        evofd_obs::metrics::REPL_BOOTSTRAPS_TOTAL.inc();
        Ok(())
    }

    /// Replace this table's durable history file from shipped bytes
    /// (bootstrap path): validate the image, install it atomically (temp +
    /// rename) and reopen the writer positioned at its tail. Empty bytes
    /// mean the leader ships no history — the local file is left alone.
    pub(crate) fn install_history(&mut self, bytes: &[u8]) -> Result<()> {
        if bytes.is_empty() || self.opts.history_stride == 0 {
            return Ok(());
        }
        let path = self.dir.join(HISTORY_FILE);
        scan_history_bytes(&path, bytes)?; // validate before touching disk
        self.history = None; // close the writer before replacing its file
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            file.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
            file.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        self.history = Some(HistoryWriter::open(&path)?);
        Ok(())
    }

    // ------------------------------------------------------------------
    // The live advisor session (durable designer loop).
    // ------------------------------------------------------------------

    /// The journaled advisor decisions, in decision order.
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// The advisor session if already materialized (read-only peek).
    pub fn advisor(&self) -> Option<&LiveAdvisor> {
        self.advisor.as_ref()
    }

    /// Build an advisor session over the current state (one
    /// batch-equivalent analysis) with the journaled decisions
    /// re-installed — **without** attaching it to this handle. Read-only
    /// observability (`SHOW FDS`) uses this so a status query never turns
    /// into a standing per-delta maintenance tax.
    pub fn build_advisor(&self) -> Result<LiveAdvisor> {
        let mut advisor = LiveAdvisor::new(&self.live, &self.validator);
        for record in &self.decisions {
            advisor.restore(record).map_err(|e| PersistError::Recovery {
                message: format!("restoring advisor decision for `{}`: {e}", record.fd),
            })?;
        }
        Ok(advisor)
    }

    /// The live advisor session, materialized on first use: built from
    /// the current state with the journaled decisions re-installed, then
    /// maintained in O(changed rows) per delta for the lifetime of this
    /// handle.
    pub fn ensure_advisor(&mut self) -> Result<&mut LiveAdvisor> {
        if self.advisor.is_none() {
            self.advisor = Some(self.build_advisor()?);
        }
        Ok(self.advisor.as_mut().expect("just ensured"))
    }

    /// Accept ranked proposal `proposal` (0-based) for FD `fd_index`:
    /// journal the decision, evolve the advisor session, then **replace**
    /// the original FD with the evolved one in the tracked set (a
    /// journaled `FdSet` carrying the full new set — recovery and
    /// replicas converge on the same swap). The successor advisor session
    /// records the replacement in its audit log. Returns the adopted
    /// repair.
    pub fn accept_repair(&mut self, fd_index: usize, proposal: usize) -> Result<Repair> {
        self.ensure_advisor()?;
        let advisor = self.advisor.as_ref().expect("ensured");
        let proposals = advisor.proposals(fd_index).map_err(|e| PersistError::Table {
            name: self.live.schema().name().to_string(),
            message: e.to_string(),
        })?;
        let chosen = proposals.get(proposal).cloned().ok_or_else(|| PersistError::Table {
            name: self.live.schema().name().to_string(),
            message: format!("no proposal #{} for FD #{fd_index}", proposal + 1),
        })?;
        let schema = self.live.schema();
        let record = DecisionRecord {
            fd: advisor.fds()[fd_index].display(schema),
            action: DecisionAction::Accept {
                proposal: proposal as u32,
                evolved: chosen.fd.display(schema),
            },
        };
        self.journal_decision(&record)?;
        self.advisor
            .as_mut()
            .expect("ensured")
            .accept(fd_index, proposal)
            .expect("accept pre-validated above");
        let original = record.fd.clone();
        let evolved = match &record.action {
            DecisionAction::Accept { evolved, .. } => evolved.clone(),
            _ => unreachable!("constructed as Accept above"),
        };
        self.decisions.push(record);

        // Swap the evolved FD into the tracked set. The journaled FdSet
        // record retires the Accept decision (its FD is no longer
        // tracked); the replacement itself is what recovery and replica
        // replay reconstruct, in the same Decision-then-FdSet order.
        let mut fds = self.validator.fds().to_vec();
        fds[fd_index] = chosen.fd.clone();
        self.set_fds(fds)?;
        evofd_obs::metrics::ADVISOR_ACCEPTED_REPLACEMENTS_TOTAL.inc();
        self.ensure_advisor()?;
        self.advisor.as_mut().expect("ensured").note_replacement(&original, &evolved);
        Ok(chosen)
    }

    /// Keep violated FD `fd_index` unchanged (journaled decision).
    pub fn decide_keep(&mut self, fd_index: usize) -> Result<()> {
        self.decide_simple(fd_index, DecisionAction::Keep)
    }

    /// Drop violated FD `fd_index` from the designer's schema (journaled
    /// decision; the validator keeps tracking it — use
    /// [`DurableRelation::set_fds`] to stop tracking entirely).
    pub fn decide_drop(&mut self, fd_index: usize) -> Result<()> {
        self.decide_simple(fd_index, DecisionAction::Drop)
    }

    fn decide_simple(&mut self, fd_index: usize, action: DecisionAction) -> Result<()> {
        self.ensure_advisor()?;
        let advisor = self.advisor.as_ref().expect("ensured");
        let pending = advisor.state(fd_index).map(|s| s.needs_decision()).unwrap_or(false);
        if !pending {
            return Err(PersistError::Table {
                name: self.live.schema().name().to_string(),
                message: format!("FD #{fd_index} is not awaiting a decision"),
            });
        }
        let record =
            DecisionRecord { fd: advisor.fds()[fd_index].display(self.live.schema()), action };
        self.journal_decision(&record)?;
        let advisor = self.advisor.as_mut().expect("ensured");
        match record.action {
            DecisionAction::Keep => advisor.keep(fd_index),
            DecisionAction::Drop => advisor.drop_fd(fd_index),
            DecisionAction::Accept { .. } => unreachable!("accept goes through accept_repair"),
        }
        .expect("decision pre-validated above");
        self.decisions.push(record);
        Ok(())
    }

    fn journal_decision(&mut self, record: &DecisionRecord) -> Result<()> {
        let seq = self.next_seq;
        self.wal.append(&WalRecord::Decision { seq, record: record.clone() })?;
        self.next_seq += 1;
        Ok(())
    }

    /// Replace the tracked-FD set (`ALTER TABLE … CONSTRAINT FD`):
    /// journal an `FdSet` record carrying the **full** new set, rebuild
    /// the incremental validator (one O(rows) scan) and retire decisions
    /// for FDs no longer tracked. Returns the new tracked count. Note the
    /// rebuild resets the validator's drift-feed subscriptions and stats.
    pub fn set_fds(&mut self, fds: Vec<Fd>) -> Result<usize> {
        let rendered: Vec<String> = fds.iter().map(|f| f.display(self.live.schema())).collect();
        let seq = self.next_seq;
        self.wal.append(&WalRecord::FdSet { seq, fds: rendered })?;
        self.next_seq += 1;
        self.install_fd_set(fds);
        Ok(self.validator.fds().len())
    }

    fn install_fd_set(&mut self, fds: Vec<Fd>) {
        let config = self.validator.config().clone();
        self.validator = IncrementalValidator::with_config(&self.live, fds, config);
        retain_decisions(&mut self.decisions, &self.validator, &self.live);
        self.advisor = None; // derived: rebuilt lazily over the new set
    }

    /// Canonical names of the columns under secondary indexing.
    pub fn indexed_columns(&self) -> &[String] {
        &self.indexed_columns
    }

    /// Replace the indexed-column set (`CREATE INDEX` / `DROP INDEX`):
    /// journal an `IndexSet` record carrying the **full** new set — like
    /// [`DurableRelation::set_fds`], only the set is durable; the index
    /// contents are derived state the SQL engine rebuilds from the rows,
    /// both on the live path and after recovery.
    pub fn set_indexes(&mut self, columns: Vec<String>) -> Result<()> {
        for col in &columns {
            self.live.schema().resolve(col).map_err(|_| PersistError::Table {
                name: self.live.schema().name().to_string(),
                message: format!("indexed column `{col}` is not in the schema"),
            })?;
        }
        let seq = self.next_seq;
        self.wal.append(&WalRecord::IndexSet { seq, columns: columns.clone() })?;
        self.next_seq += 1;
        self.indexed_columns = columns;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Alert rules + durable FD-health history.
    // ------------------------------------------------------------------

    /// The journaled alert rules and their runtime streaks.
    pub fn alerts(&self) -> &AlertState {
        &self.alerts
    }

    /// Replace the alert-rule set (`ALERT ON …` / `DROP ALERT`): journal
    /// an `AlertSet` record carrying the **full** canonical rule-text set
    /// — like [`DurableRelation::set_fds`], only the set is journaled; the
    /// runtime streaks live in the snapshot and forward-derive across
    /// replay. Rules whose canonical text survives keep their streaks.
    ///
    /// Each rule's FD text is canonicalised against the table schema
    /// first (`zip -> city` becomes `[zip] -> [city]`) so it matches the
    /// display strings the sampling path compares against; an FD that
    /// does not parse is an error before anything is journaled.
    pub fn set_alerts(&mut self, mut rules: Vec<AlertRule>) -> Result<usize> {
        for rule in &mut rules {
            let parsed =
                Fd::parse(self.live.schema(), &rule.fd).map_err(|e| PersistError::Table {
                    name: self.live.schema().name().to_string(),
                    message: format!("bad FD in alert rule `{rule}`: {e}"),
                })?;
            rule.fd = parsed.display(self.live.schema());
        }
        let rendered: Vec<String> = rules.iter().map(|r| r.to_string()).collect();
        let seq = self.next_seq;
        self.wal.append(&WalRecord::AlertSet { seq, rules: rendered })?;
        self.next_seq += 1;
        self.alerts.install(rules);
        Ok(self.alerts.rules.len())
    }

    /// Every durable history frame currently on disk (a fresh scan; the
    /// file is append-only so this is the full time series).
    pub fn history_frames(&self) -> Result<Vec<HistoryFrame>> {
        if self.history.is_none() {
            return Ok(Vec::new());
        }
        Ok(scan_history(&self.dir.join(HISTORY_FILE))?.frames)
    }

    /// The raw history file bytes — what bootstrap ships to a follower.
    /// Reads through the page cache, so unsynced appends are included.
    /// Empty when history is disabled or nothing was ever sampled.
    pub fn history_bytes(&self) -> Vec<u8> {
        if self.history.is_none() {
            return Vec::new();
        }
        std::fs::read(self.dir.join(HISTORY_FILE)).unwrap_or_default()
    }

    /// Fan freshly evaluated alert transitions out to the observability
    /// surfaces: the per-table counter families, the trace ring, and the
    /// validator's drift feed (as [`DriftKind::AlertFired`] /
    /// [`DriftKind::AlertResolved`] events). Live paths only — replay
    /// re-derives runtime without re-announcing.
    fn publish_alert_transitions(&mut self, transitions: Vec<AlertTransition>, seq: u64) {
        for t in transitions {
            if evofd_obs::enabled() {
                let family = if t.fired {
                    &evofd_obs::metrics::ALERTS_FIRED_TOTAL
                } else {
                    &evofd_obs::metrics::ALERTS_RESOLVED_TOTAL
                };
                family.with_label(self.live.schema().name()).inc();
                let _span = evofd_obs::span(if t.fired { "alert.fired" } else { "alert.resolved" });
            }
            let index =
                self.validator.fds().iter().position(|f| f.display(self.live.schema()) == t.fd);
            if let Some(i) = index {
                let confidence = self.validator.measures(i).confidence;
                let kind = if t.fired {
                    DriftKind::AlertFired { rule: t.rule.to_string() }
                } else {
                    DriftKind::AlertResolved { rule: t.rule.to_string() }
                };
                let event = FdDrift {
                    fd_index: i,
                    fd: self.validator.fds()[i].clone(),
                    kind,
                    confidence_before: confidence,
                    confidence_after: confidence,
                    epoch: self.live.epoch(),
                    seq,
                    groups: Vec::new(),
                };
                self.validator.publish_drift(event);
            }
        }
    }
}

/// A directory of [`DurableRelation`]s — the durable database `evofd`
/// CLI commands and the SQL engine's durable backend operate on.
#[derive(Debug)]
pub struct Database {
    dir: PathBuf,
    opts: PersistOptions,
    tables: BTreeMap<String, DurableRelation>,
}

impl Database {
    /// Open a data directory, recovering every table found in it.
    /// Creates the directory if missing (an empty database).
    pub fn open(dir: &Path, opts: PersistOptions) -> Result<Database> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let mut tables = BTreeMap::new();
        let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            let path = entry.path();
            if !path.is_dir() || !path.join(SNAPSHOT_FILE).exists() {
                continue;
            }
            let table = DurableRelation::open(&path, opts.clone())?;
            let dir_name = entry.file_name().to_string_lossy().into_owned();
            if table.name() != dir_name {
                return Err(PersistError::Table {
                    name: dir_name,
                    message: format!("directory holds a snapshot of `{}`", table.name()),
                });
            }
            tables.insert(table.name().to_string(), table);
        }
        Ok(Database { dir: dir.to_path_buf(), opts, tables })
    }

    /// Create a new table from an initial relation and FD set.
    pub fn create_table(
        &mut self,
        rel: Relation,
        fds: Vec<Fd>,
        config: ValidatorConfig,
    ) -> Result<&mut DurableRelation> {
        let name = rel.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(PersistError::Table { name, message: "already exists".into() });
        }
        let table =
            DurableRelation::create(&self.dir.join(&name), rel, fds, config, self.opts.clone())?;
        Ok(self.tables.entry(name).or_insert(table))
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sorted table names.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// True iff the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Borrow a table.
    pub fn get(&self, name: &str) -> Result<&DurableRelation> {
        self.tables.get(name).ok_or_else(|| PersistError::Table {
            name: name.to_string(),
            message: "unknown table".into(),
        })
    }

    /// Mutably borrow a table.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut DurableRelation> {
        self.tables.get_mut(name).ok_or_else(|| PersistError::Table {
            name: name.to_string(),
            message: "unknown table".into(),
        })
    }

    /// A canonical (tombstone-free) relation of a table's current
    /// contents — what SELECTs serve.
    pub fn canonical(&self, name: &str) -> Result<Relation> {
        Ok(self.get(name)?.live().snapshot())
    }

    /// Iterate `(name, table)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DurableRelation)> {
        self.tables.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Adjust every table's tombstone compaction threshold.
    pub fn set_compact_threshold(&mut self, threshold: f64) {
        self.opts.compact_threshold = threshold;
        for table in self.tables.values_mut() {
            table.set_compact_threshold(threshold);
        }
    }

    /// Checkpoint every table (snapshot + WAL reset) — a clean shutdown.
    pub fn checkpoint_all(&mut self) -> Result<()> {
        for table in self.tables.values_mut() {
            table.checkpoint()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::{relation_of_strs, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("evofd_persist_store_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn srow(a: &str, b: &str) -> Vec<Value> {
        vec![Value::str(a), Value::str(b)]
    }

    fn base_rel(name: &str) -> Relation {
        relation_of_strs(name, &["X", "Y"], &[&["a", "1"], &["b", "2"], &["c", "3"]]).unwrap()
    }

    fn create(dir: &Path, opts: PersistOptions) -> DurableRelation {
        let rel = base_rel("t");
        let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
        DurableRelation::create(dir, rel, fds, ValidatorConfig::default(), opts).unwrap()
    }

    /// One table's full observable state, capturable so two sequential
    /// opens of the SAME directory can be compared (the directory lock
    /// forbids holding both opens at once).
    #[derive(Debug, PartialEq)]
    struct StateImage {
        snapshot_bytes: Vec<u8>,
        cursor: u64,
        last_seq: u64,
    }

    fn image_of(t: &DurableRelation) -> StateImage {
        StateImage {
            // The canonical snapshot encoding covers the exact physical
            // relation (codes, dictionaries, mask), the epoch and every
            // tracker's counts, byte-deterministically.
            snapshot_bytes: crate::snapshot::encode_snapshot(
                t.live(),
                t.validator(),
                t.decisions(),
                t.indexed_columns(),
                t.alerts(),
                0,
                0,
            ),
            cursor: t.cursor(),
            last_seq: t.last_seq(),
        }
    }

    #[test]
    fn kill_and_reopen_replays_the_wal_tail() {
        let dir = tmpdir("reopen");
        let mut t = create(&dir, PersistOptions::default());
        let (_, drift) = t.apply(&Delta::inserting(vec![srow("a", "9")])).unwrap();
        assert_eq!(drift.len(), 1, "X -> Y drifted");
        t.apply(&Delta::deleting([1])).unwrap();
        t.set_cursor(17).unwrap();
        // "Kill": drop without checkpoint. Reopen and compare.
        let live_epoch = t.live().epoch();
        drop(t);
        let r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.recovery().replayed, 3, "two deltas + one cursor");
        assert_eq!(r.live().epoch(), live_epoch);
        assert_eq!(r.cursor(), 17);
        assert!(!r.validator().is_exact(0), "violation survived recovery");
        // Further traffic keeps working.
        let mut r = r;
        r.apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        assert_eq!(r.live().row_count(), 4);
    }

    #[test]
    fn reopen_equals_uninterrupted_run() {
        let dir = tmpdir("equiv");
        let mut t = create(&dir, PersistOptions::default());
        // Mirror the same traffic on a purely in-memory twin.
        let rel = base_rel("t");
        let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
        let mut live = LiveRelation::new(rel);
        live.set_compact_threshold(PersistOptions::default().compact_threshold);
        let mut v = IncrementalValidator::new(&live, fds);

        let deltas = [
            Delta::inserting(vec![srow("a", "9"), srow("e", "5")]),
            Delta::deleting([0, 3]),
            Delta::inserting(vec![srow("f", "6")]),
            Delta { inserts: vec![srow("g", "7")], deletes: vec![1] },
        ];
        for d in &deltas {
            t.apply(d).unwrap();
            let applied = live.apply(d).unwrap();
            v.apply(&live, &applied);
            if live.maybe_compact() > 0 {
                v.resync(&live);
            }
        }
        drop(t);
        let r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.live().epoch(), live.epoch());
        assert_eq!(r.live().live_mask(), live.live_mask());
        for i in 0..v.fds().len() {
            assert_eq!(r.validator().measures(i), v.measures(i));
        }
    }

    #[test]
    fn failed_delta_writes_rollback_and_recovery_skips_it() {
        let dir = tmpdir("rollback");
        let mut t = create(&dir, PersistOptions::default());
        t.apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        // Arity-violating insert: journaled, fails to apply, rolled back.
        let bad = Delta::inserting(vec![vec![Value::str("only-one")]]);
        assert!(t.apply(&bad).is_err());
        assert_eq!(t.live().row_count(), 4, "in-memory state unchanged");
        // A later good delta must replay cleanly over the rollback.
        t.apply(&Delta::deleting([0])).unwrap();
        let epoch = t.live().epoch();
        drop(t);
        let r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.recovery().rolled_back, 1);
        assert_eq!(r.live().epoch(), epoch);
        assert_eq!(r.live().row_count(), 3);
    }

    #[test]
    fn doomed_final_delta_without_rollback_record_recovers() {
        // The crash window: a delta is journaled (and fsynced), the
        // in-memory engine rejects it atomically, and the process dies
        // BEFORE the rollback record reaches disk. The WAL then ends with
        // a checksum-valid but unappliable delta.
        let dir = tmpdir("doomed_tail");
        let mut t = create(&dir, PersistOptions::default());
        t.apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        let valid = t.wal_bytes();
        drop(t);
        {
            let mut w =
                crate::wal::WalWriter::open_at(&dir.join(WAL_FILE), SyncPolicy::PerCommit, valid)
                    .unwrap();
            w.append(&WalRecord::Delta {
                seq: 2,
                epoch_after: 2,
                cursor: None,
                inserts: vec![vec![Value::str("arity-1-only")]], // schema is arity 2
                deletes: vec![],
            })
            .unwrap();
        }
        // First reopen: the doomed tail is treated as an implicit
        // rollback and amputated, not a permanent open failure.
        let r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.recovery().rolled_back, 1);
        assert_eq!(r.live().row_count(), 4, "doomed delta never applied");
        assert_eq!(r.live().epoch(), 1);
        drop(r);
        // Second reopen: the log is clean now (no doomed record left).
        let mut r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.recovery().rolled_back, 0);
        // And new traffic still lands and survives.
        r.apply(&Delta::inserting(vec![srow("e", "5")])).unwrap();
        drop(r);
        let r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.live().row_count(), 5);
    }

    #[test]
    fn doomed_delta_mid_wal_is_still_a_hard_error() {
        // An unappliable delta FOLLOWED by valid records is genuine
        // corruption (later records were journaled against a state the
        // doomed delta never produced) and must not be skipped silently.
        let dir = tmpdir("doomed_mid");
        let t = create(&dir, PersistOptions::default());
        let valid = t.wal_bytes();
        drop(t);
        {
            let mut w =
                crate::wal::WalWriter::open_at(&dir.join(WAL_FILE), SyncPolicy::PerCommit, valid)
                    .unwrap();
            w.append(&WalRecord::Delta {
                seq: 1,
                epoch_after: 1,
                cursor: None,
                inserts: vec![vec![Value::str("arity-1-only")]],
                deletes: vec![],
            })
            .unwrap();
            w.append(&WalRecord::Cursor { seq: 2, value: 9 }).unwrap();
        }
        let err = DurableRelation::open(&dir, PersistOptions::default()).unwrap_err();
        assert!(matches!(err, PersistError::Recovery { .. }), "{err:?}");
    }

    #[test]
    fn wal_threshold_triggers_snapshot_compaction() {
        let dir = tmpdir("snapcompact");
        let opts = PersistOptions { wal_compact_bytes: 256, ..PersistOptions::default() };
        let mut t = create(&dir, opts.clone());
        let mut snapshotted = false;
        for i in 0..32 {
            t.apply(&Delta::inserting(vec![srow(&format!("k{i}"), &format!("{i}"))])).unwrap();
            if t.wal_bytes() == crate::wal::WAL_HEADER_LEN {
                snapshotted = true;
            }
        }
        assert!(snapshotted, "the WAL was reset by a snapshot at least once");
        drop(t);
        let r = DurableRelation::open(&dir, opts).unwrap();
        assert_eq!(r.live().row_count(), 35);
        // Most records live in the snapshot now, only a short tail replays.
        assert!(r.recovery().replayed < 32);
    }

    #[test]
    fn tombstone_compaction_is_journaled_and_replayed() {
        let dir = tmpdir("compact");
        let opts = PersistOptions { compact_threshold: 0.4, ..PersistOptions::default() };
        let mut t = create(&dir, opts.clone());
        t.apply(&Delta::deleting([0, 1])).unwrap(); // 2/3 dead > 0.4 → compacts
        assert_eq!(t.live().physical_rows(), 1, "compacted");
        let epoch = t.live().epoch();
        t.apply(&Delta::inserting(vec![srow("z", "26")])).unwrap();
        drop(t);
        let r = DurableRelation::open(&dir, opts).unwrap();
        assert_eq!(r.live().physical_rows(), 2);
        assert!(r.live().epoch() > epoch);
        assert_eq!(r.validator().measures(0).distinct_lhs, 2);
    }

    #[test]
    fn apply_with_cursor_commits_both_atomically() {
        let dir = tmpdir("cursor_atomic");
        let mut t = create(&dir, PersistOptions::default());
        t.apply_with_cursor(&Delta::inserting(vec![srow("d", "4")]), Some(3)).unwrap();
        assert_eq!(t.cursor(), 3);
        // An unchanged cursor is a no-op: the WAL does not grow.
        let bytes = t.wal_bytes();
        t.apply_with_cursor(&Delta::new(), Some(3)).unwrap();
        assert_eq!(t.wal_bytes(), bytes, "no redundant cursor record");
        // Empty delta + a MOVED cursor still journals the position.
        t.apply_with_cursor(&Delta::new(), Some(5)).unwrap();
        drop(t);
        let r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.cursor(), 5);
        assert_eq!(r.live().row_count(), 4);
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = tmpdir("clobber");
        let _t = create(&dir, PersistOptions::default());
        let rel = base_rel("t");
        let err = DurableRelation::create(
            &dir,
            rel,
            Vec::new(),
            ValidatorConfig::default(),
            PersistOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PersistError::Table { .. }));
    }

    #[test]
    fn checkpoint_then_reopen_replays_nothing() {
        let dir = tmpdir("checkpoint");
        let mut t = create(&dir, PersistOptions::default());
        t.apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        t.checkpoint().unwrap();
        let epoch = t.live().epoch();
        drop(t);
        let r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.recovery().replayed, 0);
        assert_eq!(r.live().epoch(), epoch);
        assert_eq!(r.live().row_count(), 4);
    }

    #[test]
    fn group_commit_still_recovers_cleanly_after_drop() {
        let dir = tmpdir("group");
        let opts = PersistOptions { sync: SyncPolicy::GroupCommit(16), ..Default::default() };
        let mut t = create(&dir, opts.clone());
        for i in 0..5 {
            t.apply(&Delta::inserting(vec![srow(&format!("g{i}"), "1")])).unwrap();
        }
        // A clean drop leaves the frames written (only fsync was deferred).
        drop(t);
        let r = DurableRelation::open(&dir, opts.clone()).unwrap();
        assert_eq!(r.live().row_count(), 8);
        let first = image_of(&r);
        drop(r);
        // Recovery is idempotent: opening twice yields identical state.
        // (Sequentially — the directory lock forbids concurrent opens.)
        let b = DurableRelation::open(&dir, opts).unwrap();
        assert_eq!(image_of(&b), first);
    }

    #[test]
    fn directory_lock_blocks_second_open_and_releases_on_drop() {
        let dir = tmpdir("locked");
        let t = create(&dir, PersistOptions::default());
        let err = DurableRelation::open(&dir, PersistOptions::default()).unwrap_err();
        assert!(matches!(err, PersistError::Locked { .. }), "{err:?}");
        drop(t);
        DurableRelation::open(&dir, PersistOptions::default()).unwrap();
    }

    #[test]
    fn ship_from_serves_frames_and_bootstrap() {
        let dir = tmpdir("ship");
        let mut t = create(&dir, PersistOptions::default());
        t.apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        t.apply(&Delta::inserting(vec![srow("e", "5")])).unwrap();
        assert_eq!(t.last_seq(), 2);
        assert_eq!(t.snapshot_seq(), 0);
        // From 0: both frames; from 1: one; from 2 (caught up): none.
        let Shipment::Frames(f) = t.ship_from(0).unwrap() else { panic!("expected frames") };
        assert_eq!(f.len(), 2);
        assert_eq!(WalRecord::decode_frame(&f[0]).unwrap().seq(), 1);
        let Shipment::Frames(f) = t.ship_from(1).unwrap() else { panic!() };
        assert_eq!(f.len(), 1);
        let Shipment::Frames(f) = t.ship_from(2).unwrap() else { panic!() };
        assert!(f.is_empty());
        // After a checkpoint the horizon moves: position 1 now bootstraps.
        t.checkpoint().unwrap();
        assert_eq!(t.snapshot_seq(), 2);
        let Shipment::Bootstrap { snapshot, .. } = t.ship_from(1).unwrap() else {
            panic!("expected bootstrap")
        };
        let state = crate::snapshot::decode_snapshot(Path::new("mem"), &snapshot).unwrap();
        assert_eq!(state.last_seq, 2);
        assert_eq!(state.live.row_count(), 5);
        // At the horizon itself, frames (currently none) still work.
        let Shipment::Frames(f) = t.ship_from(2).unwrap() else { panic!() };
        assert!(f.is_empty());
    }

    #[test]
    fn ingest_replicated_mirrors_leader_state() {
        let ldir = tmpdir("ingest_leader");
        let fdir = tmpdir("ingest_follower");
        let mut leader = create(&ldir, PersistOptions::default());
        // Follower bootstraps from the leader's create-time image.
        let mut follower = create(&fdir, PersistOptions::default());
        follower.install_snapshot(&leader.encode_current_snapshot()).unwrap();

        leader.apply(&Delta::inserting(vec![srow("a", "9")])).unwrap();
        leader.apply(&Delta::deleting([1])).unwrap();
        leader.set_cursor(7).unwrap();
        let Shipment::Frames(frames) = leader.ship_from(follower.last_seq()).unwrap() else {
            panic!()
        };
        assert_eq!(frames.len(), 3);
        for f in &frames {
            let rec = WalRecord::decode_frame(f).unwrap();
            assert!(matches!(follower.ingest_replicated(&rec).unwrap(), ReplicaIngest::Applied(_)));
        }
        assert_eq!(image_of(&follower), image_of(&leader));
        // Duplicate delivery is skipped, not reapplied.
        let rec = WalRecord::decode_frame(&frames[0]).unwrap();
        assert!(matches!(follower.ingest_replicated(&rec).unwrap(), ReplicaIngest::Skipped));
        assert_eq!(image_of(&follower), image_of(&leader));
    }

    #[test]
    fn ingest_replicated_rejects_epoch_gaps_without_corrupting_the_wal() {
        let ldir = tmpdir("gap_leader");
        let fdir = tmpdir("gap_follower");
        let mut leader = create(&ldir, PersistOptions::default());
        let mut follower = create(&fdir, PersistOptions::default());
        follower.install_snapshot(&leader.encode_current_snapshot()).unwrap();

        leader.apply(&Delta::inserting(vec![srow("a", "9")])).unwrap();
        leader.apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        let Shipment::Frames(frames) = leader.ship_from(0).unwrap() else { panic!() };
        let second = WalRecord::decode_frame(&frames[1]).unwrap();
        // Shipping record 2 while the follower never saw record 1 must be
        // rejected BEFORE anything is journaled or applied.
        let wal_before = follower.wal_bytes();
        let err = follower.ingest_replicated(&second).unwrap_err();
        assert!(matches!(err, PersistError::Replication { .. }), "{err:?}");
        assert!(err.to_string().contains("skipped"), "{err}");
        assert_eq!(follower.wal_bytes(), wal_before, "nothing journaled");
        assert_eq!(follower.live().epoch(), 0, "nothing applied");
        // The follower is NOT bricked: the in-order stream still applies,
        // and a reopen recovers cleanly.
        for f in &frames {
            follower.ingest_replicated(&WalRecord::decode_frame(f).unwrap()).unwrap();
        }
        assert_eq!(image_of(&follower), image_of(&leader));
        drop(follower);
        let follower = DurableRelation::open(&fdir, PersistOptions::default()).unwrap();
        assert_eq!(image_of(&follower), image_of(&leader));
    }

    #[test]
    fn ingest_replicated_doomed_delta_waits_for_rollback() {
        let ldir = tmpdir("doom_leader");
        let fdir = tmpdir("doom_follower");
        let mut leader = create(&ldir, PersistOptions::default());
        let mut follower = create(&fdir, PersistOptions::default());
        follower.install_snapshot(&leader.encode_current_snapshot()).unwrap();

        // Leader rejects an arity-violating delta → delta + rollback pair.
        assert!(leader.apply(&Delta::inserting(vec![vec![Value::str("one")]])).is_err());
        leader.apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        let Shipment::Frames(frames) = leader.ship_from(0).unwrap() else { panic!() };
        assert_eq!(frames.len(), 3, "doomed delta + rollback + good delta");
        let recs: Vec<WalRecord> =
            frames.iter().map(|f| WalRecord::decode_frame(f).unwrap()).collect();
        assert!(matches!(follower.ingest_replicated(&recs[0]).unwrap(), ReplicaIngest::Doomed));
        // While the doom is pending, any record but its rollback errors.
        let err = follower.ingest_replicated(&recs[2]).unwrap_err();
        assert!(matches!(err, PersistError::Replication { .. }), "{err:?}");
        assert!(matches!(follower.ingest_replicated(&recs[1]).unwrap(), ReplicaIngest::Applied(_)));
        assert!(matches!(follower.ingest_replicated(&recs[2]).unwrap(), ReplicaIngest::Applied(_)));
        assert_eq!(image_of(&follower), image_of(&leader));
    }

    /// A 3-attribute relation where `X -> Y` is violated and `Z` repairs
    /// it (the advisor has a non-empty candidate pool).
    fn advisor_rel(name: &str) -> Relation {
        relation_of_strs(
            name,
            &["X", "Y", "Z"],
            &[&["a", "1", "p"], &["a", "2", "q"], &["b", "3", "r"]],
        )
        .unwrap()
    }

    fn create_advisor_table(dir: &Path) -> DurableRelation {
        let rel = advisor_rel("t");
        let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
        DurableRelation::create(dir, rel, fds, ValidatorConfig::default(), Default::default())
            .unwrap()
    }

    #[test]
    fn advisor_decisions_survive_kill_and_reopen() {
        let dir = tmpdir("advisor_reopen");
        let mut t = create_advisor_table(&dir);
        let advisor = t.ensure_advisor().unwrap();
        assert_eq!(advisor.pending(), vec![0]);
        let n_proposals = advisor.proposals(0).unwrap().len();
        assert!(n_proposals >= 1, "Z repairs X -> Y");
        let original = t.validator().fds()[0].clone();
        let chosen = t.accept_repair(0, 0).unwrap();
        assert!(chosen.measures.is_exact());
        // The evolved FD replaced the original in the tracked set; the
        // journaled FdSet retired the Accept decision (its FD is no
        // longer tracked), so the replacement IS the durable outcome.
        assert_eq!(t.validator().fds(), std::slice::from_ref(&chosen.fd));
        assert_ne!(t.validator().fds()[0], original);
        assert!(t.decisions().is_empty(), "decision retired by the replacement");
        let log = t.advisor().unwrap().log();
        assert!(
            log.iter().any(|e| e.to_string().contains("replaced")),
            "audit log records the swap: {log:?}"
        );
        // More traffic after the replacement, then kill without checkpoint.
        t.apply(&Delta::inserting(vec![vec![Value::str("c"), Value::str("4"), Value::str("s")]]))
            .unwrap();
        drop(t);

        let mut r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.validator().fds(), std::slice::from_ref(&chosen.fd), "FdSet replayed");
        assert!(r.decisions().is_empty());
        let advisor = r.ensure_advisor().unwrap();
        assert!(advisor.is_complete(), "the evolved FD holds");
        assert_eq!(advisor.evolved_fds(), vec![chosen.fd.clone()]);
        // A checkpoint folds the replaced set into the snapshot; a
        // further reopen restores it from there (empty WAL).
        r.checkpoint().unwrap();
        drop(r);
        let mut r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.recovery().replayed, 0);
        assert_eq!(r.validator().fds(), std::slice::from_ref(&chosen.fd));
        assert!(r.ensure_advisor().unwrap().is_complete());
    }

    #[test]
    fn keep_and_drop_decisions_are_durable() {
        let dir = tmpdir("advisor_keep");
        let mut t = create_advisor_table(&dir);
        t.decide_keep(0).unwrap();
        assert!(t.decide_keep(0).is_err(), "already decided");
        drop(t);
        let mut r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert!(matches!(
            r.ensure_advisor().unwrap().state(0).unwrap(),
            evofd_incremental::LiveFdState::Kept
        ));
    }

    #[test]
    fn set_fds_journals_the_new_set_and_replays() {
        let dir = tmpdir("fdset_replay");
        let mut t = create_advisor_table(&dir);
        let extra = Fd::parse(t.live().schema(), "Z -> Y").unwrap();
        let mut fds = t.validator().fds().to_vec();
        fds.push(extra.clone());
        assert_eq!(t.set_fds(fds).unwrap(), 2);
        assert_eq!(t.validator().fds().len(), 2);
        // Traffic against the new set, then kill.
        t.apply(&Delta::inserting(vec![vec![Value::str("d"), Value::str("5"), Value::str("p")]]))
            .unwrap();
        assert!(!t.validator().is_exact(1), "Z -> Y broken by the p/1 vs p/5 pair");
        drop(t);

        let r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.validator().fds().len(), 2, "FdSet record replayed");
        assert_eq!(r.validator().fds()[1], extra);
        assert!(!r.validator().is_exact(1));
        // Dropping a decided FD retires its decision deterministically.
        let mut r = r;
        r.decide_keep(0).unwrap();
        assert_eq!(r.decisions().len(), 1);
        let remaining = vec![r.validator().fds()[1].clone()];
        r.set_fds(remaining).unwrap();
        assert!(r.decisions().is_empty(), "decision for the dropped FD retired");
        drop(r);
        let r = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(r.validator().fds().len(), 1);
        assert!(r.decisions().is_empty());
    }

    #[test]
    fn replica_ingests_fdset_and_decisions() {
        let ldir = tmpdir("advisor_repl_leader");
        let fdir = tmpdir("advisor_repl_follower");
        let mut leader = create_advisor_table(&ldir);
        let mut follower = DurableRelation::create(
            &fdir,
            advisor_rel("t"),
            vec![Fd::parse(advisor_rel("t").schema(), "X -> Y").unwrap()],
            ValidatorConfig::default(),
            PersistOptions::default(),
        )
        .unwrap();
        follower.install_snapshot(&leader.encode_current_snapshot()).unwrap();

        // Leader: a delta, an ALTER, a decision.
        leader
            .apply(&Delta::inserting(vec![vec![Value::str("c"), Value::str("4"), Value::str("s")]]))
            .unwrap();
        let mut fds = leader.validator().fds().to_vec();
        fds.push(Fd::parse(leader.live().schema(), "Z -> Y").unwrap());
        leader.set_fds(fds).unwrap();
        leader.accept_repair(0, 0).unwrap();

        let Shipment::Frames(frames) = leader.ship_from(follower.last_seq()).unwrap() else {
            panic!("expected frames")
        };
        // ACCEPT REPAIR ships as its Decision frame followed by the
        // FdSet frame that swaps the evolved FD into the tracked set.
        assert_eq!(frames.len(), 4, "delta + fdset + decision + replacement fdset");
        for f in &frames {
            let rec = WalRecord::decode_frame(f).unwrap();
            assert!(matches!(follower.ingest_replicated(&rec).unwrap(), ReplicaIngest::Applied(_)));
        }
        assert_eq!(follower.validator().fds().len(), 2);
        assert_eq!(follower.validator().fds(), leader.validator().fds());
        assert_eq!(follower.decisions(), leader.decisions());
        assert_eq!(image_of(&follower), image_of(&leader));
        // The replica's tracked set now leads with the evolved FD, which
        // the replayed repair made exact.
        let advisor = follower.ensure_advisor().unwrap();
        assert!(matches!(advisor.state(0).unwrap(), evofd_incremental::LiveFdState::Satisfied));
        // And a follower kill/reopen keeps everything.
        drop(follower);
        let mut follower = DurableRelation::open(&fdir, PersistOptions::default()).unwrap();
        assert_eq!(image_of(&follower), image_of(&leader));
        assert!(matches!(
            follower.ensure_advisor().unwrap().state(0).unwrap(),
            evofd_incremental::LiveFdState::Satisfied
        ));
    }

    #[test]
    fn replica_rejects_bad_decision_frames_before_journaling() {
        let ldir = tmpdir("bad_decision_leader");
        let fdir = tmpdir("bad_decision_follower");
        let mut leader = create_advisor_table(&ldir);
        let mut follower = create_advisor_table(&fdir);
        follower.install_snapshot(&leader.encode_current_snapshot()).unwrap();
        follower.ensure_advisor().unwrap();

        // A decision for an FD the table does not track: rejected BEFORE
        // anything reaches the local WAL.
        let bogus = WalRecord::Decision {
            seq: 1,
            record: evofd_incremental::DecisionRecord {
                fd: "[Y] -> [X]".into(),
                action: evofd_incremental::DecisionAction::Keep,
            },
        };
        let wal_before = follower.wal_bytes();
        let err = follower.ingest_replicated(&bogus).unwrap_err();
        assert!(matches!(err, PersistError::Replication { .. }), "{err:?}");
        assert_eq!(follower.wal_bytes(), wal_before, "nothing journaled");

        // A duplicate of an already-applied decision: same story.
        leader.accept_repair(0, 0).unwrap();
        let Shipment::Frames(frames) = leader.ship_from(0).unwrap() else { panic!() };
        let decision = WalRecord::decode_frame(&frames[0]).unwrap();
        follower.ingest_replicated(&decision).unwrap();
        let dup = match &decision {
            WalRecord::Decision { record, .. } => {
                WalRecord::Decision { seq: 2, record: record.clone() }
            }
            other => panic!("expected a decision frame, got {other:?}"),
        };
        let wal_before = follower.wal_bytes();
        let err = follower.ingest_replicated(&dup).unwrap_err();
        assert!(matches!(err, PersistError::Replication { .. }), "{err:?}");
        assert_eq!(follower.wal_bytes(), wal_before, "nothing journaled");

        // The follower is not poisoned: reopen + advisor stay healthy.
        drop(follower);
        let mut follower = DurableRelation::open(&fdir, PersistOptions::default()).unwrap();
        assert!(follower.ensure_advisor().unwrap().is_complete());
    }

    #[test]
    fn replica_advisor_stays_current_under_ingest() {
        // A materialized replica advisor must track ingested deltas and
        // compactions like the leader's does.
        let ldir = tmpdir("replica_advisor_leader");
        let fdir = tmpdir("replica_advisor_follower");
        let opts = PersistOptions { compact_threshold: 0.4, ..PersistOptions::default() };
        let rel = advisor_rel("t");
        let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
        let mut leader =
            DurableRelation::create(&ldir, rel, fds, ValidatorConfig::default(), opts.clone())
                .unwrap();
        let mut follower = DurableRelation::create(
            &fdir,
            advisor_rel("t"),
            vec![Fd::parse(advisor_rel("t").schema(), "X -> Y").unwrap()],
            ValidatorConfig::default(),
            opts,
        )
        .unwrap();
        follower.install_snapshot(&leader.encode_current_snapshot()).unwrap();
        follower.ensure_advisor().unwrap();

        // Delete both conflicting rows: forces a journaled compaction AND
        // repairs X -> Y by the data.
        leader.apply(&Delta::deleting([0, 1])).unwrap();
        let Shipment::Frames(frames) = leader.ship_from(0).unwrap() else { panic!() };
        for f in &frames {
            follower.ingest_replicated(&WalRecord::decode_frame(f).unwrap()).unwrap();
        }
        let leader_pending = leader.ensure_advisor().unwrap().pending();
        let advisor = follower.advisor().expect("still materialized");
        assert_eq!(advisor.pending(), leader_pending, "advisor tracked the ingested frames");
        assert!(advisor.pending().is_empty(), "X -> Y was repaired by the data");

        // Drift back into violation: proposals reappear on the replica.
        leader
            .apply(&Delta::inserting(vec![
                vec![Value::str("c"), Value::str("9"), Value::str("z")],
                vec![Value::str("c"), Value::str("8"), Value::str("w")],
            ]))
            .unwrap();
        let Shipment::Frames(frames) = leader.ship_from(follower.last_seq()).unwrap() else {
            panic!()
        };
        for f in &frames {
            follower.ingest_replicated(&WalRecord::decode_frame(f).unwrap()).unwrap();
        }
        let advisor = follower.advisor().expect("still materialized");
        assert_eq!(advisor.pending(), vec![0]);
        assert!(!advisor.proposals(0).unwrap().is_empty(), "Z repairs it");
    }

    #[test]
    fn database_create_open_and_canonical() {
        let dir = tmpdir("db");
        let mut db = Database::open(&dir, PersistOptions::default()).unwrap();
        assert!(db.names().is_empty());
        let rel = base_rel("alpha");
        let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
        db.create_table(rel, fds, ValidatorConfig::default()).unwrap();
        db.create_table(base_rel("beta"), Vec::new(), ValidatorConfig::default()).unwrap();
        assert_eq!(db.names(), vec!["alpha", "beta"]);
        db.get_mut("alpha").unwrap().apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        assert!(db.create_table(base_rel("alpha"), Vec::new(), Default::default()).is_err());
        drop(db);

        let db = Database::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(db.names(), vec!["alpha", "beta"]);
        assert_eq!(db.canonical("alpha").unwrap().row_count(), 4);
        assert_eq!(db.canonical("beta").unwrap().row_count(), 3);
        assert!(db.get("gamma").is_err());
    }

    #[test]
    fn database_checkpoint_all_and_threshold() {
        let dir = tmpdir("db_ckpt");
        let mut db = Database::open(&dir, PersistOptions::default()).unwrap();
        db.create_table(base_rel("t"), Vec::new(), ValidatorConfig::default()).unwrap();
        db.get_mut("t").unwrap().apply(&Delta::inserting(vec![srow("d", "4")])).unwrap();
        db.set_compact_threshold(0.9);
        db.checkpoint_all().unwrap();
        assert_eq!(db.get("t").unwrap().wal_bytes(), crate::wal::WAL_HEADER_LEN);
        drop(db); // release the table locks before reopening
        let db2 = Database::open(&dir, PersistOptions::default()).unwrap();
        assert_eq!(db2.get("t").unwrap().recovery().replayed, 0);
        assert_eq!(db2.canonical("t").unwrap().row_count(), 4);
    }
}
