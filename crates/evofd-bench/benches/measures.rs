//! Criterion micro-bench: confidence/goodness computation (Definition 3)
//! and FD ordering (§4.1) across relation sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evofd_core::{order_fds, ConflictMode, Fd, Measures};
use evofd_datagen::SyntheticSpec;
use evofd_storage::DistinctCache;

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("measures");
    for &rows in &[1_000usize, 10_000, 100_000] {
        let rel = SyntheticSpec::planted_fd("b", 2, 4, rows, 40, 0.1, 3).generate();
        let fd = Fd::parse(rel.schema(), "a0, a1 -> a6").expect("planted");
        group.bench_with_input(BenchmarkId::new("confidence_goodness", rows), &rel, |b, rel| {
            b.iter(|| {
                let mut cache = DistinctCache::disabled();
                Measures::compute(rel, &fd, &mut cache)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("order_fds");
    let rel = SyntheticSpec::uniform("b", 8, 20_000, 32, 5).generate();
    let fds: Vec<Fd> =
        (1..8).map(|i| Fd::parse(rel.schema(), &format!("a0 -> a{i}")).expect("valid")).collect();
    group.bench_function("rank_7_fds_20k_rows", |b| {
        b.iter(|| order_fds(&rel, &fds, ConflictMode::SharedAttrs, &mut DistinctCache::new()))
    });
    group.finish();
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
