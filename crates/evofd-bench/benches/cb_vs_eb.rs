//! Criterion micro-bench: CB vs EB candidate ranking on the same pool —
//! the §5 cost claim quantified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evofd_baseline::eb_rank_candidates;
use evofd_core::{candidate_pool, extend_by_one, Fd};
use evofd_datagen::SyntheticSpec;
use evofd_storage::DistinctCache;

fn bench_cb_vs_eb(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_candidates");
    group.sample_size(10);
    for &rows in &[2_000usize, 10_000, 40_000] {
        let spec = SyntheticSpec::planted_fd("b", 1, 9, rows, 40, 0.1, 13);
        let rel = spec.generate();
        let fd = Fd::parse(rel.schema(), &format!("a0 -> a{}", rel.arity() - 1)).expect("ok");
        let pool = candidate_pool(&rel, &fd);
        group.bench_with_input(BenchmarkId::new("cb_confidence", rows), &rel, |b, rel| {
            b.iter(|| {
                let mut cache = DistinctCache::new();
                extend_by_one(rel, &fd, &pool, &mut cache)
            })
        });
        group.bench_with_input(BenchmarkId::new("eb_entropy", rows), &rel, |b, rel| {
            b.iter(|| eb_rank_candidates(rel, &fd, &pool))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cb_vs_eb);
criterion_main!(benches);
