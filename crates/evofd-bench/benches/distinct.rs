//! Criterion micro-bench: distinct counting strategies.
//!
//! The `|π_X(r)|` primitive is the hot path of the whole CB method; this
//! bench compares partition refinement on dictionary codes against naive
//! row hashing, across row counts and attribute-set widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evofd_datagen::SyntheticSpec;
use evofd_storage::{count_distinct, count_distinct_naive, AttrSet};

fn bench_distinct(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_distinct");
    for &rows in &[1_000usize, 10_000, 50_000] {
        let rel = SyntheticSpec::uniform("b", 6, rows, 64, 1).generate();
        for &width in &[1usize, 3, 6] {
            let attrs = AttrSet::full(width);
            group.bench_with_input(
                BenchmarkId::new(format!("refine_w{width}"), rows),
                &rel,
                |b, rel| b.iter(|| count_distinct(rel, &attrs)),
            );
            if rows <= 10_000 {
                group.bench_with_input(
                    BenchmarkId::new(format!("naive_w{width}"), rows),
                    &rel,
                    |b, rel| b.iter(|| count_distinct_naive(rel, &attrs)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distinct);
criterion_main!(benches);
