//! Criterion micro-bench: the repair search (Algorithm 3) in find-first
//! and find-all modes, with and without the distinct-count cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evofd_core::{repair_fd, Fd, RepairConfig, SearchMode};
use evofd_datagen::SyntheticSpec;

fn bench_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair");
    group.sample_size(10);
    for &(rows, attrs) in &[(2_000usize, 8usize), (10_000, 10), (10_000, 12)] {
        let spec = SyntheticSpec::planted_fd("b", 1, attrs - 3, rows, 30, 0.05, 11);
        let rel = spec.generate();
        let fd = Fd::parse(rel.schema(), &format!("a0 -> a{}", rel.arity() - 1)).expect("ok");
        let id = format!("{rows}r_{attrs}a");
        group.bench_with_input(BenchmarkId::new("find_first", &id), &rel, |b, rel| {
            b.iter(|| repair_fd(rel, &fd, &RepairConfig::find_first()).expect("violated"))
        });
        group.bench_with_input(BenchmarkId::new("find_all", &id), &rel, |b, rel| {
            b.iter(|| repair_fd(rel, &fd, &RepairConfig::find_all()).expect("violated"))
        });
        group.bench_with_input(BenchmarkId::new("find_all_nocache", &id), &rel, |b, rel| {
            let cfg = RepairConfig {
                use_cache: false,
                mode: SearchMode::FindAll,
                ..RepairConfig::default()
            };
            b.iter(|| repair_fd(rel, &fd, &cfg).expect("violated"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repair);
criterion_main!(benches);
