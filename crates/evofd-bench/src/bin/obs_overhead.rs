//! `obs_overhead` — cost of the metrics/tracing layer on the hot paths.
//!
//! Two experiments, written to `BENCH_obs.json`:
//!
//! 1. **Incremental delta-apply** — single-row insert deltas through
//!    `IncrementalValidator` with instrumentation disabled vs enabled.
//! 2. **WAL append throughput** — the same stream journaled through a
//!    zero-FD `DurableRelation` at `no-sync` (pure append path).
//!
//! Each experiment alternates disabled/enabled runs within every rep
//! and gates on the **minimum paired ratio** — adjacent runs share
//! whatever frequency/IO drift the machine is under, so their ratio
//! isolates the instrumentation cost far better than comparing global
//! minima across drifting reps. The run **fails** (non-zero exit) if
//! either enabled-vs-disabled overhead exceeds the gate — this is the
//! CI observability smoke gate (`--smoke` shrinks the sizes).
//!
//! The disabled and enabled validator runs must also produce identical
//! FD measures: instrumentation observes, it never steers.
//!
//! Flags: `--rows N` (default 5000), `--deltas N` (default 2000),
//! `--reps N` (default 5), `--gate PCT` (default 5), `--seed S`,
//! `--out PATH`, `--smoke`.

use evofd_bench::{banner, timed, Args};
use evofd_core::{Fd, Measures, TextTable};
use evofd_datagen::SyntheticSpec;
use evofd_incremental::{Delta, IncrementalValidator, LiveRelation};
use evofd_persist::{DurableRelation, PersistOptions, SyncPolicy};
use evofd_storage::Relation;

fn fds(rel: &Relation) -> Vec<Fd> {
    ["a0, a1 -> a4", "a0 -> a2", "a2, a3 -> a0"]
        .iter()
        .map(|t| Fd::parse(rel.schema(), t).expect("static FD"))
        .collect()
}

/// Apply the stream through an incremental validator; return the elapsed
/// time and the final per-FD measures (for the equivalence assertion).
fn run_delta_apply(base: &Relation, stream: &[Delta]) -> (f64, Vec<Measures>) {
    let mut live = LiveRelation::new(base.clone());
    let mut validator = IncrementalValidator::new(&live, fds(base));
    let (_, elapsed) = timed(|| {
        for delta in stream {
            let applied = live.apply(delta).expect("apply");
            validator.apply(&live, &applied);
        }
    });
    let measures = (0..validator.fds().len()).map(|i| validator.measures(i)).collect();
    (elapsed.as_secs_f64(), measures)
}

/// Journal the stream through a zero-FD durable table at no-sync; return
/// the elapsed seconds (pure WAL append, never a snapshot or fsync).
fn run_wal_stream(base: &Relation, stream: &[Delta]) -> f64 {
    let dir = std::env::temp_dir().join("evofd_bench_obs").join("wal");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = PersistOptions {
        sync: SyncPolicy::NoSync,
        wal_compact_bytes: u64::MAX,
        ..PersistOptions::default()
    };
    let mut t = DurableRelation::create(
        &dir,
        base.clone(),
        Vec::new(),
        evofd_incremental::ValidatorConfig::default(),
        opts,
    )
    .expect("create");
    let (_, elapsed) = timed(|| {
        for delta in stream {
            t.apply(delta).expect("apply");
        }
        t.sync().expect("final sync");
    });
    elapsed.as_secs_f64()
}

/// One experiment's paired measurement.
struct Paired {
    /// Fastest disabled run (seconds).
    disabled_min: f64,
    /// Fastest enabled run (seconds).
    enabled_min: f64,
    /// Overhead as a percentage: the minimum over reps of the
    /// within-rep `enabled / disabled` ratio.
    overhead_pct: f64,
}

/// Alternate disabled/enabled runs within every rep and keep the best
/// within-rep ratio. Pairing neighbours cancels machine drift that
/// spans a rep (CPU frequency, page cache, background IO); the minimum
/// over reps then strips the residual one-sided noise spikes.
fn alternate(reps: usize, mut run: impl FnMut() -> f64) -> Paired {
    let mut out =
        Paired { disabled_min: f64::INFINITY, enabled_min: f64::INFINITY, overhead_pct: f64::MAX };
    for _ in 0..reps {
        evofd_obs::disable();
        let off = run();
        evofd_obs::enable();
        let on = run();
        out.disabled_min = out.disabled_min.min(off);
        out.enabled_min = out.enabled_min.min(on);
        out.overhead_pct = out.overhead_pct.min((on / off.max(1e-12) - 1.0) * 100.0);
    }
    evofd_obs::disable();
    out
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let rows = args.get_or("rows", if smoke { 2000 } else { 5000usize });
    let n_deltas = args.get_or("deltas", if smoke { 1000 } else { 2000usize });
    let reps = args.get_or("reps", if smoke { 9 } else { 5usize });
    let gate = args.get_or("gate", 5.0f64);
    let seed = args.get_or("seed", 2016u64);
    let out_path = args.get("out").unwrap_or("BENCH_obs.json").to_string();

    banner(
        "obs_overhead — metrics/tracing cost on delta-apply and WAL appends",
        "alternating disabled/enabled reps, min per configuration; gate on overhead",
    );
    let base = SyntheticSpec::planted_fd("obs", 2, 2, rows, 64, 0.001, seed).generate();
    let donor =
        SyntheticSpec::planted_fd("obs", 2, 2, 4096.min(rows), 64, 0.001, seed + 1).generate();
    let stream: Vec<Delta> =
        (0..n_deltas).map(|i| Delta::inserting(vec![donor.row(i % donor.row_count())])).collect();
    println!(
        "base: {} rows × {} attrs; {} delta(s); {} rep(s) per configuration; gate {gate}%\n",
        base.row_count(),
        base.arity(),
        n_deltas,
        reps
    );

    // Instrumentation must not steer: measures agree across configurations.
    evofd_obs::disable();
    let (_, measures_off) = run_delta_apply(&base, &stream);
    evofd_obs::enable();
    let (_, measures_on) = run_delta_apply(&base, &stream);
    evofd_obs::disable();
    assert_eq!(measures_off, measures_on, "enabled run changed FD measures");

    let da = alternate(reps, || run_delta_apply(&base, &stream).0);
    let wal = alternate(reps, || run_wal_stream(&base, &stream));
    let (da_off, da_on, da_pct) = (da.disabled_min, da.enabled_min, da.overhead_pct);
    let (wal_off, wal_on, wal_pct) = (wal.disabled_min, wal.enabled_min, wal.overhead_pct);

    let mut table = TextTable::new(["experiment", "disabled s", "enabled s", "overhead"]);
    table.row([
        "delta-apply".into(),
        format!("{da_off:.4}"),
        format!("{da_on:.4}"),
        format!("{da_pct:+.2}%"),
    ]);
    table.row([
        "wal no-sync".into(),
        format!("{wal_off:.4}"),
        format!("{wal_on:.4}"),
        format!("{wal_pct:+.2}%"),
    ]);
    print!("{}", table.render());

    let passed = da_pct <= gate && wal_pct <= gate;
    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"deltas\": {n_deltas},\n  \"reps\": {reps},\n  \
         \"seed\": {seed},\n  \"gate_pct\": {gate},\n  \
         \"delta_apply\": {{\"disabled_s\": {da_off:.6}, \"enabled_s\": {da_on:.6}, \
         \"overhead_pct\": {da_pct:.3}}},\n  \
         \"wal_nosync\": {{\"disabled_s\": {wal_off:.6}, \"enabled_s\": {wal_on:.6}, \
         \"overhead_pct\": {wal_pct:.3}}},\n  \
         \"measures_identical\": true,\n  \"passed\": {passed}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    println!("\nwrote {out_path}");
    assert!(
        passed,
        "instrumentation overhead above {gate}% gate: delta-apply {da_pct:+.2}%, \
         WAL {wal_pct:+.2}%"
    );
    println!("overhead gate PASSED ({gate}% ceiling)");
}
