//! Reproduces **Table 4**: TPC-H databases overview (arity and
//! cardinality of each table at three database sizes).
//!
//! ```text
//! cargo run --release -p evofd-bench --bin table4 [--scale 0.01] [--paper]
//! ```
//!
//! `--paper` prints the spec cardinalities at the paper's three scales
//! (0.1 / 0.25 / 1.0) without generating the data; otherwise the tables
//! are actually generated at `--scale` and the real row counts and
//! in-memory sizes are shown.

use evofd_bench::{banner, paper, timed, Args};
use evofd_core::TextTable;
use evofd_datagen::{generate_table, TpchSpec, TpchTable};

fn main() {
    let args = Args::from_env();
    if args.flag("help") {
        println!("table4 — TPC-H overview. Flags: --scale <f> (default 0.01), --paper");
        return;
    }
    banner(
        "Table 4 — TPC-H Databases Overview",
        "paper: DBGEN at 100 MB / 250 MB / 1 GB; ours: evofd-datagen DBGEN port",
    );

    if args.flag("paper") {
        let mut t = TextTable::new(["Table", "arity", "100MB card.", "250MB card.", "1GB card."]);
        for (row, spec_table) in paper::TABLE4.iter().zip(TpchTable::ALL) {
            let s100 = TpchSpec::new(0.1);
            let s250 = TpchSpec::new(0.25);
            let s1g = TpchSpec::new(1.0);
            t.row([
                row.table.to_string(),
                format!("{} (paper {})", spec_table.arity(), row.arity),
                format!("{} (paper {})", s100.cardinality(spec_table), row.card_100mb),
                format!("{} (paper {})", s250.cardinality(spec_table), row.card_250mb),
                format!("{} (paper {})", s1g.cardinality(spec_table), row.card_1gb),
            ]);
        }
        print!("{}", t.render());
        return;
    }

    let scale = args.get_or("scale", 0.01f64);
    let spec = TpchSpec::new(scale);
    println!(
        "generating at scale factor {scale} (≈ {} MB paper-equivalent)\n",
        (scale * 1000.0) as u64
    );
    let mut t = TextTable::new(["Table", "arity", "cardinality", "approx. bytes", "gen time"]);
    for table in TpchTable::ALL {
        let (rel, took) = timed(|| generate_table(&spec, table));
        t.row([
            table.name().to_string(),
            rel.arity().to_string(),
            rel.row_count().to_string(),
            rel.approx_bytes().to_string(),
            evofd_core::format_duration(took),
        ]);
    }
    print!("{}", t.render());
    println!("\npaper reference (Table 4):");
    let mut p = TextTable::new(["Table", "arity", "100MB", "250MB", "1GB"]);
    for row in paper::TABLE4 {
        p.row([
            row.table.to_string(),
            row.arity.to_string(),
            row.card_100mb.to_string(),
            row.card_250mb.to_string(),
            row.card_1gb.to_string(),
        ]);
    }
    print!("{}", p.render());
}
