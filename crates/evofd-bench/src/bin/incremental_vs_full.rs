//! `incremental_vs_full` — delta maintenance vs full revalidation.
//!
//! The question the `evofd-incremental` subsystem exists to answer: when a
//! batch of writes lands on a live relation, is updating the per-FD group
//! trackers (O(changed rows)) actually cheaper than recomputing measures
//! and violating groups from scratch (O(all rows))? This bin sweeps the
//! delta size as a fraction of the relation and prints both costs plus the
//! crossover.
//!
//! Flags: `--rows N` (default 50_000), `--deltas 1,2,5,10,20,50` (percent
//! of rows changed per delta), `--seed S`, `--fds K` (number of tracked
//! FDs, default 2).

use evofd_bench::{banner, timed, Args};
use evofd_core::{format_duration, validate, violations, Fd, TextTable};
use evofd_datagen::SyntheticSpec;
use evofd_incremental::{Delta, IncrementalValidator, LiveRelation, ValidatorConfig};
use evofd_storage::Value;

fn main() {
    let args = Args::from_env();
    let rows = args.get_or("rows", 50_000usize);
    let pcts = args.list_or("deltas", &[1, 2, 5, 10, 20, 50]);
    let seed = args.get_or("seed", 2016u64);
    let n_fds = args.get_or("fds", 2usize).clamp(1, 3);

    banner(
        "incremental_vs_full — delta maintenance vs full revalidation",
        "per-delta cost of keeping Measures + violating groups current",
    );

    // A relation with a planted, lightly violated FD a0,a1 -> a4 plus two
    // independent attributes; a fresh generation with another seed supplies
    // realistic insert tuples.
    let spec = SyntheticSpec::planted_fd("live", 2, 2, rows, 64, 0.001, seed);
    let rel = spec.generate();
    let donor =
        SyntheticSpec::planted_fd("live", 2, 2, rows.max(1024), 64, 0.01, seed + 1).generate();
    let all_fds = [
        Fd::parse(rel.schema(), "a0, a1 -> a4").expect("planted FD"),
        Fd::parse(rel.schema(), "a0 -> a2").expect("static"),
        Fd::parse(rel.schema(), "a2, a3 -> a0").expect("static"),
    ];
    let fds: Vec<Fd> = all_fds.into_iter().take(n_fds).collect();

    println!("{} rows × {} attrs, {} tracked FD(s)\n", rel.row_count(), rel.arity(), fds.len());

    let mut table = TextTable::new([
        "delta",
        "changed rows",
        "apply (storage)",
        "incremental maintain",
        "full revalidate",
        "speedup",
    ]);

    for &pct in &pcts {
        let changes = (rows * pct / 100).max(1);
        let n_del = changes / 2;
        let n_ins = changes - n_del;

        let mut live = LiveRelation::new(rel.clone());
        // Force the incremental path even for huge deltas: this bin exists
        // to chart where that path stops winning.
        let config = ValidatorConfig {
            full_recompute_fraction: f64::INFINITY,
            ..ValidatorConfig::default()
        };
        let mut validator = IncrementalValidator::with_config(&live, fds.clone(), config);

        let inserts: Vec<Vec<Value>> =
            (0..n_ins).map(|i| donor.row(i % donor.row_count())).collect();
        let delta = Delta { inserts, deletes: (0..n_del).collect() };

        let (applied, t_apply) = timed(|| live.apply(&delta).expect("valid delta"));
        let (_, t_inc) = timed(|| validator.apply(&live, &applied));

        // Full revalidation: what the batch pipeline pays for the same
        // freshness — measures for every FD plus the violating-group scan.
        let snap = live.snapshot();
        let (_, t_full) = timed(|| {
            let report = validate(&snap, &fds);
            for fd in &fds {
                std::hint::black_box(violations(&snap, fd));
            }
            report
        });

        // Sanity: the maintained state matches the batch recompute.
        let full_report = validate(&snap, &fds);
        for (i, status) in full_report.statuses.iter().enumerate() {
            assert_eq!(validator.measures(i), status.measures, "divergence at {pct}%");
        }

        let speedup = t_full.as_secs_f64() / t_inc.as_secs_f64().max(1e-9);
        table.row([
            format!("{pct}%"),
            changes.to_string(),
            format_duration(t_apply),
            format_duration(t_inc),
            format_duration(t_full),
            format!("{speedup:.1}x"),
        ]);
    }

    print!("{}", table.render());
    println!(
        "\nspeedup = full revalidate / incremental maintain; >1 means delta \
         maintenance wins at that delta size."
    );
}
