//! `durability` — throughput and recovery study of `evofd-persist`.
//!
//! Three experiments, written to `BENCH_persist.json`:
//!
//! 1. **Write throughput** — deltas/sec through the WAL at each fsync
//!    policy (`per-commit`, `group:64`, `no-sync`), the classic
//!    group-commit trade-off.
//! 2. **Recovery time vs WAL length** — kill a table after T journaled
//!    deltas (no checkpoint) and time `DurableRelation::open`, showing
//!    recovery is O(tail).
//! 3. **Kill-and-reopen verification** — apply a mixed insert/delete
//!    stream against FDs under incremental validation, drop without
//!    checkpoint, reopen, and assert the recovered tracker measures are
//!    identical to both the uninterrupted in-memory run and a from-scratch
//!    batch recompute. This doubles as the CI durability smoke gate
//!    (`--smoke` shrinks the sizes).
//!
//! Flags: `--rows N` (base relation, default 5000), `--deltas N`
//! (default 2000), `--wal-sweep 256,1024,4096`, `--seed S`,
//! `--out PATH`, `--smoke`.

use std::path::PathBuf;

use evofd_bench::{banner, timed, Args};
use evofd_core::{Fd, TextTable};
use evofd_datagen::SyntheticSpec;
use evofd_incremental::{Delta, IncrementalValidator, LiveRelation, ValidatorConfig};
use evofd_persist::{DurableRelation, PersistOptions, SyncPolicy};
use evofd_storage::Relation;

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("evofd_bench_durability").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Base relation with a planted, lightly violated FD `a0,a1 -> a4`.
fn base_relation(rows: usize, seed: u64) -> Relation {
    SyntheticSpec::planted_fd("wal", 2, 2, rows, 64, 0.001, seed).generate()
}

fn fds(rel: &Relation) -> Vec<Fd> {
    ["a0, a1 -> a4", "a0 -> a2", "a2, a3 -> a0"]
        .iter()
        .map(|t| Fd::parse(rel.schema(), t).expect("static FD"))
        .collect()
}

/// A stream of single-row insert deltas drawn from a donor relation.
fn insert_stream(donor: &Relation, n: usize) -> Vec<Delta> {
    (0..n).map(|i| Delta::inserting(vec![donor.row(i % donor.row_count())])).collect()
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let rows = args.get_or("rows", if smoke { 2000 } else { 5000usize });
    let n_deltas = args.get_or("deltas", if smoke { 1000 } else { 2000usize });
    let sweep = args.list_or("wal-sweep", if smoke { &[256, 1024] } else { &[256, 1024, 4096] });
    let seed = args.get_or("seed", 2016u64);
    let out_path = args.get("out").unwrap_or("BENCH_persist.json").to_string();

    banner(
        "durability — delta WAL throughput, recovery time, kill-and-reopen",
        "fsync-per-commit vs group-commit vs no-sync; recovery is O(WAL tail)",
    );
    let base = base_relation(rows, seed);
    let donor = base_relation(4096.min(rows), seed + 1);
    println!(
        "base: {} rows × {} attrs; {} delta commit(s) per policy; WAL sweep {:?}\n",
        base.row_count(),
        base.arity(),
        n_deltas,
        sweep
    );

    // 1. Write throughput per sync policy. Huge snapshot threshold so the
    //    measurement is pure WAL appends, never a snapshot write.
    let policies = [SyncPolicy::PerCommit, SyncPolicy::GroupCommit(64), SyncPolicy::NoSync];
    let mut table = TextTable::new(["sync policy", "seconds", "deltas/sec"]);
    let mut json_policies = Vec::new();
    for policy in policies {
        let dir = bench_dir(&format!("writes_{policy}"));
        let opts = PersistOptions {
            sync: policy,
            wal_compact_bytes: u64::MAX,
            ..PersistOptions::default()
        };
        let mut t = DurableRelation::create(
            &dir,
            base.clone(),
            Vec::new(),
            ValidatorConfig::default(),
            opts,
        )
        .expect("create");
        let stream = insert_stream(&donor, n_deltas);
        let (_, elapsed) = timed(|| {
            for delta in &stream {
                t.apply(delta).expect("apply");
            }
            t.sync().expect("final sync");
        });
        let secs = elapsed.as_secs_f64();
        let rate = n_deltas as f64 / secs.max(1e-12);
        table.row([policy.to_string(), format!("{secs:.4}"), format!("{rate:.0}")]);
        json_policies.push(format!(
            "    {{\"policy\": \"{policy}\", \"seconds\": {secs:.6}, \"deltas_per_sec\": {rate:.1}}}"
        ));
    }
    print!("{}", table.render());

    // 2. Recovery time vs WAL length: kill after T deltas, time open().
    let mut table = TextTable::new(["WAL records", "WAL bytes", "recovery s", "replayed"]);
    let mut json_recovery = Vec::new();
    for &t_records in &sweep {
        let dir = bench_dir(&format!("recovery_{t_records}"));
        let opts = PersistOptions {
            sync: SyncPolicy::NoSync,
            wal_compact_bytes: u64::MAX,
            ..PersistOptions::default()
        };
        let mut t = DurableRelation::create(
            &dir,
            base.clone(),
            fds(&base),
            ValidatorConfig::default(),
            opts.clone(),
        )
        .expect("create");
        for delta in insert_stream(&donor, t_records) {
            t.apply(&delta).expect("apply");
        }
        t.sync().expect("sync");
        let wal_bytes = t.wal_bytes();
        drop(t); // kill without checkpoint
        let (reopened, elapsed) =
            timed(|| DurableRelation::open(&dir, opts.clone()).expect("open"));
        let secs = elapsed.as_secs_f64();
        assert_eq!(reopened.recovery().replayed, t_records, "whole tail replayed");
        table.row([
            t_records.to_string(),
            wal_bytes.to_string(),
            format!("{secs:.4}"),
            reopened.recovery().replayed.to_string(),
        ]);
        json_recovery.push(format!(
            "    {{\"records\": {t_records}, \"wal_bytes\": {wal_bytes}, \
             \"seconds\": {secs:.6}, \"replayed\": {}}}",
            reopened.recovery().replayed
        ));
    }
    print!("{}", table.render());

    // 3. Kill-and-reopen equivalence: mixed traffic, FDs under watch.
    let dir = bench_dir("verify");
    let opts = PersistOptions::default();
    let mut durable = DurableRelation::create(
        &dir,
        base.clone(),
        fds(&base),
        ValidatorConfig::default(),
        opts.clone(),
    )
    .expect("create");
    let mut live = LiveRelation::new(base.clone());
    live.set_compact_threshold(opts.compact_threshold);
    let mut validator = IncrementalValidator::new(&live, fds(&base));

    let mut deleted = 0usize;
    for (i, mut delta) in insert_stream(&donor, n_deltas).into_iter().enumerate() {
        if i % 3 == 0 {
            // Mix in a delete of the oldest surviving physical row.
            if let Some(row) = live.live_rows().nth(deleted % 7) {
                delta.deletes.push(row);
                deleted += 1;
            }
        }
        durable.apply(&delta).expect("durable apply");
        let applied = live.apply(&delta).expect("twin apply");
        validator.apply(&live, &applied);
        if live.maybe_compact() > 0 {
            validator.resync(&live);
        }
    }
    drop(durable); // kill
    let recovered = DurableRelation::open(&dir, opts).expect("reopen");
    assert_eq!(recovered.live().epoch(), live.epoch(), "epochs agree");
    assert_eq!(recovered.live().live_mask(), live.live_mask(), "tombstones agree");
    let snapshot = recovered.live().snapshot();
    let batch = recovered.validator().verify_against(&snapshot);
    for (i, status) in batch.statuses.iter().enumerate() {
        assert_eq!(
            recovered.validator().measures(i),
            validator.measures(i),
            "FD #{i}: recovered vs uninterrupted"
        );
        assert_eq!(
            recovered.validator().measures(i),
            status.measures,
            "FD #{i}: recovered vs batch recompute"
        );
    }
    println!(
        "\nkill-and-reopen verification PASSED: {} delta(s), {} live row(s), {} FD(s) — \
         recovered measures identical to the uninterrupted run and a batch recompute",
        n_deltas,
        recovered.live().row_count(),
        recovered.validator().fds().len()
    );

    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"deltas\": {n_deltas},\n  \"seed\": {seed},\n  \
         \"policies\": [\n{}\n  ],\n  \"recovery\": [\n{}\n  ],\n  \"verified\": true\n}}\n",
        json_policies.join(",\n"),
        json_recovery.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_persist.json");
    println!("wrote {out_path}");
}
