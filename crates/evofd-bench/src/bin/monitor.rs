//! `monitor` — end-to-end smoke bench for the durable FD-health monitor.
//!
//! One seeded run, written to `BENCH_monitor.json`:
//!
//! 1. stream N insert deltas through a durable engine with an alert
//!    rule installed, injecting **one** FD-breaking delta at a known
//!    WAL seq (timed: delta throughput with history sampling on);
//! 2. kill the engine and reopen it cold (timed: recovery), then ask
//!    `SHOW DRIFT HISTORY` to pinpoint the breaking delta — the run
//!    **fails** unless it names exactly the injected seq;
//! 3. check the alert fired exactly once and is still firing;
//! 4. serve `/metrics` and `/health` over a real TCP socket and scrape
//!    both (timed: scrape latency).
//!
//! This is the CI monitoring smoke gate (`--smoke` shrinks the sizes).
//!
//! Flags: `--deltas N` (default 5000), `--seed S`, `--out PATH`,
//! `--smoke`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use evofd_bench::{banner, timed, Args};
use evofd_core::TextTable;
use evofd_persist::{DbMonitorSource, DurableEngine, PersistOptions};
use evofd_storage::Value;

fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
    (head.to_string(), body.to_string())
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let n_deltas = args.get_or("deltas", if smoke { 1000 } else { 5000usize });
    let seed = args.get_or("seed", 2016u64);
    let out_path = args.get("out").unwrap_or("BENCH_monitor.json").to_string();

    banner(
        "monitor — durable FD-health history, drift pinpoint, alerts, /metrics",
        "one seeded stream with a single planted violation; gates on provenance",
    );

    let dir = std::env::temp_dir().join("evofd_bench_monitor").join(format!("run_{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut engine = DurableEngine::open(&dir, PersistOptions::default()).expect("open");
    engine
        .run_script(
            "CREATE TABLE t (zip TEXT, city TEXT);
             INSERT INTO t VALUES ('z0', 'c0');",
        )
        .expect("seed table");
    engine.execute("ALTER TABLE t ADD CONSTRAINT FD 'zip -> city'").expect("track FD");
    engine
        .execute("ALERT ON t FD 'zip -> city' WHEN confidence < 0.99999 FOR 1 EPOCHS")
        .expect("install alert");

    // Phase 1: the delta stream. Conforming inserts, with ONE breaking
    // delta planted in the middle at a seq we record.
    let break_at = n_deltas / 2 + (seed as usize % 10);
    let mut breaking_seq = 0u64;
    let (_, apply_elapsed) = timed(|| {
        for i in 0..n_deltas {
            if i == break_at {
                let db = engine.database_handle();
                let last = db.lock().unwrap().get("t").expect("table").last_seq();
                breaking_seq = last + 1;
                engine.execute("INSERT INTO t VALUES ('z0', 'conflict')").expect("breaking delta");
            } else {
                engine
                    .execute(&format!("INSERT INTO t VALUES ('z{i}', 'c{}')", i % 97))
                    .expect("conforming delta");
            }
        }
    });
    let apply_s = apply_elapsed.as_secs_f64();
    let history_bytes = {
        let db = engine.database_handle();
        let bytes = db.lock().unwrap().get("t").expect("table").history_bytes().len();
        bytes
    };

    // Phase 2: kill, reopen cold, pinpoint the breaking delta from the
    // durable history alone.
    drop(engine);
    let (mut engine, reopen_elapsed) =
        timed(|| DurableEngine::open(&dir, PersistOptions::default()).expect("reopen"));
    let reopen_s = reopen_elapsed.as_secs_f64();

    let drift = engine.query("SHOW DRIFT HISTORY FOR t FD 'zip -> city'").expect("drift history");
    let violated: Vec<u64> = (0..drift.row_count())
        .filter(|&i| drift.row(i)[3] == Value::str("violated"))
        .map(|i| match drift.row(i)[1] {
            Value::Int(n) => n as u64,
            ref v => panic!("seq column is not an int: {v:?}"),
        })
        .collect();
    let pinpointed = violated == vec![breaking_seq];

    // Phase 3: the alert fired exactly once and is still firing.
    let alerts = engine.query("SHOW ALERTS FOR t").expect("show alerts");
    let (firing, fired_count) = if alerts.row_count() == 1 {
        let row = alerts.row(0);
        (
            row[3] == Value::Bool(true),
            match row[5] {
                Value::Int(n) => n as u64,
                ref v => panic!("fired_count column is not an int: {v:?}"),
            },
        )
    } else {
        (false, 0)
    };

    // Phase 4: scrape /metrics and /health over a real socket.
    evofd_obs::enable();
    let source = Arc::new(DbMonitorSource::new(engine.database_handle()));
    let mut server = evofd_obs::serve("127.0.0.1:0", source).expect("serve");
    let addr = server.addr();
    let ((metrics_ok, health_ok), scrape_elapsed) = timed(|| {
        let (head, body) = http_get(addr, "/metrics");
        let metrics_ok = head.starts_with("HTTP/1.1 200") && body.contains("evofd_");
        let (head, body) = http_get(addr, "/health");
        let health_ok = head.starts_with("HTTP/1.1 200")
            && body.contains("\"table\":\"t\"")
            && body.contains("\"firing\":true");
        (metrics_ok, health_ok)
    });
    let scrape_ms = scrape_elapsed.as_secs_f64() * 1e3;
    server.shutdown();
    evofd_obs::disable();

    let deltas_per_s = n_deltas as f64 / apply_s.max(1e-12);
    let mut table = TextTable::new(["check", "result"]);
    table.row(["deltas applied".into(), format!("{n_deltas} ({deltas_per_s:.0}/s)")]);
    table.row(["history file".into(), format!("{history_bytes} bytes")]);
    table.row(["cold reopen".into(), format!("{reopen_s:.4}s")]);
    table.row([
        "drift pinpoint".into(),
        format!("seq {breaking_seq} -> {violated:?} ({})", if pinpointed { "ok" } else { "MISS" }),
    ]);
    table.row(["alert".into(), format!("firing={firing} fired_count={fired_count}")]);
    table.row([
        "scrape".into(),
        format!("{scrape_ms:.2}ms metrics={metrics_ok} health={health_ok}"),
    ]);
    print!("{}", table.render());

    let passed = pinpointed && firing && fired_count == 1 && metrics_ok && health_ok;
    let json = format!(
        "{{\n  \"deltas\": {n_deltas},\n  \"seed\": {seed},\n  \
         \"apply_s\": {apply_s:.6},\n  \"deltas_per_s\": {deltas_per_s:.1},\n  \
         \"history_bytes\": {history_bytes},\n  \"reopen_s\": {reopen_s:.6},\n  \
         \"breaking_seq\": {breaking_seq},\n  \"pinpointed\": {pinpointed},\n  \
         \"alert_firing\": {firing},\n  \"alert_fired_count\": {fired_count},\n  \
         \"scrape_ms\": {scrape_ms:.3},\n  \"metrics_ok\": {metrics_ok},\n  \
         \"health_ok\": {health_ok},\n  \"passed\": {passed}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_monitor.json");
    println!("\nwrote {out_path}");
    assert!(
        passed,
        "monitor smoke gate failed: pinpointed={pinpointed} firing={firing} \
         fired_count={fired_count} metrics_ok={metrics_ok} health_ok={health_ok}"
    );
    println!("monitor smoke gate PASSED");
}
