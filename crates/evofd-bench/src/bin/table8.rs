//! Reproduces **Table 8**: the Veterans case study — time to find the
//! **first** repair, sweeping tuples and attributes, plus the paper's
//! 70k×10 anomaly where *no repair exists* and find-first degenerates to
//! a full exploration.
//!
//! ```text
//! cargo run --release -p evofd-bench --bin table8 \
//!     [--rows 10000,20000,30000] [--attrs 10,14,18] [--paper] [--skip-anomaly]
//! ```

use evofd_bench::{banner, paper, timed, Args};
use evofd_core::{format_duration, repair_fd, RepairConfig, TextTable};
use evofd_datagen::{veterans, veterans_fd};

fn main() {
    let args = Args::from_env();
    if args.flag("help") {
        println!(
            "table8 — Veterans find-FIRST sweep. Flags: --rows a,b,c --attrs x,y,z --paper --skip-anomaly"
        );
        return;
    }
    let (rows_list, attrs_list) = if args.flag("paper") {
        (paper::SWEEP_ROWS.to_vec(), paper::SWEEP_ATTRS.to_vec())
    } else {
        (args.list_or("rows", &[10_000, 20_000, 30_000]), args.list_or("attrs", &[10, 14, 18]))
    };
    let seed = args.get_or("seed", 2016u64);
    banner(
        "Table 8 — Veterans sweep, find the FIRST repair",
        &format!("rows {rows_list:?} × attrs {attrs_list:?} (simulated KDD-Cup-98)"),
    );

    let cfg = RepairConfig::find_first();
    let mut headers = vec!["tuples \\ attrs".to_string()];
    for a in &attrs_list {
        headers.push(a.to_string());
    }
    let mut t = TextTable::new(headers);
    for &n_rows in &rows_list {
        let mut cells = vec![n_rows.to_string()];
        for &n_attrs in &attrs_list {
            let rel = veterans(seed, n_attrs, n_rows);
            let fd = veterans_fd(&rel);
            let (search, took) = timed(|| repair_fd(&rel, &fd, &cfg).expect("violated"));
            let mark = match search.best() {
                Some(best) => format!("+{}", best.added.len()),
                None => "no repair".to_string(),
            };
            cells.push(format!("{} ({mark})", format_duration(took)));
            eprintln!("  done: {n_rows} x {n_attrs}");
        }
        t.row(cells);
    }
    print!("{}", t.render());

    if !args.flag("skip-anomaly") {
        println!("\nthe 70k×10 anomaly (paper: find-first ≈ find-all when no repair exists):");
        // Twin rows beyond 60k make the 10-attribute slice unrepairable.
        let rel = veterans(seed, 10, 62_000);
        let fd = veterans_fd(&rel);
        let (first, t_first) = timed(|| repair_fd(&rel, &fd, &cfg).expect("violated"));
        let (all, t_all) =
            timed(|| repair_fd(&rel, &fd, &RepairConfig::find_all()).expect("violated"));
        let mut a = TextTable::new(["mode", "time", "repairs found"]);
        a.row(["find-first", &format_duration(t_first), &first.repairs.len().to_string()]);
        a.row(["find-all", &format_duration(t_all), &all.repairs.len().to_string()]);
        print!("{}", a.render());
        assert!(first.repairs.is_empty(), "slice constructed to be unrepairable");
    }

    println!("\npaper reference (Table 8):");
    let mut p = TextTable::new(["tuples \\ attrs", "10", "20", "30"]);
    for (i, &rows) in paper::SWEEP_ROWS.iter().enumerate() {
        p.row([
            rows.to_string(),
            format_duration(std::time::Duration::from_millis(paper::TABLE8_FIND_FIRST_MS[i][0])),
            format_duration(std::time::Duration::from_millis(paper::TABLE8_FIND_FIRST_MS[i][1])),
            format_duration(std::time::Duration::from_millis(paper::TABLE8_FIND_FIRST_MS[i][2])),
        ]);
    }
    print!("{}", p.render());
    println!("\nshape checks: find-first ≪ find-all cell-wise (compare table7), except\nwhere no repair exists — then the whole space is explored either way.");
}
