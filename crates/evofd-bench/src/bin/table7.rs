//! Reproduces **Table 7**: the Veterans case study — time to find **all**
//! repairs for one FD, sweeping the number of tuples and attributes.
//!
//! ```text
//! cargo run --release -p evofd-bench --bin table7 \
//!     [--rows 10000,20000,30000] [--attrs 10,14,18] [--paper]
//! ```
//!
//! `--paper` runs the paper's full grid (10k–70k rows × 10/20/30 attrs;
//! expect minutes). The expected shape: time grows **exponentially with
//! the attribute count** and roughly linearly with the tuple count.

use evofd_bench::{banner, paper, timed, Args};
use evofd_core::{format_duration, repair_fd, RepairConfig, TextTable};
use evofd_datagen::{veterans, veterans_fd};

fn main() {
    let args = Args::from_env();
    if args.flag("help") {
        println!("table7 — Veterans find-ALL sweep. Flags: --rows a,b,c --attrs x,y,z --paper");
        return;
    }
    let (rows_list, attrs_list) = if args.flag("paper") {
        (paper::SWEEP_ROWS.to_vec(), paper::SWEEP_ATTRS.to_vec())
    } else {
        (args.list_or("rows", &[10_000, 20_000, 30_000]), args.list_or("attrs", &[10, 14, 18]))
    };
    let seed = args.get_or("seed", 2016u64);
    banner(
        "Table 7 — Veterans sweep, find ALL repairs",
        &format!("rows {rows_list:?} × attrs {attrs_list:?} (simulated KDD-Cup-98)"),
    );

    let cfg = RepairConfig::find_all();
    let mut headers = vec!["tuples \\ attrs".to_string()];
    for a in &attrs_list {
        headers.push(a.to_string());
    }
    let mut t = TextTable::new(headers);
    for &n_rows in &rows_list {
        let mut cells = vec![n_rows.to_string()];
        for &n_attrs in &attrs_list {
            let rel = veterans(seed, n_attrs, n_rows);
            let fd = veterans_fd(&rel);
            let (search, took) = timed(|| repair_fd(&rel, &fd, &cfg).expect("violated"));
            cells.push(format!("{} ({} rep.)", format_duration(took), search.repairs.len()));
            eprintln!("  done: {n_rows} x {n_attrs}");
        }
        t.row(cells);
    }
    print!("{}", t.render());

    println!("\npaper reference (Table 7, rows 10k-70k × attrs 10/20/30):");
    let mut p = TextTable::new(["tuples \\ attrs", "10", "20", "30"]);
    for (i, &rows) in paper::SWEEP_ROWS.iter().enumerate() {
        p.row([
            rows.to_string(),
            format_duration(std::time::Duration::from_millis(paper::TABLE7_FIND_ALL_MS[i][0])),
            format_duration(std::time::Duration::from_millis(paper::TABLE7_FIND_ALL_MS[i][1])),
            format_duration(std::time::Duration::from_millis(paper::TABLE7_FIND_ALL_MS[i][2])),
        ]);
    }
    print!("{}", p.render());
    println!(
        "\nshape checks: each column grows ~linearly in tuples; each row grows\n\
         much faster (exponentially) in attributes."
    );
}
