//! The **Section 5 comparison** the paper could not run: confidence-based
//! (CB) vs entropy-based (EB, Chiang–Miller) repair, head to head.
//!
//! The paper proves the measures equivalent (Theorem 1) and argues CB is
//! computationally simpler; the EB tool was unavailable so no experiment
//! was possible. We implement both, so this binary measures:
//!
//! 1. ranking agreement (same exact-repair sets, same winners);
//! 2. wall-clock and work counters (CB: distinct counts; EB: clusterings
//!    materialised + contingency cells visited) across growing relations;
//! 3. the Theorem 1 null-set check on every candidate, plus the
//!    counterexample showing the printed converse needs a precondition.
//!
//! ```text
//! cargo run --release -p evofd-bench --bin cb_vs_eb [--rows 2000,8000,32000] [--attrs 12]
//! ```

use evofd_baseline::{theorem1_counterexample, MeasurePair, RankingComparison};
use evofd_bench::{banner, timed, Args};
use evofd_core::{candidate_pool, format_duration, Fd, TextTable};
use evofd_datagen::{places, places_fds, SyntheticSpec};
use evofd_storage::AttrSet;

fn main() {
    let args = Args::from_env();
    if args.flag("help") {
        println!("cb_vs_eb — §5 comparison. Flags: --rows a,b,c --attrs k --seed s");
        return;
    }
    let rows_list = args.list_or("rows", &[2_000, 8_000, 32_000]);
    let n_attrs = args.get_or("attrs", 12usize);
    let seed = args.get_or("seed", 5u64);
    banner(
        "Section 5 — CB (confidence) vs EB (entropy) candidate ranking",
        "the experimental comparison the paper could not run (EB tool unavailable)",
    );

    // Part 1: the running example.
    println!("\n[1] Places, F1 = [District, Region] -> [AreaCode]:");
    let rel = places();
    let f1 = &places_fds(&rel)[0];
    let cmp = RankingComparison::run(&rel, f1);
    let mut t =
        TextTable::new(["rank", "CB (c desc, abs(g) asc)", "EB (H(Cxy.Cxa) asc, H(Ca.Cxy) asc)"]);
    for i in 0..cmp.cb.len().max(cmp.eb.len()) {
        t.row([
            (i + 1).to_string(),
            cmp.cb.get(i).map(|c| rel.schema().attr_name(c.attr).to_string()).unwrap_or_default(),
            cmp.eb.get(i).map(|c| rel.schema().attr_name(c.attr).to_string()).unwrap_or_default(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "agree on exact-repair set: {}; agree on winner: {}",
        cmp.agree_on_exactness(),
        cmp.agree_on_winner()
    );

    // Part 2: cost scaling on synthetic relations.
    println!("\n[2] cost scaling ({} attributes, planted FD, 10% violations):", n_attrs);
    let mut t = TextTable::new([
        "rows",
        "CB time",
        "EB time",
        "CB counts",
        "EB clusterings",
        "EB cells",
        "agree",
    ]);
    for &n_rows in &rows_list {
        let spec = SyntheticSpec::planted_fd("sweep", 1, n_attrs - 3, n_rows, 40, 0.10, seed);
        let rel = spec.generate();
        let fd = Fd::parse(rel.schema(), &format!("a0 -> a{}", rel.arity() - 1)).expect("planted");
        let (cb_only, cb_time) = timed(|| {
            let pool = candidate_pool(&rel, &fd);
            let mut cache = evofd_storage::DistinctCache::new();
            evofd_core::extend_by_one(&rel, &fd, &pool, &mut cache)
        });
        let ((eb_only, eb_cost), eb_time) = timed(|| {
            let pool = candidate_pool(&rel, &fd);
            evofd_baseline::eb_rank_candidates(&rel, &fd, &pool)
        });
        let cmp = RankingComparison::run(&rel, &fd);
        let agree = cmp.agree_on_exactness();
        t.row([
            n_rows.to_string(),
            format_duration(cb_time),
            format_duration(eb_time),
            cb_only.len().to_string(),
            eb_cost.clusterings_built.to_string(),
            eb_cost.cells_visited.to_string(),
            format!("{agree} ({} vs {} cands)", cb_only.len(), eb_only.len()),
        ]);
        eprintln!("  done: {n_rows} rows");
    }
    print!("{}", t.render());

    // Part 3: Theorem 1 checks.
    println!("\n[3] Theorem 1 (ε_CB = 0 ⇔ ε_VI = 0):");
    let spec = SyntheticSpec::planted_fd("thm", 1, 6, 500, 12, 0.15, seed);
    let rel = spec.generate();
    let fd = Fd::parse(rel.schema(), &format!("a0 -> a{}", rel.arity() - 1)).expect("planted");
    let mut checked = 0;
    let mut forward_ok = 0;
    for attr in candidate_pool(&rel, &fd).iter() {
        let pair = MeasurePair::of_candidate(&rel, &fd, &AttrSet::single(attr));
        checked += 1;
        if pair.cb_null_implies_vi_null() {
            forward_ok += 1;
        }
    }
    println!("  forward direction (ε_CB=0 ⇒ ε_VI=0): {forward_ok}/{checked} candidates hold");
    let (wrel, wfd, wadded) = theorem1_counterexample();
    let wpair = MeasurePair::of_candidate(&wrel, &wfd, &wadded);
    println!(
        "  printed converse needs |π_XY| = |π_Y|: counterexample has ε_VI = {} but ε_CB = {}",
        wpair.epsilon_vi, wpair.epsilon_cb
    );
    println!("\nconclusion: identical exact-repair sets, CB asymptotically cheaper —\nits work is O(candidates) distinct counts; EB additionally materialises\nclusterings and walks contingency cells.");
}
