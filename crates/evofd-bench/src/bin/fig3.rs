//! Reproduces **Figure 3**: for one synthetic database scale, how the
//! per-FD processing time varies with (a) the number of attributes,
//! (b) the number of tuples and (c) the overall table size.
//!
//! The paper plots the eight TPC-H tables of the 1 GB database as points;
//! we run the same eight FindFDRepairs searches at `--scale` (default
//! 0.02) and print the three series, sorted by each x-axis, so the trends
//! are directly comparable: time tracks arity far more than cardinality.
//!
//! ```text
//! cargo run --release -p evofd-bench --bin fig3 [--scale 0.005]
//! ```

use std::time::Duration;

use evofd_bench::{banner, timed, Args};
use evofd_core::{format_duration, repair_fd, validate, Fd, RepairConfig, TextTable};
use evofd_datagen::{generate_table, TpchSpec, TpchTable};

struct Point {
    table: &'static str,
    arity: usize,
    tuples: usize,
    bytes: usize,
    time: Duration,
}

fn main() {
    let args = Args::from_env();
    if args.flag("help") {
        println!("fig3 — time vs attrs/tuples/size. Flags: --scale <f> (default 0.02)");
        return;
    }
    let scale = args.get_or("scale", 0.005f64);
    banner(
        "Figure 3 — processing time vs table dimensions",
        &format!("synthetic TPC-H at SF {scale} (paper: the 1 GB database)"),
    );

    let fd_texts: [(TpchTable, &str); 8] = [
        (TpchTable::Customer, "c_name -> c_address"),
        (TpchTable::Lineitem, "l_partkey -> l_suppkey"),
        (TpchTable::Nation, "n_name -> n_regionkey"),
        (TpchTable::Orders, "o_custkey -> o_orderstatus"),
        (TpchTable::Part, "p_name -> p_mfgr"),
        (TpchTable::PartSupp, "ps_suppkey -> ps_availqty"),
        (TpchTable::Region, "r_name -> r_comment"),
        (TpchTable::Supplier, "s_name -> s_address"),
    ];

    let spec = TpchSpec::new(scale);
    let cfg = RepairConfig::find_all();
    let mut points: Vec<Point> = Vec::new();
    for (table, fd_text) in fd_texts {
        let rel = generate_table(&spec, table);
        let fd = Fd::parse(rel.schema(), fd_text).expect("static FD");
        let ((), time) = timed(|| {
            let report = validate(&rel, std::slice::from_ref(&fd));
            if !report.all_satisfied() {
                let search = repair_fd(&rel, &fd, &cfg).expect("violated");
                std::hint::black_box(search.repairs.len());
            }
        });
        points.push(Point {
            table: table.name(),
            arity: rel.arity(),
            tuples: rel.row_count(),
            bytes: rel.approx_bytes(),
            time,
        });
        eprintln!("  done: {}", table.name());
    }

    let series = [
        ("(a) time vs number of attributes", "attrs"),
        ("(b) time vs number of tuples", "tuples"),
        ("(c) time vs table size (bytes)", "bytes"),
    ];
    for (title, axis) in series {
        println!("\n{title}");
        let mut t = TextTable::new(["x", "table", "time"]);
        let mut sorted: Vec<&Point> = points.iter().collect();
        sorted.sort_by_key(|p| match axis {
            "attrs" => p.arity,
            "tuples" => p.tuples,
            _ => p.bytes,
        });
        for p in sorted {
            let x = match axis {
                "attrs" => p.arity.to_string(),
                "tuples" => p.tuples.to_string(),
                _ => p.bytes.to_string(),
            };
            t.row([x, p.table.to_string(), format_duration(p.time)]);
        }
        print!("{}", t.render());
    }
    println!(
        "\npaper observation to check: the time curve follows the attribute count\n\
         (lineitem, 16 attrs, dominates) much more closely than the tuple count\n\
         (orders has 25% of lineitem's rows but far less than 25% of its time)."
    );
}
