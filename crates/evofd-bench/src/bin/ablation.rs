//! Ablation benches for the design choices called out in DESIGN.md §6:
//!
//! 1. **distinct-count memoisation** on vs off during repair search;
//! 2. **partition-refinement counting** vs naive row-hashing;
//! 3. **goodness threshold** (the §4.4 extension) steering the search away
//!    from UNIQUE-attribute repairs;
//! 4. **conflict-score modes** (formula as printed vs the variant matching
//!    the paper's running-example numbers) — order stability check.
//!
//! ```text
//! cargo run --release -p evofd-bench --bin ablation [--rows 20000] [--attrs 14]
//! ```

use evofd_bench::{banner, timed, Args};
use evofd_core::{
    format_duration, order_fds, repair_fd, ConflictMode, Fd, RepairConfig, TextTable,
};
use evofd_datagen::{places, places_fds, ColumnSpec, SyntheticSpec};
use evofd_storage::{count_distinct, count_distinct_naive, AttrSet, DistinctCache};

fn main() {
    let args = Args::from_env();
    if args.flag("help") {
        println!("ablation — design-choice studies. Flags: --rows n --attrs k --seed s");
        return;
    }
    let n_rows = args.get_or("rows", 20_000usize);
    let n_attrs = args.get_or("attrs", 14usize);
    let seed = args.get_or("seed", 7u64);
    banner("Ablations", "cache, counting strategy, goodness threshold, conflict mode");

    // 1. memoisation on/off.
    println!("\n[1] distinct-count memoisation (find-all on planted FD):");
    let spec = SyntheticSpec::planted_fd("ab1", 1, n_attrs - 3, n_rows, 30, 0.05, seed);
    let rel = spec.generate();
    let fd = Fd::parse(rel.schema(), &format!("a0 -> a{}", rel.arity() - 1)).expect("planted");
    let mut t = TextTable::new(["cache", "time", "hits", "misses", "repairs"]);
    for use_cache in [true, false] {
        let cfg = RepairConfig { use_cache, ..RepairConfig::find_all() };
        let (search, took) = timed(|| repair_fd(&rel, &fd, &cfg).expect("violated"));
        t.row([
            use_cache.to_string(),
            format_duration(took),
            search.stats.cache.hits.to_string(),
            search.stats.cache.misses.to_string(),
            search.repairs.len().to_string(),
        ]);
    }
    print!("{}", t.render());

    // 2. partition refinement vs naive hashing.
    println!("\n[2] distinct counting: partition refinement vs naive row hashing:");
    let wide = SyntheticSpec::uniform("ab2", 6, n_rows, 50, seed).generate();
    let attrs = AttrSet::full(6);
    let (a, t_fast) = timed(|| count_distinct(&wide, &attrs));
    let (b, t_naive) = timed(|| count_distinct_naive(&wide, &attrs));
    assert_eq!(a, b, "both strategies agree");
    let mut t = TextTable::new(["strategy", "time", "result"]);
    t.row(["partition refinement (codes)", &format_duration(t_fast), &a.to_string()]);
    t.row(["naive row hashing (values)", &format_duration(t_naive), &b.to_string()]);
    print!("{}", t.render());

    // 3. goodness threshold vs UNIQUE attribute.
    println!("\n[3] goodness threshold (§4.4 extension) vs a UNIQUE attribute:");
    let mut columns = vec![
        ColumnSpec::Categorical { cardinality: 20 }, // a0: X
        ColumnSpec::Unique,                          // a1: id
        ColumnSpec::Categorical { cardinality: 25 }, // a2: the good fix
        ColumnSpec::Derived { sources: vec![0, 2], cardinality: 2000, violation_rate: 0.0 },
    ];
    columns.push(ColumnSpec::Categorical { cardinality: 5 }); // noise
    let spec = SyntheticSpec { name: "ab3".into(), n_rows: 5_000, columns, seed };
    let rel3 = spec.generate();
    let fd3 = Fd::parse(rel3.schema(), "a0 -> a3").expect("planted");
    let mut t =
        TextTable::new(["threshold", "first repair", "abs(goodness)", "rejected by threshold"]);
    for thr in [None, Some(5_000u64), Some(50u64)] {
        let cfg = RepairConfig { goodness_threshold: thr, ..RepairConfig::find_first() };
        let search = repair_fd(&rel3, &fd3, &cfg).expect("violated");
        let (name, g) = match search.best() {
            Some(best) => {
                (rel3.schema().render_attrs(&best.added), best.measures.abs_goodness().to_string())
            }
            None => ("none".to_string(), "-".to_string()),
        };
        t.row([
            thr.map(|v| v.to_string()).unwrap_or_else(|| "off".to_string()),
            name,
            g,
            search.stats.rejected_by_goodness.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("  (the CB ranking already prefers low |g|; the threshold additionally *forbids*\n   over-specific repairs when exploring exhaustively)");

    // 4. conflict-score modes on the running example.
    println!("\n[4] conflict-score modes, Places running example (§4.1):");
    let places = places();
    let fds = places_fds(&places);
    let mut t = TextTable::new(["mode", "order", "ranks"]);
    for (label, mode) in [
        ("SharedAttrs (formula as printed)", ConflictMode::SharedAttrs),
        ("SharedConsequents (matches paper's numbers)", ConflictMode::SharedConsequents),
    ] {
        let ranked = order_fds(&places, &fds, mode, &mut DistinctCache::new());
        let order: Vec<String> = ranked
            .iter()
            .map(|r| {
                let idx = fds.iter().position(|f| *f == r.fd).expect("from set") + 1;
                format!("F{idx}")
            })
            .collect();
        let ranks: Vec<String> = ranked.iter().map(|r| format!("{:.3}", r.rank)).collect();
        t.row([label.to_string(), order.join(" > "), ranks.join(", ")]);
    }
    print!("{}", t.render());
    println!("  both modes produce the paper's repair order F1 > F2 > F3; only the\n  absolute rank values differ (see EXPERIMENTS.md).");
}
