//! Reproduces **Table 5**: `FindFDRepairs` processing times for the eight
//! TPC-H FDs at three database scales (find-all-repairs mode).
//!
//! ```text
//! cargo run --release -p evofd-bench --bin table5 [--scales 0.005,0.0125,0.05] [--paper]
//! ```
//!
//! The default scales keep the run to seconds on a laptop while showing
//! the same scale-up the paper reports; `--paper` uses the paper's
//! 0.1/0.25/1.0 (hours of wall-clock in the original — minutes here).

use std::time::Duration;

use evofd_bench::{banner, paper, timed, Args};
use evofd_core::{format_duration, repair_fd, validate, Fd, RepairConfig, TextTable};
use evofd_datagen::{generate_table, TpchSpec, TpchTable};
use evofd_storage::Relation;

fn scales_from(args: &Args) -> Vec<f64> {
    if args.flag("paper") {
        return vec![0.1, 0.25, 1.0];
    }
    match args.get("scales") {
        None => vec![0.001, 0.002, 0.005],
        Some(v) => v.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
    }
}

/// The Table 5 FD of one TPC-H table.
fn fd_for(rel: &Relation, table: TpchTable) -> Fd {
    let text = match table {
        TpchTable::Customer => "c_name -> c_address",
        TpchTable::Lineitem => "l_partkey -> l_suppkey",
        TpchTable::Nation => "n_name -> n_regionkey",
        TpchTable::Orders => "o_custkey -> o_orderstatus",
        TpchTable::Part => "p_name -> p_mfgr",
        TpchTable::PartSupp => "ps_suppkey -> ps_availqty",
        TpchTable::Region => "r_name -> r_comment",
        TpchTable::Supplier => "s_name -> s_address",
    };
    Fd::parse(rel.schema(), text).expect("static FD")
}

/// One FD's processing time at one scale: validation plus (for violated
/// FDs) the find-all repair search — exactly what the paper timed.
fn process(rel: &Relation, fd: &Fd) -> (Duration, String) {
    let cfg = RepairConfig::find_all();
    let (verdict, took) = timed(|| {
        let report = validate(rel, std::slice::from_ref(fd));
        if report.all_satisfied() {
            "exact".to_string()
        } else {
            let search = repair_fd(rel, fd, &cfg).expect("violated FD");
            format!("{} repairs", search.repairs.len())
        }
    });
    (took, verdict)
}

fn main() {
    let args = Args::from_env();
    if args.flag("help") {
        println!("table5 — FindFDRepairs times. Flags: --scales a,b,c | --paper");
        return;
    }
    let scales = scales_from(&args);
    banner(
        "Table 5 — FindFDRepairs processing times (find ALL repairs)",
        &format!("scales: {scales:?}; paper ran 0.1 / 0.25 / 1.0 on MySQL"),
    );

    let mut headers = vec!["Table".to_string(), "FD".to_string()];
    for s in &scales {
        headers.push(format!("SF {s}"));
    }
    headers.push("outcome".to_string());
    headers.push("paper (100MB -> 1GB)".to_string());
    let mut t = TextTable::new(headers);

    for paper_row in paper::TABLE5.iter() {
        let table = TpchTable::ALL
            .into_iter()
            .find(|tt| tt.name() == paper_row.table)
            .expect("paper tables exist");
        let mut cells = vec![paper_row.table.to_string(), paper_row.fd.to_string()];
        let mut verdict = String::new();
        for &scale in &scales {
            let spec = TpchSpec::new(scale);
            let rel = generate_table(&spec, table);
            let fd = fd_for(&rel, table);
            let (took, v) = process(&rel, &fd);
            verdict = v;
            cells.push(format_duration(took));
        }
        cells.push(verdict);
        cells.push(format!(
            "{} -> {}",
            format_duration(Duration::from_millis(paper_row.ms_100mb)),
            format_duration(Duration::from_millis(paper_row.ms_1gb))
        ));
        t.row(cells);
        eprintln!("  done: {}", paper_row.table);
    }
    print!("{}", t.render());
    println!(
        "\nshape checks: lineitem >> orders > partsupp >> key-named tables (exact FDs);\n\
         per-FD time grows with scale. Absolute values differ (in-memory Rust vs MySQL)."
    );
}
