//! The **Section 2 claim**, quantified: repairing a *declared* FD versus
//! discovering all FDs and then relaxing the obsolete ones (the
//! Chu-Ilyas-Papotti-style alternative the paper argues is impractical).
//!
//! Workload: `Y = f(a0, a1, a2)` exactly; the designer declared `a0 → Y`
//! (violated — reality now also depends on `a1, a2`). The CB repair finds
//! `+{a1, a2}` directly. Discover-then-relax must instead mine the
//! lattice:
//!
//! * at depth 2 the mining run is cheap but **misses** every extension of
//!   the declared FD (the true determinant has 3 attributes) — the
//!   paper's observation that "the inferred constraints not always
//!   include extensions of the ones specified by the designer";
//! * at depth 3 it finds the extension but costs far more than the
//!   targeted repair — the paper's efficiency argument.
//!
//! ```text
//! cargo run --release -p evofd-bench --bin discovery_vs_repair \
//!     [--rows 2000,5000,10000] [--attrs 12]
//! ```

use evofd_bench::{banner, timed, Args};
use evofd_core::{
    discover_fds, format_duration, repair_fd, DiscoveryConfig, Fd, RepairConfig, TextTable,
};
use evofd_datagen::SyntheticSpec;

fn main() {
    let args = Args::from_env();
    if args.flag("help") {
        println!("discovery_vs_repair — §2 claim. Flags: --rows a,b,c --attrs k --seed s");
        return;
    }
    let rows_list = args.list_or("rows", &[2_000, 5_000, 10_000]);
    let n_attrs = args.get_or("attrs", 12usize);
    let seed = args.get_or("seed", 17u64);
    banner(
        "Section 2 — repairing a declared FD vs discover-then-relax",
        &format!("{n_attrs} attributes; declared FD needs a 2-attribute extension"),
    );

    let mut t = TextTable::new([
        "rows",
        "targeted repair (first)",
        "mine depth 2",
        "covers ext?",
        "mine depth 3",
        "covers ext?",
        "mined FDs (d3)",
    ]);
    for &n_rows in &rows_list {
        // Y = f(a0, a1, a2) exact; declared FD is a0 -> Y only.
        let spec = SyntheticSpec::planted_fd("d", 3, n_attrs - 4, n_rows, 25, 0.0, seed);
        let rel = spec.generate();
        let declared =
            Fd::parse(rel.schema(), &format!("a0 -> a{}", rel.arity() - 1)).expect("planted");

        let (first, t_first) =
            timed(|| repair_fd(&rel, &declared, &RepairConfig::find_first()).expect("violated"));
        assert!(first.best().is_some(), "the planted repair must be found");

        let shallow_cfg = DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::default() };
        let (shallow, t_shallow) = timed(|| discover_fds(&rel, &shallow_cfg));
        let deep_cfg = DiscoveryConfig { max_lhs: 3, ..DiscoveryConfig::default() };
        let (deep, t_deep) = timed(|| discover_fds(&rel, &deep_cfg));

        t.row([
            n_rows.to_string(),
            format!(
                "{} (+{})",
                format_duration(t_first),
                first.best().map(|b| b.added.len()).unwrap_or(0)
            ),
            format_duration(t_shallow),
            (!shallow.extensions_of(&declared).is_empty()).to_string(),
            format_duration(t_deep),
            (!deep.extensions_of(&declared).is_empty()).to_string(),
            format!("{}{}", deep.fds.len(), if deep.truncated { "+" } else { "" }),
        ]);
        eprintln!("  done: {n_rows} rows");
    }
    print!("{}", t.render());
    println!(
        "\nreading (the paper's two §2 arguments): the shallow mining run is cheap\n\
         but never surfaces an extension of the designer's FD; the deep run does,\n\
         at a cost far above the targeted repair — and still reports only *minimal*\n\
         dependencies, leaving the relax-and-match work to the designer."
    );
}
