//! `query` — read-path planner speedups: secondary indexes and
//! FD-aware rewrites against the naive scan, written to
//! `BENCH_query.json`.
//!
//! One table (default 100 000 rows): `uid` unique, `zip` in 100
//! buckets, `city` functionally determined by `zip` (the planted exact
//! FD `zip -> city`), `pop` an integer payload. Three query shapes are
//! timed in two configurations each:
//!
//! 1. **selective point lookup** (`WHERE uid = k`) — sequential scan vs
//!    secondary-index probe; this is the pair the **speedup gate**
//!    (default 10×) applies to, since a sorted-index probe turns an
//!    O(rows) scan into an O(log rows) lookup;
//! 2. **non-selective predicate** (`WHERE zip = 'z7'`, ~1% of rows) —
//!    scan vs probe on a fat bucket, reported but ungated;
//! 3. **grouped aggregate** (`GROUP BY zip, city`) — with the planner's
//!    FD provider empty vs reporting `zip -> city` exact, which
//!    collapses the group key to `zip` alone.
//!
//! Every timed configuration must return **byte-identical rows** to the
//! naive reference evaluator (`evofd_sql::naive_select`) — the run
//! aborts on any divergence, so a fast-but-wrong plan can never pass.
//! The run fails (non-zero exit) if the gated speedup is not met; this
//! is the CI read-path smoke gate (`--smoke` shrinks the rep count).
//!
//! Flags: `--rows N` (default 100000), `--reps N` (default 7),
//! `--gate X` (default 10.0), `--out PATH`, `--smoke`.

use std::sync::Arc;

use evofd_bench::{banner, timed, Args};
use evofd_core::TextTable;
use evofd_sql::{naive_select, parse, Engine, FdInfoProvider, FdInfoRow, Statement};
use evofd_storage::{Catalog, DataType, Field, Relation, Schema, Value};

/// A provider reporting a fixed exact-FD list — the bench flips the
/// rewrite on by swapping an empty list for `["zip -> city"]`.
#[derive(Debug)]
struct FixedFds(Vec<String>);

impl FdInfoProvider for FixedFds {
    fn fd_rows(&self, _table: Option<&str>) -> Result<Vec<FdInfoRow>, String> {
        Ok(Vec::new())
    }

    fn exact_fds(&self, _table: &str) -> Vec<String> {
        self.0.clone()
    }
}

fn build_table(rows: usize) -> Relation {
    let schema = Schema::new(
        "t",
        vec![
            Field::new("uid", DataType::Int),
            Field::new("zip", DataType::Str),
            Field::new("city", DataType::Str),
            Field::new("pop", DataType::Int),
        ],
    )
    .expect("schema");
    Relation::from_rows(
        Arc::new(schema),
        (0..rows).map(|i| {
            let zip = i % 100;
            vec![
                Value::Int(i as i64),
                Value::str(format!("z{zip}")),
                Value::str(format!("city-of-{zip}")),
                Value::Int((i % 1000) as i64),
            ]
        }),
    )
    .expect("rows")
}

fn engine_over(rel: &Relation) -> Engine {
    let mut cat = Catalog::new();
    cat.insert(rel.clone()).expect("catalog");
    Engine::with_catalog(cat)
}

fn all_rows(rel: &Relation) -> Vec<Vec<Value>> {
    (0..rel.row_count()).map(|r| rel.row(r)).collect()
}

/// Fastest-of-`reps` wall clock for a query, plus its result rows.
fn measure(e: &mut Engine, sql: &str, reps: usize) -> (f64, Vec<Vec<Value>>) {
    let mut best = f64::INFINITY;
    let mut rows = Vec::new();
    for _ in 0..reps {
        let (rel, elapsed) = timed(|| e.query(sql).expect("query"));
        best = best.min(elapsed.as_secs_f64());
        rows = all_rows(&rel);
    }
    (best, rows)
}

/// The plan EXPLAIN reports, flattened to one searchable string.
fn explain(e: &mut Engine, sql: &str) -> String {
    let rel = e.query(&format!("EXPLAIN {sql}")).expect("explain");
    (0..rel.row_count())
        .flat_map(|r| rel.row(r).into_iter().map(|v| v.to_string()))
        .collect::<Vec<_>>()
        .join(" | ")
}

fn naive_rows(rel: &Relation, sql: &str) -> Vec<Vec<Value>> {
    let Statement::Select(sel) = parse(sql).expect("parse") else { panic!("not a SELECT: {sql}") };
    all_rows(&naive_select(rel, &sel).expect("naive"))
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let rows = args.get_or("rows", 100_000usize);
    let reps = args.get_or("reps", if smoke { 3 } else { 7usize });
    let gate = args.get_or("gate", 10.0f64);
    let out_path = args.get("out").unwrap_or("BENCH_query.json").to_string();

    banner(
        "query — planner read path: index probes and FD rewrites vs naive scans",
        "fastest-of-reps per configuration; every result checked against naive_select",
    );
    let rel = build_table(rows);
    let point = format!("SELECT uid, zip, pop FROM t WHERE uid = {}", rows * 2 / 3);
    let fat = "SELECT COUNT(*), SUM(pop) FROM t WHERE zip = 'z7'".to_string();
    let grouped =
        "SELECT zip, city, COUNT(*), SUM(pop) FROM t GROUP BY zip, city ORDER BY zip".to_string();
    println!(
        "table: {} rows; {} rep(s) per configuration; gate {gate}x on point lookup\n",
        rows, reps
    );

    // Baseline configuration: no indexes, no FD knowledge.
    let mut base = engine_over(&rel);
    base.set_fd_provider(Box::new(FixedFds(Vec::new())));
    let (point_scan, point_rows) = measure(&mut base, &point, reps);
    let (fat_scan, fat_rows) = measure(&mut base, &fat, reps);
    let (group_plain, group_rows) = measure(&mut base, &grouped, reps);

    // Indexed configuration (same data): probes replace scans.
    let mut fast = engine_over(&rel);
    fast.set_fd_provider(Box::new(FixedFds(vec!["zip -> city".into()])));
    fast.execute("CREATE INDEX ON t (uid)").expect("index uid");
    fast.execute("CREATE INDEX ON t (zip)").expect("index zip");
    let point_plan = explain(&mut fast, &point);
    assert!(point_plan.contains("IndexProbe"), "point lookup must probe: {point_plan}");
    let group_plan = explain(&mut fast, &grouped);
    assert!(
        group_plan.contains("Rewrite[group-collapse]"),
        "exact zip -> city must collapse the group key: {group_plan}"
    );
    let (point_probe, point_rows_fast) = measure(&mut fast, &point, reps);
    let (fat_probe, fat_rows_fast) = measure(&mut fast, &fat, reps);
    let (group_fd, group_rows_fast) = measure(&mut fast, &grouped, reps);

    // Fast plans must be byte-identical to the naive reference — and to
    // the baseline engine, which already matched it.
    for (name, sql, slow, quick) in [
        ("point", &point, &point_rows, &point_rows_fast),
        ("fat", &fat, &fat_rows, &fat_rows_fast),
        ("grouped", &grouped, &group_rows, &group_rows_fast),
    ] {
        let naive = naive_rows(&rel, sql);
        assert_eq!(slow, &naive, "{name}: baseline diverged from naive_select");
        assert_eq!(quick, &naive, "{name}: planned result diverged from naive_select");
    }

    let point_speedup = point_scan / point_probe.max(1e-12);
    let fat_speedup = fat_scan / fat_probe.max(1e-12);
    let group_speedup = group_plain / group_fd.max(1e-12);

    let mut table = TextTable::new(["query", "naive s", "planned s", "speedup"]);
    for (name, slow, quick, ratio) in [
        ("point lookup (index)", point_scan, point_probe, point_speedup),
        ("fat predicate (index)", fat_scan, fat_probe, fat_speedup),
        ("group-by (FD collapse)", group_plain, group_fd, group_speedup),
    ] {
        table.row([
            name.into(),
            format!("{slow:.6}"),
            format!("{quick:.6}"),
            format!("{ratio:.1}x"),
        ]);
    }
    print!("{}", table.render());

    let passed = point_speedup >= gate;
    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"reps\": {reps},\n  \"gate_x\": {gate},\n  \
         \"point\": {{\"scan_s\": {point_scan:.6}, \"probe_s\": {point_probe:.6}, \
         \"speedup\": {point_speedup:.2}}},\n  \
         \"fat_predicate\": {{\"scan_s\": {fat_scan:.6}, \"probe_s\": {fat_probe:.6}, \
         \"speedup\": {fat_speedup:.2}}},\n  \
         \"group_by\": {{\"plain_s\": {group_plain:.6}, \"fd_collapsed_s\": {group_fd:.6}, \
         \"speedup\": {group_speedup:.2}}},\n  \
         \"byte_identical\": true,\n  \"passed\": {passed}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_query.json");
    println!("\nwrote {out_path}");
    assert!(
        passed,
        "index probe speedup {point_speedup:.1}x below the {gate}x gate \
         (scan {point_scan:.6}s vs probe {point_probe:.6}s)"
    );
    println!("read-path gate PASSED ({gate}x floor on the point lookup)");
}
