//! Reproduces **Table 6**: real databases overview and the time to find
//! the *first* repair on each.
//!
//! The real datasets (MySQL samples, Wikimedia dumps, KDD-Cup-98) are not
//! redistributable; `evofd-datagen` simulates each with the same arity,
//! cardinality and repair structure (see DESIGN.md §3). Defaults are
//! laptop-sized; `--paper` uses the paper's full cardinalities.
//!
//! ```text
//! cargo run --release -p evofd-bench --bin table6 [--paper]
//! ```

use evofd_bench::{banner, paper, timed, vs_paper, Args};
use evofd_core::{repair_fd, Fd, RepairConfig, TextTable};
use evofd_datagen as dg;
use evofd_storage::Relation;

fn main() {
    let args = Args::from_env();
    if args.flag("help") {
        println!("table6 — real databases, find-first repair. Flags: --paper (full sizes)");
        return;
    }
    let full = args.flag("paper");
    banner(
        "Table 6 — Real Databases Overview and processing times (find FIRST repair)",
        if full { "full paper-scale simulators" } else { "reduced sizes (use --paper for full)" },
    );

    let seed = args.get_or("seed", 2016u64);
    let datasets: Vec<(Relation, Fd)> = {
        let places = dg::places();
        let places_fd = dg::places_f4(&places); // 1-attr antecedent, needs 2 additions
        let country = dg::country(seed);
        let country_fd = dg::country_fd(&country);
        let rental = dg::rental(seed);
        let rental_fd = dg::rental_fd(&rental);
        let image = if full { dg::image(seed) } else { dg::image_sized(seed, 20_000) };
        let image_fd = dg::image_fd(&image);
        let pagelinks = if full { dg::pagelinks(seed) } else { dg::pagelinks_sized(seed, 120_000) };
        let pagelinks_fd = dg::pagelinks_fd(&pagelinks);
        let veterans =
            if full { dg::veterans(seed, 323, 95_412) } else { dg::veterans(seed, 40, 20_000) };
        let veterans_fd = dg::veterans_fd(&veterans);
        vec![
            (places, places_fd),
            (country, country_fd),
            (rental, rental_fd),
            (image, image_fd),
            (pagelinks, pagelinks_fd),
            (veterans, veterans_fd),
        ]
    };

    let cfg = RepairConfig::find_first();
    let mut t = TextTable::new(["Table", "arity", "card.", "FD time (find first)", "repair"]);
    for ((rel, fd), paper_row) in datasets.iter().zip(paper::TABLE6.iter()) {
        let (search, took) = timed(|| repair_fd(rel, fd, &cfg).expect("violated by design"));
        let repair = match search.best() {
            None => "none found".to_string(),
            Some(best) => {
                format!("+{} attr(s): {}", best.added.len(), rel.schema().render_attrs(&best.added))
            }
        };
        t.row([
            rel.name().to_string(),
            rel.arity().to_string(),
            rel.row_count().to_string(),
            vs_paper(took, paper_row.ms),
            repair,
        ]);
        eprintln!("  done: {}", rel.name());
    }
    print!("{}", t.render());
    println!(
        "\nshape checks (paper §6.2): Places needs a longer repair (2 attrs) than\n\
         Country (1 attr); PageLinks repairs faster than Image despite having\n\
         more tuples, because with 3 attributes there is a single candidate."
    );
}
