//! `scaling` — thread-count sweep over the parallel execution layer.
//!
//! Measures the workloads the `mintpool` refactor parallelised — chunked
//! multi-attribute `count_distinct` (partition refinement), full-relation
//! FD validation on synthetic and TPC-H-style data, and incremental
//! tracker maintenance — at widths 1/2/4/8 (or `--threads …`), asserting
//! at every width that the results are identical to the 1-thread
//! baseline, and writes the timings to `BENCH_parallel.json`.
//!
//! Flags: `--rows N` (default 100_000), `--threads 1,2,4,8`, `--seed S`,
//! `--reps R` (best-of-R timing, default 3), `--out PATH`.
//!
//! Speedups only materialise when the host exposes enough cores — the
//! emitted JSON records `available_parallelism` so readers can tell a
//! flat sweep on a 1-core CI container from a real regression.

use evofd_bench::{banner, timed, Args};
use evofd_core::{validate, Fd, TextTable};
use evofd_datagen::{generate_table, SyntheticSpec, TpchSpec, TpchTable};
use evofd_incremental::{Delta, IncrementalValidator, LiveRelation, ValidatorConfig};
use evofd_storage::{count_distinct, AttrSet, Relation, Value};

/// One timed (threads, seconds) sample plus its identity check digest.
struct Sample {
    threads: usize,
    seconds: f64,
}

/// A workload: a name and a closure returning (digest, seconds). The
/// digest must be identical at every width.
struct Workload<'a> {
    name: &'static str,
    #[allow(clippy::type_complexity)]
    run: Box<dyn Fn() -> u64 + 'a>,
}

/// Cheap structural digest so cross-width identity checks are one number.
fn digest(parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        h ^= p;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn attr_set(rel: &Relation, names: &[&str]) -> AttrSet {
    rel.schema().attr_set(names).expect("bench attribute names exist")
}

fn main() {
    let args = Args::from_env();
    let rows = args.get_or("rows", 100_000usize);
    let sweep = args.list_or("threads", &[1, 2, 4, 8]);
    let seed = args.get_or("seed", 2016u64);
    let reps = args.get_or("reps", 3usize).max(1);
    let out_path = args.get("out").unwrap_or("BENCH_parallel.json").to_string();

    banner(
        "scaling — parallel execution layer thread sweep",
        "count_distinct / validation / tracker maintenance at widths 1..8",
    );
    let cores = mintpool::available_parallelism();
    println!("host parallelism: {cores} core(s); sweeping widths {sweep:?}\n");
    if cores < sweep.iter().copied().max().unwrap_or(1) {
        println!(
            "NOTE: fewer cores than the widest setting — expect flat speedups; \
             the sweep still verifies parallel == sequential results.\n"
        );
    }

    // Synthetic relation with a planted, lightly violated FD a0,a1 -> a4.
    let synth = SyntheticSpec::planted_fd("scale", 2, 2, rows, 64, 0.001, seed).generate();
    let synth_sets: Vec<AttrSet> = vec![
        attr_set(&synth, &["a0", "a1"]),
        attr_set(&synth, &["a2", "a3"]),
        attr_set(&synth, &["a0", "a1", "a4"]),
        attr_set(&synth, &["a0", "a2", "a3"]),
    ];
    let synth_fds: Vec<Fd> = ["a0, a1 -> a4", "a0 -> a2", "a2, a3 -> a0", "a1, a2 -> a3"]
        .iter()
        .map(|t| Fd::parse(synth.schema(), t).expect("static FD"))
        .collect();

    // TPC-H-style lineitem sized to roughly --rows tuples.
    let tpch_scale = (rows as f64 / 6_000_000.0).max(0.0005);
    let lineitem = generate_table(&TpchSpec { scale: tpch_scale, seed }, TpchTable::Lineitem);
    let tpch_fds: Vec<Fd> = [
        "l_orderkey, l_linenumber -> l_partkey",
        "l_partkey -> l_suppkey",
        "l_orderkey, l_partkey, l_suppkey -> l_quantity",
    ]
    .iter()
    .map(|t| Fd::parse(lineitem.schema(), t).expect("static FD"))
    .collect();

    // Incremental traffic: a 1% mixed delta from a donor generation.
    let donor = SyntheticSpec::planted_fd("scale", 2, 2, 4096, 64, 0.01, seed + 1).generate();
    let changes = (rows / 100).max(8);
    let inserts: Vec<Vec<Value>> =
        (0..changes / 2).map(|i| donor.row(i % donor.row_count())).collect();
    let delta = Delta { inserts, deletes: (0..changes / 2).collect() };
    let tracker_fds: Vec<Fd> = synth_fds.iter().chain(&synth_fds).cloned().collect();

    let workloads: Vec<Workload> = vec![
        Workload {
            name: "count_distinct_multi_attr",
            run: Box::new(|| digest(synth_sets.iter().map(|s| count_distinct(&synth, s) as u64))),
        },
        Workload {
            name: "validate_synthetic",
            run: Box::new(|| {
                let report = validate(&synth, &synth_fds);
                digest(report.statuses.iter().map(|s| {
                    (s.measures.distinct_lhs as u64) << 32 | s.measures.distinct_lhs_rhs as u64
                }))
            }),
        },
        Workload {
            name: "validate_tpch_lineitem",
            run: Box::new(|| {
                let report = validate(&lineitem, &tpch_fds);
                digest(report.statuses.iter().map(|s| {
                    (s.measures.distinct_lhs as u64) << 32 | s.measures.distinct_lhs_rhs as u64
                }))
            }),
        },
        Workload {
            name: "tracker_maintenance",
            run: Box::new(|| {
                let mut live = LiveRelation::new(synth.clone());
                let config = ValidatorConfig {
                    full_recompute_fraction: f64::INFINITY,
                    ..ValidatorConfig::default()
                };
                let mut validator =
                    IncrementalValidator::with_config(&live, tracker_fds.clone(), config);
                let applied = live.apply(&delta).expect("valid delta");
                validator.apply(&live, &applied);
                digest((0..validator.fds().len()).map(|i| {
                    let m = validator.measures(i);
                    (m.distinct_lhs as u64) << 32 | m.distinct_lhs_rhs as u64
                }))
            }),
        },
    ];

    println!(
        "synthetic: {} rows × {} attrs; lineitem: {} rows × {} attrs; delta: {} changes\n",
        synth.row_count(),
        synth.arity(),
        lineitem.row_count(),
        lineitem.arity(),
        delta.len(),
    );

    let mut table = TextTable::new(["workload", "threads", "seconds", "speedup vs 1"]);
    let mut json_workloads: Vec<String> = Vec::new();

    for w in &workloads {
        // The identity gate and the speedup denominator are ALWAYS the
        // sequential width-1 run, whatever `--threads` sweeps — trimming
        // 1 out of the sweep must not weaken parallel == sequential.
        mintpool::set_threads(1);
        let baseline_digest = (w.run)();
        let mut base = f64::INFINITY;
        for _ in 0..reps {
            let (_, elapsed) = timed(|| std::hint::black_box((w.run)()));
            base = base.min(elapsed.as_secs_f64());
        }

        let mut samples: Vec<Sample> = Vec::new();
        for &t in &sweep {
            if t <= 1 {
                samples.push(Sample { threads: 1, seconds: base });
                continue;
            }
            mintpool::set_threads(t);
            // Warm-up run doubles as the identity check at this width.
            let d = (w.run)();
            assert_eq!(
                d, baseline_digest,
                "{}: parallel result diverged from sequential (threads {t})",
                w.name
            );
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let (_, elapsed) = timed(|| std::hint::black_box((w.run)()));
                best = best.min(elapsed.as_secs_f64());
            }
            samples.push(Sample { threads: t, seconds: best });
        }
        mintpool::set_threads(1);
        let entries: Vec<String> = samples
            .iter()
            .map(|s| {
                let speedup = base / s.seconds.max(1e-12);
                table.row([
                    w.name.to_string(),
                    s.threads.to_string(),
                    format!("{:.4}", s.seconds),
                    format!("{speedup:.2}x"),
                ]);
                format!(
                    "{{\"threads\": {}, \"seconds\": {:.6}, \"speedup_vs_1\": {:.3}}}",
                    s.threads, s.seconds, speedup
                )
            })
            .collect();
        json_workloads.push(format!(
            "    {{\"name\": \"{}\", \"results\": [{}]}}",
            w.name,
            entries.join(", ")
        ));
    }

    print!("{}", table.render());

    let json = format!(
        "{{\n  \"available_parallelism\": {cores},\n  \"rows\": {rows},\n  \
         \"seed\": {seed},\n  \"threads_swept\": {sweep:?},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        json_workloads.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_parallel.json");
    println!("\nwrote {out_path} (every width asserted identical to the sequential baseline)");
}
