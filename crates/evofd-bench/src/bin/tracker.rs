//! `tracker` — incremental-tracker hot path, pre-optimisation vs current.
//!
//! The baseline embedded here is the tracker as it stood before the fast
//! core landed: SipHash maps keyed by freshly boxed `Box<[u32]>` code
//! tuples, a nested `HashMap` per antecedent group and an unconditional
//! RHS-key clone per row. The current path (packed `u64` keys, the
//! multiplicative code hasher and tiered per-group counts) runs the same
//! workload through the public [`IncrementalValidator`] API.
//!
//! Every run is **equality-gated**: after the build and after the delta
//! replay the baseline's measures, violation aggregates and canonical
//! [`TrackerSnapshot`] export are asserted byte-identical to the current
//! tracker's for every FD, so the speedup is only reported for a
//! semantically identical computation. Doubles as the CI tracker smoke
//! gate (`--smoke`).
//!
//! Flags: `--rows N` (default 100_000), `--seed S`, `--reps R` (best-of-R
//! timing, default 3), `--out PATH`, `--smoke`.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use evofd_bench::{banner, timed, Args};
use evofd_core::{Fd, Measures, TextTable};
use evofd_datagen::SyntheticSpec;
use evofd_incremental::{
    AppliedDelta, Delta, GroupCounts, IncrementalValidator, LiveRelation, TrackerSnapshot,
    ValidatorConfig,
};
use evofd_storage::{AttrId, Relation, Value};

/// One antecedent group of the pre-optimisation tracker.
#[derive(Debug, Clone, Default)]
struct OldGroup {
    total: u32,
    rhs: HashMap<Box<[u32]>, u32>,
}

/// The tracker exactly as it was before the fast core: std (SipHash)
/// maps, boxed code-tuple keys, nested per-group RHS maps.
struct OldTracker {
    lhs: Vec<AttrId>,
    rhs: Vec<AttrId>,
    groups: HashMap<Box<[u32]>, OldGroup>,
    rhs_counts: HashMap<Box<[u32]>, u32>,
    pair_count: usize,
    violating_groups: usize,
    violating_rows: usize,
    total_rows: usize,
    new_violating: HashSet<Box<[u32]>>,
}

fn old_key(rel: &Relation, attrs: &[AttrId], row: usize) -> Box<[u32]> {
    attrs.iter().map(|&a| rel.column(a).code_at(row)).collect()
}

impl OldTracker {
    fn new(fd: &Fd) -> OldTracker {
        OldTracker {
            lhs: fd.lhs().iter().collect(),
            rhs: fd.rhs().iter().collect(),
            groups: HashMap::new(),
            rhs_counts: HashMap::new(),
            pair_count: 0,
            violating_groups: 0,
            violating_rows: 0,
            total_rows: 0,
            new_violating: HashSet::new(),
        }
    }

    fn build(fd: &Fd, rel: &Relation, rows: impl IntoIterator<Item = usize>) -> OldTracker {
        let mut t = OldTracker::new(fd);
        for row in rows {
            t.insert_row(rel, row);
        }
        t.new_violating.clear();
        t
    }

    fn insert_row(&mut self, rel: &Relation, row: usize) {
        let lkey = old_key(rel, &self.lhs, row);
        let rkey = old_key(rel, &self.rhs, row);
        *self.rhs_counts.entry(rkey.clone()).or_insert(0) += 1;
        let group = self.groups.entry(lkey).or_default();
        let was_violating = group.rhs.len() >= 2;
        if was_violating {
            self.violating_groups -= 1;
            self.violating_rows -= group.total as usize;
        }
        match group.rhs.entry(rkey) {
            Entry::Occupied(mut e) => *e.get_mut() += 1,
            Entry::Vacant(v) => {
                v.insert(1);
                self.pair_count += 1;
            }
        }
        group.total += 1;
        if group.rhs.len() >= 2 {
            self.violating_groups += 1;
            self.violating_rows += group.total as usize;
            if !was_violating {
                self.new_violating.insert(old_key(rel, &self.lhs, row));
            }
        }
        self.total_rows += 1;
    }

    fn remove_row(&mut self, rel: &Relation, row: usize) {
        let lkey = old_key(rel, &self.lhs, row);
        let rkey = old_key(rel, &self.rhs, row);
        match self.rhs_counts.entry(rkey.clone()) {
            Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(_) => unreachable!("removing a row the tracker never saw"),
        }
        let group = self.groups.get_mut(&lkey).expect("group exists for a tracked row");
        let was_violating = group.rhs.len() >= 2;
        if was_violating {
            self.violating_groups -= 1;
            self.violating_rows -= group.total as usize;
        }
        match group.rhs.entry(rkey) {
            Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                    self.pair_count -= 1;
                }
            }
            Entry::Vacant(_) => unreachable!("pair exists for a tracked row"),
        }
        group.total -= 1;
        if group.total == 0 {
            self.groups.remove(&lkey);
            self.new_violating.remove(&lkey);
        } else if group.rhs.len() >= 2 {
            self.violating_groups += 1;
            self.violating_rows += group.total as usize;
        } else if was_violating {
            self.new_violating.remove(&lkey);
        }
        self.total_rows -= 1;
    }

    fn apply(&mut self, rel: &Relation, applied: &AppliedDelta) {
        for &row in &applied.deleted {
            self.remove_row(rel, row);
        }
        for row in applied.inserted.clone() {
            self.insert_row(rel, row);
        }
    }

    fn measures(&self) -> Measures {
        let distinct_lhs = self.groups.len();
        let distinct_lhs_rhs = self.pair_count;
        let distinct_rhs = self.rhs_counts.len();
        let confidence =
            if distinct_lhs_rhs == 0 { 1.0 } else { distinct_lhs as f64 / distinct_lhs_rhs as f64 };
        Measures {
            distinct_lhs,
            distinct_lhs_rhs,
            distinct_rhs,
            confidence,
            goodness: distinct_lhs as i64 - distinct_rhs as i64,
        }
    }

    fn export(&self) -> TrackerSnapshot {
        let mut groups: Vec<GroupCounts> = self
            .groups
            .iter()
            .map(|(lkey, g)| {
                let mut rhs: Vec<(Vec<u32>, u32)> =
                    g.rhs.iter().map(|(rkey, &n)| (rkey.to_vec(), n)).collect();
                rhs.sort_unstable();
                GroupCounts { lhs_key: lkey.to_vec(), rhs }
            })
            .collect();
        groups.sort_unstable_by(|a, b| a.lhs_key.cmp(&b.lhs_key));
        TrackerSnapshot { groups, approx: false }
    }
}

/// Assert the current validator's state is byte-identical to the old
/// trackers' at `stage`, FD by FD.
fn equality_gate(stage: &str, old: &[OldTracker], validator: &IncrementalValidator) {
    let snapshots = validator.export_trackers();
    assert_eq!(old.len(), snapshots.len(), "{stage}: tracker count");
    for (i, (o, snap)) in old.iter().zip(&snapshots).enumerate() {
        assert_eq!(o.measures(), validator.measures(i), "{stage}: FD {i} measures diverged");
        let s = validator.summary(i);
        assert_eq!(o.violating_groups, s.violating_groups, "{stage}: FD {i} violating groups");
        assert_eq!(o.violating_rows, s.violating_rows, "{stage}: FD {i} violating rows");
        assert_eq!(o.total_rows, s.total_rows, "{stage}: FD {i} total rows");
        assert_eq!(&o.export(), snap, "{stage}: FD {i} canonical snapshot diverged");
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let rows = args.get_or("rows", if smoke { 20_000 } else { 100_000usize });
    let seed = args.get_or("seed", 2016u64);
    let reps = args.get_or("reps", 3usize).max(1);
    let out_path = args.get("out").unwrap_or("BENCH_tracker.json").to_string();

    banner(
        "tracker — incremental tracker core, pre-optimisation vs current",
        "packed keys + fast hasher + tiered groups, equality-gated per FD",
    );

    // The scaling bench's incremental workload shape: a planted lightly
    // violated FD, eight tracked FDs, a 1% mixed delta, incremental-only.
    let synth = SyntheticSpec::planted_fd("scale", 2, 2, rows, 64, 0.001, seed).generate();
    let base_fds: Vec<Fd> = ["a0, a1 -> a4", "a0 -> a2", "a2, a3 -> a0", "a1, a2 -> a3"]
        .iter()
        .map(|t| Fd::parse(synth.schema(), t).expect("static FD"))
        .collect();
    let fds: Vec<Fd> = base_fds.iter().chain(&base_fds).cloned().collect();
    let config =
        ValidatorConfig { full_recompute_fraction: f64::INFINITY, ..ValidatorConfig::default() };

    let donor = SyntheticSpec::planted_fd("scale", 2, 2, 4096, 64, 0.01, seed + 1).generate();
    let changes = (rows / 100).max(8);
    let inserts: Vec<Vec<Value>> =
        (0..changes / 2).map(|i| donor.row(i % donor.row_count())).collect();
    let delta = Delta { inserts, deletes: (0..changes / 2).collect() };

    println!(
        "{} rows × {} attrs, {} FDs, {} row changes per delta replay\n",
        synth.row_count(),
        synth.arity(),
        fds.len(),
        delta.len(),
    );

    // --- Build phase ------------------------------------------------------
    let live0 = LiveRelation::new(synth.clone());
    let mut old_build = f64::INFINITY;
    for _ in 0..reps {
        let (_, e) = timed(|| {
            std::hint::black_box(
                fds.iter()
                    .map(|fd| OldTracker::build(fd, live0.relation(), live0.live_rows()))
                    .collect::<Vec<_>>(),
            )
        });
        old_build = old_build.min(e.as_secs_f64());
    }
    let mut new_build = f64::INFINITY;
    for _ in 0..reps {
        let (_, e) = timed(|| {
            std::hint::black_box(IncrementalValidator::with_config(
                &live0,
                fds.clone(),
                config.clone(),
            ))
        });
        new_build = new_build.min(e.as_secs_f64());
    }

    // --- Maintenance phase ------------------------------------------------
    // Both paths see the identical AppliedDelta against the identical
    // relation; deleted rows stay readable (tombstoned, not compacted).
    let mut old_maint = f64::INFINITY;
    let mut new_maint = f64::INFINITY;
    let mut gated = false;
    for _ in 0..reps {
        let mut live = LiveRelation::new(synth.clone());
        let mut old: Vec<OldTracker> =
            fds.iter().map(|fd| OldTracker::build(fd, live.relation(), live.live_rows())).collect();
        let mut validator = IncrementalValidator::with_config(&live, fds.clone(), config.clone());
        let applied = live.apply(&delta).expect("valid delta");
        if !gated {
            equality_gate("build", &old, &validator);
        }

        let (_, e) = timed(|| {
            for t in &mut old {
                t.apply(live.relation(), &applied);
            }
        });
        old_maint = old_maint.min(e.as_secs_f64());
        let (_, e) = timed(|| std::hint::black_box(validator.apply(&live, &applied)));
        new_maint = new_maint.min(e.as_secs_f64());

        if !gated {
            equality_gate("after delta", &old, &validator);
            gated = true;
        }
    }

    let build_speedup = old_build / new_build.max(1e-12);
    let maint_speedup = old_maint / new_maint.max(1e-12);
    let mut table = TextTable::new(["phase", "pre-opt s", "current s", "speedup"]);
    table.row([
        "tracker_build".into(),
        format!("{old_build:.4}"),
        format!("{new_build:.4}"),
        format!("{build_speedup:.2}x"),
    ]);
    table.row([
        "tracker_maintenance".into(),
        format!("{old_maint:.6}"),
        format!("{new_maint:.6}"),
        format!("{maint_speedup:.2}x"),
    ]);
    print!("{}", table.render());

    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"seed\": {seed},\n  \"reps\": {reps},\n  \
         \"fds\": {},\n  \"delta_changes\": {},\n  \"equality_gate\": \"passed\",\n  \
         \"workloads\": [\n    {{\"name\": \"tracker_build\", \"baseline_seconds\": \
         {old_build:.6}, \"current_seconds\": {new_build:.6}, \"speedup\": \
         {build_speedup:.3}}},\n    {{\"name\": \"tracker_maintenance\", \
         \"baseline_seconds\": {old_maint:.6}, \"current_seconds\": {new_maint:.6}, \
         \"speedup\": {maint_speedup:.3}}}\n  ]\n}}\n",
        fds.len(),
        delta.len(),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_tracker.json");
    println!(
        "\nwrote {out_path} (measures, violation aggregates and canonical snapshots \
         asserted identical per FD)"
    );
}
