//! `server` — multi-client throughput study of `evofd-server`.
//!
//! One experiment, written to `BENCH_server.json`, doubling as the CI
//! socket-service smoke gate (`--smoke`):
//!
//! 1. a durable engine with one FD-tracked table is served over loopback
//!    TCP;
//! 2. N concurrent clients each run a mixed workload — point reads,
//!    `COUNT(*)` scans and INSERT deltas — in their own sessions, while
//!    one subscriber client rides the push feed for drift events;
//! 3. after the run the final `COUNT(*)` is asserted to equal the base
//!    rows plus every acknowledged insert (no lost or duplicated
//!    statements under concurrency), and the subscriber must have seen
//!    the planted FD violations as pushed events. Any mismatch aborts.
//!
//! Flags: `--clients N` (default 8; `--smoke` forces 4), `--ops N` per
//! client (default 400; `--smoke` 120), `--seed S`, `--out PATH`.

use std::path::PathBuf;
use std::time::Duration;

use evofd_bench::{banner, timed, Args};
use evofd_core::{Fd, TextTable};
use evofd_incremental::ValidatorConfig;
use evofd_persist::{Database, DurableEngine, PersistOptions};
use evofd_server::{Client, EvofdServer, ServerOptions};
use evofd_storage::relation_of_strs;

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("evofd_bench_server");
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parse the single numeric cell out of a rendered `COUNT(*)` result.
fn parse_count(text: &str) -> u64 {
    text.lines()
        .rev()
        .find_map(|l| l.trim().parse().ok())
        .unwrap_or_else(|| panic!("no count in {text:?}"))
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let clients = args.get_or("clients", if smoke { 4 } else { 8usize });
    let ops = args.get_or("ops", if smoke { 120 } else { 400usize });
    let out_path = args.get("out").unwrap_or("BENCH_server.json").to_string();

    banner(
        "server — N concurrent TCP sessions: point reads, scans, inserts, push feed",
        "final COUNT(*) must equal base + every acknowledged insert; drift must be pushed",
    );

    // 1. Serve a durable engine with one FD-tracked table.
    let rel =
        relation_of_strs("bench", &["X", "Y"], &[&["x0", "y0"], &["x1", "y1"], &["x2", "y2"]])
            .unwrap();
    let base_rows = rel.row_count() as u64;
    let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
    let mut db = Database::open(&bench_dir(), PersistOptions::default()).unwrap();
    db.create_table(rel, fds, ValidatorConfig::default()).unwrap();
    let engine = DurableEngine::from_database(db).unwrap();
    let server =
        EvofdServer::start(engine, "127.0.0.1:0", ServerOptions { read_only: false, poll_ms: 5 })
            .unwrap();
    let addr = server.addr().to_string();
    println!("serving bench table on {addr}: {clients} client(s) × {ops} op(s)");

    // 2. One subscriber rides the push feed for the whole run. The
    //    subscription is acknowledged BEFORE any worker starts, so the
    //    planted violations cannot race past it.
    let mut sub_client = Client::connect(&addr, "bench-subscriber").unwrap();
    sub_client.subscribe("bench").unwrap();
    let subscriber = std::thread::spawn(move || {
        let mut events = 0u64;
        while let Ok(Some(_)) = sub_client.next_event_timeout(Duration::from_millis(1500)) {
            events += 1;
        }
        events
    });

    // 3. N concurrent mixed-workload sessions. Each client's first
    //    insert violates X -> Y (x0 already maps to y0), feeding the
    //    subscriber; the rest are clean per-client keys.
    let (per_client, elapsed) = timed(|| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr, &format!("bench-client-{c}")).unwrap();
                    let mut inserts = 0u64;
                    for op in 0..ops {
                        match op % 4 {
                            0 => {
                                let key = if op == 0 {
                                    "x0".to_string() // planted violation
                                } else {
                                    format!("c{c}k{op}")
                                };
                                client
                                    .sql(&format!("INSERT INTO bench VALUES ('{key}', 'v{c}')"))
                                    .unwrap();
                                inserts += 1;
                            }
                            1 => {
                                let text =
                                    client.sql("SELECT Y FROM bench WHERE X = 'x1'").unwrap();
                                assert!(text.contains("y1"), "point read broke: {text}");
                            }
                            _ => {
                                client.sql("SELECT COUNT(*) FROM bench").unwrap();
                            }
                        }
                    }
                    inserts
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect::<Vec<u64>>()
    });
    let inserted: u64 = per_client.iter().sum();
    let total_ops = (clients * ops) as u64;

    // 4. Correctness: the served engine holds exactly base + inserted
    //    rows, and the subscriber saw the planted violations.
    let mut verify = Client::connect(&addr, "bench-verify").unwrap();
    let count = parse_count(&verify.sql("SELECT COUNT(*) FROM bench").unwrap());
    assert_eq!(
        count,
        base_rows + inserted,
        "{clients} sessions × {ops} ops lost or duplicated statements"
    );
    let events = subscriber.join().unwrap();
    assert!(events > 0, "the drift subscriber saw no pushed events");
    println!(
        "verified: {count} rows = {base_rows} base + {inserted} inserts; \
         {events} drift event(s) pushed"
    );

    let ops_per_sec = total_ops as f64 / elapsed.as_secs_f64().max(1e-12);
    let mut table = TextTable::new(["metric", "value"]);
    table.row(["clients".into(), clients.to_string()]);
    table.row(["ops (total)".into(), total_ops.to_string()]);
    table.row(["seconds".into(), format!("{:.4}", elapsed.as_secs_f64())]);
    table.row(["ops/sec".into(), format!("{ops_per_sec:.0}")]);
    table.row(["drift events pushed".into(), events.to_string()]);
    print!("{}", table.render());

    let json = format!(
        "{{\n  \"bench\": \"server\",\n  \"clients\": {clients},\n  \"ops_per_client\": {ops},\n  \
         \"total_ops\": {total_ops},\n  \"inserted\": {inserted},\n  \
         \"seconds\": {:.6},\n  \"ops_per_sec\": {ops_per_sec:.1},\n  \
         \"drift_events\": {events},\n  \"verified\": true\n}}\n",
        elapsed.as_secs_f64(),
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");
}
