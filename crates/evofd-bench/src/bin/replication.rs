//! `replication` — WAL-shipping replication study of `evofd-persist`.
//!
//! One experiment, written to `BENCH_replication.json`, doubling as the
//! CI replication smoke gate (`--smoke`):
//!
//! 1. a **leader** ingests N journaled deltas against FDs under
//!    incremental validation;
//! 2. a **follower** bootstraps cold from the shipped snapshot and tails
//!    the WAL through the directory transport, timing bootstrap and
//!    catch-up (frames/sec);
//! 3. the follower is **killed and reopened once** mid-tail (recovery of
//!    the acked position), finishes catching up, and the full validator
//!    state — every FD's measures and violation aggregates — is diffed
//!    against the leader's. Any mismatch aborts the run.
//!
//! Flags: `--rows N` (base relation, default 5000), `--deltas N`
//! (default 5000; `--smoke` forces 1000), `--seed S`, `--out PATH`.

use std::path::PathBuf;

use evofd_bench::{banner, timed, Args};
use evofd_core::{Fd, TextTable};
use evofd_datagen::SyntheticSpec;
use evofd_incremental::{Delta, ValidatorConfig};
use evofd_persist::{Database, DirTransport, PersistOptions, ReplicaState, SyncPolicy};
use evofd_storage::Relation;

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("evofd_bench_replication").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Base relation with a planted, lightly violated FD set (same family as
/// the `durability` bench).
fn base_relation(rows: usize, seed: u64) -> Relation {
    SyntheticSpec::planted_fd("repl", 2, 2, rows, 64, 0.001, seed).generate()
}

fn fds(rel: &Relation) -> Vec<Fd> {
    ["a0, a1 -> a4", "a0 -> a2", "a2, a3 -> a0"]
        .iter()
        .map(|t| Fd::parse(rel.schema(), t).expect("static FD"))
        .collect()
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let rows = args.get_or("rows", if smoke { 2000 } else { 5000usize });
    let n_deltas = args.get_or("deltas", if smoke { 1000 } else { 5000usize });
    let seed = args.get_or("seed", 2016u64);
    let out_path = args.get("out").unwrap_or("BENCH_replication.json").to_string();

    banner(
        "replication — WAL shipping: cold bootstrap, tail, kill/reopen, verify",
        "follower state must equal the leader's, FD by FD, after catch-up",
    );

    // 1. Leader ingest.
    let base = base_relation(rows, seed);
    let donor = base_relation(4096.min(rows.max(1)), seed + 1);
    let leader_dir = bench_dir("leader");
    let opts = PersistOptions {
        sync: SyncPolicy::GroupCommit(64),
        wal_compact_bytes: u64::MAX, // keep the whole WAL: pure shipping
        ..PersistOptions::default()
    };
    let mut db = Database::open(&leader_dir, opts.clone()).unwrap();
    db.create_table(base.clone(), fds(&base), ValidatorConfig::default()).unwrap();
    let (_, ingest) = timed(|| {
        let t = db.get_mut("repl").unwrap();
        for i in 0..n_deltas {
            t.apply(&Delta::inserting(vec![donor.row(i % donor.row_count())])).unwrap();
        }
        t.sync().unwrap();
    });
    let leader_seq = db.get("repl").unwrap().last_seq();
    println!(
        "leader: {} rows base, {} delta commit(s) in {:.3}s ({:.0}/s), seq {}",
        base.row_count(),
        n_deltas,
        ingest.as_secs_f64(),
        n_deltas as f64 / ingest.as_secs_f64().max(1e-12),
        leader_seq
    );

    // 2. Cold follower: bootstrap + first half of the tail.
    let replica_dir = bench_dir("replica");
    let table_dir = leader_dir.join("repl");
    let mut transport = DirTransport::new(&table_dir);
    let (mut replica, bootstrap_t) = timed(|| {
        ReplicaState::open_or_bootstrap(&replica_dir, &mut transport, opts.clone()).unwrap()
    });
    let half = n_deltas / 2;
    let (_, catch_first_t) = timed(|| replica.sync_with_limit(&mut transport, Some(half)).unwrap());
    let mid_seq = replica.last_seq();

    // 3. Kill and reopen once mid-tail, then finish.
    drop(replica);
    let (mut replica, reopen_t) = timed(|| ReplicaState::open(&replica_dir, opts.clone()).unwrap());
    let (_, catch_rest_t) = timed(|| replica.sync(&mut transport).unwrap());
    assert_eq!(replica.last_seq(), leader_seq, "follower did not catch up");
    let catchup = catch_first_t + catch_rest_t;

    // 4. Diff the full validator state against the leader, FD by FD.
    let leader = db.get("repl").unwrap();
    let follower = replica.table();
    for i in 0..leader.validator().fds().len() {
        assert_eq!(
            leader.validator().measures(i),
            follower.validator().measures(i),
            "FD #{i} measures diverged"
        );
        assert_eq!(
            leader.validator().summary(i).violating_rows,
            follower.validator().summary(i).violating_rows,
            "FD #{i} violation aggregate diverged"
        );
    }
    assert_eq!(
        leader.encode_current_snapshot(),
        follower.encode_current_snapshot(),
        "full state images diverged"
    );
    println!(
        "verified: follower state equals leader state ({} FDs, seq {leader_seq}; \
         kill/reopen at seq {mid_seq})",
        leader.validator().fds().len()
    );

    let mut table = TextTable::new(["phase", "seconds", "rate"]);
    let frames_per_sec = n_deltas as f64 / catchup.as_secs_f64().max(1e-12);
    table.row([
        "leader ingest".into(),
        format!("{:.4}", ingest.as_secs_f64()),
        format!("{:.0} deltas/s", n_deltas as f64 / ingest.as_secs_f64().max(1e-12)),
    ]);
    table.row(["cold bootstrap".into(), format!("{:.4}", bootstrap_t.as_secs_f64()), "-".into()]);
    table.row([
        "tail catch-up".into(),
        format!("{:.4}", catchup.as_secs_f64()),
        format!("{frames_per_sec:.0} frames/s"),
    ]);
    table.row(["kill + reopen".into(), format!("{:.4}", reopen_t.as_secs_f64()), "-".into()]);
    print!("{}", table.render());

    let json = format!(
        "{{\n  \"bench\": \"replication\",\n  \"rows\": {},\n  \"deltas\": {},\n  \
         \"leader_seq\": {},\n  \"ingest_seconds\": {:.6},\n  \"bootstrap_seconds\": {:.6},\n  \
         \"catchup_seconds\": {:.6},\n  \"reopen_seconds\": {:.6},\n  \
         \"ship_frames_per_sec\": {:.1},\n  \"verified\": true\n}}\n",
        base.row_count(),
        n_deltas,
        leader_seq,
        ingest.as_secs_f64(),
        bootstrap_t.as_secs_f64(),
        catchup.as_secs_f64(),
        reopen_t.as_secs_f64(),
        frames_per_sec,
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");
}
