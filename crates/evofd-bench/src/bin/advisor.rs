//! `advisor` — incremental advisor maintenance vs batch re-analysis.
//!
//! The question the live-advisor refactor exists to answer: when a delta
//! lands on a relation with violated FDs, is keeping the repair-proposal
//! lists current via the maintained [`RepairIndex`] lattices (O(changed
//! rows) per candidate) actually cheaper than re-running the paper's
//! batch loop — a fresh `AdvisorSession::analyze` with its from-scratch
//! repair search — for the same freshness? This bin sweeps the delta size
//! as a fraction of the relation, verifies at every point that the live
//! proposals are **identical** to the batch analysis (count, order, added
//! sets, measures — any divergence aborts the run), and writes the
//! timings to `BENCH_advisor.json`. Doubles as the CI advisor smoke gate
//! (`--smoke`).
//!
//! Flags: `--rows N` (default 50_000), `--deltas 1,2,5,10,20` (percent of
//! rows changed per delta), `--seed S`, `--out PATH`, `--smoke`.

use evofd_bench::{banner, timed, Args};
use evofd_core::{format_duration, AdvisorSession, Fd, FdState, TextTable};
use evofd_datagen::SyntheticSpec;
use evofd_incremental::{Delta, IncrementalValidator, LiveAdvisor, LiveRelation, ValidatorConfig};
use evofd_storage::Value;

/// The live proposals must equal the batch session's, FD by FD.
fn verify_equal(live: &LiveRelation, advisor: &LiveAdvisor, pct: usize) {
    let snap = live.snapshot();
    let mut session = AdvisorSession::new(&snap, advisor.fds().to_vec());
    session.analyze().expect("fresh analysis");
    for i in 0..advisor.fds().len() {
        match (advisor.state(i).expect("tracked FD"), session.state(i).expect("tracked FD")) {
            (evofd_incremental::LiveFdState::Satisfied, FdState::Satisfied) => {}
            (
                evofd_incremental::LiveFdState::Violated { index },
                FdState::Violated { proposals, truncated },
            ) => {
                assert!(!truncated, "batch oracle truncated at {pct}%");
                assert_eq!(index.proposals().len(), proposals.len(), "FD #{i} count at {pct}%");
                for (ours, theirs) in index.proposals().iter().zip(proposals) {
                    assert_eq!(ours.added, theirs.added, "FD #{i} added set at {pct}%");
                    assert_eq!(ours.measures, theirs.measures, "FD #{i} measures at {pct}%");
                }
            }
            (ours, theirs) => {
                panic!("FD #{i} at {pct}%: live {} vs batch {theirs:?}", ours.label())
            }
        }
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let rows = args.get_or("rows", if smoke { 20_000 } else { 50_000usize });
    let pcts = args.list_or("deltas", if smoke { &[1, 10] } else { &[1, 2, 5, 10, 20] });
    let seed = args.get_or("seed", 2016u64);
    let out_path = args.get("out").unwrap_or("BENCH_advisor.json").to_string();

    banner(
        "advisor — incremental proposal maintenance vs batch re-analysis",
        "per-delta cost of keeping the designer loop's ranked repairs current",
    );

    let reps = args.get_or("reps", 3usize).max(1);

    // A relation with a planted, lightly violated FD a0,a1 -> a4 (the
    // advisor keeps its proposals current) plus a satisfied one; a fresh
    // generation with another seed (same error distribution) supplies
    // realistic insert tuples.
    let spec = SyntheticSpec::planted_fd("live", 2, 2, rows, 64, 0.001, seed);
    let rel = spec.generate();
    let donor =
        SyntheticSpec::planted_fd("live", 2, 2, rows.max(1024), 64, 0.001, seed + 1).generate();
    let fds = vec![
        Fd::parse(rel.schema(), "a0, a1 -> a4").expect("planted FD"),
        Fd::parse(rel.schema(), "a0 -> a2").expect("static"),
    ];
    println!("{} rows × {} attrs, {} tracked FD(s)\n", rel.row_count(), rel.arity(), fds.len());

    let mut table = TextTable::new([
        "delta",
        "changed rows",
        "incremental advisor",
        "batch re-analysis",
        "speedup",
    ]);
    let mut results: Vec<(usize, usize, f64, f64, f64)> = Vec::new();

    for &pct in &pcts {
        let changes = (rows * pct / 100).max(1);
        let n_del = changes / 2;
        let n_ins = changes - n_del;

        let mut live = LiveRelation::new(rel.clone());
        // Force the incremental paths even for huge deltas: this bin
        // exists to chart where they stop winning.
        let config = ValidatorConfig {
            full_recompute_fraction: f64::INFINITY,
            ..ValidatorConfig::default()
        };
        let mut validator = IncrementalValidator::with_config(&live, fds.clone(), config);
        let mut advisor = LiveAdvisor::new(&live, &validator);
        assert!(!advisor.pending().is_empty(), "the planted FD must be violated");

        // `reps` consecutive deltas of this size: the steady-state cost a
        // live system pays, structure growth amortized like production.
        let mut t_inc = std::time::Duration::ZERO;
        let mut t_batch = std::time::Duration::ZERO;
        for rep in 0..reps {
            let base = (rep * changes) % donor.row_count();
            let inserts: Vec<Vec<Value>> =
                (0..n_ins).map(|i| donor.row((base + i) % donor.row_count())).collect();
            let first_live = live.live_rows().take(n_del).collect::<Vec<_>>();
            let delta = Delta { inserts, deletes: first_live };

            let applied = live.apply(&delta).expect("valid delta");
            validator.apply(&live, &applied);
            let (_, dt) = timed(|| advisor.apply(&live, &validator, &applied));
            t_inc += dt;

            // Batch re-analysis: what the paper's offline loop pays for
            // the same freshness — a canonical snapshot plus a fresh
            // session over it.
            let (_, dt) = timed(|| {
                let snap = live.snapshot();
                let mut session = AdvisorSession::new(&snap, fds.clone());
                session.analyze().expect("fresh analysis");
                std::hint::black_box(session.pending().len())
            });
            t_batch += dt;
        }
        assert_eq!(advisor.stats().incremental, reps as u64, "every delta absorbed incrementally");

        // Correctness gate: identical proposals, identical order.
        verify_equal(&live, &advisor, pct);

        if args.flag("verbose") {
            for i in advisor.pending() {
                if let Ok(evofd_incremental::LiveFdState::Violated { index }) = advisor.state(i) {
                    eprintln!("  fd #{i}: {} nodes, stats {:?}", index.node_count(), index.stats());
                }
            }
        }

        let speedup = t_batch.as_secs_f64() / t_inc.as_secs_f64().max(1e-9);
        table.row([
            format!("{pct}%"),
            changes.to_string(),
            format_duration(t_inc),
            format_duration(t_batch),
            format!("{speedup:.1}x"),
        ]);
        results.push((pct, changes, t_inc.as_secs_f64(), t_batch.as_secs_f64(), speedup));
    }

    print!("{}", table.render());
    let target = results
        .iter()
        .filter(|(pct, ..)| *pct <= 10)
        .map(|&(.., s)| s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nspeedup = batch re-analysis / incremental maintain; minimum at ≤10% deltas: \
         {target:.1}x (target ≥10x: {})",
        if target >= 10.0 { "MET" } else { "missed" }
    );

    let entries: Vec<String> = results
        .iter()
        .map(|(pct, changed, inc, batch, speedup)| {
            format!(
                "    {{ \"delta_pct\": {pct}, \"changed_rows\": {changed}, \
                 \"incremental_seconds\": {inc:.9}, \"batch_seconds\": {batch:.9}, \
                 \"speedup\": {speedup:.1} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"advisor\",\n  \"rows\": {},\n  \"fds\": {},\n  \
         \"verified_equal_to_batch\": true,\n  \"min_speedup_le_10pct\": {:.1},\n  \
         \"target_10x_met\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        rel.row_count(),
        fds.len(),
        target,
        target >= 10.0,
        entries.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
}
