//! The paper's reported measurements, embedded for side-by-side printing.
//!
//! Every reproduction binary prints *paper vs measured*. Absolute times
//! are not comparable (the paper ran a Java/MySQL prototype on a 2.6 GHz
//! Core i5 with 4 GB RAM under Windows 8; we run an in-process Rust
//! engine) — the *shape* is what must reproduce: who is slow, who is
//! instant, how time scales with attributes and tuples.

/// One row of the paper's Table 5 (FindFDRepairs processing times).
#[derive(Debug, Clone, Copy)]
pub struct Table5Row {
    /// TPC-H table name.
    pub table: &'static str,
    /// The FD, rendered as in the paper.
    pub fd: &'static str,
    /// Processing time at 100 MB (milliseconds).
    pub ms_100mb: u64,
    /// Processing time at 250 MB (milliseconds).
    pub ms_250mb: u64,
    /// Processing time at 1 GB (milliseconds).
    pub ms_1gb: u64,
}

/// Table 5 of the paper.
pub const TABLE5: [Table5Row; 8] = [
    Table5Row {
        table: "customer",
        fd: "[name]->[address]",
        ms_100mb: 1_276,
        ms_250mb: 2_873,
        ms_1gb: 20_657,
    },
    Table5Row {
        table: "lineitem",
        fd: "[partkey]->[suppkey]",
        ms_100mb: 582_708,
        ms_250mb: 1_280_599,
        ms_1gb: 7_159_884,
    },
    Table5Row { table: "nation", fd: "[name]->[regionkey]", ms_100mb: 5, ms_250mb: 5, ms_1gb: 6 },
    Table5Row {
        table: "orders",
        fd: "[custkey]->[orderstatus]",
        ms_100mb: 8_621,
        ms_250mb: 19_726,
        ms_1gb: 117_103,
    },
    Table5Row {
        table: "part",
        fd: "[name]->[mfgr]",
        ms_100mb: 1_003,
        ms_250mb: 1_983,
        ms_1gb: 18_561,
    },
    Table5Row {
        table: "partsupp",
        fd: "[suppkey]->[availqty]",
        ms_100mb: 4_450,
        ms_250mb: 10_570,
        ms_1gb: 63_909,
    },
    Table5Row { table: "region", fd: "[name]->[comment]", ms_100mb: 3, ms_250mb: 3, ms_1gb: 3 },
    Table5Row {
        table: "supplier",
        fd: "[name]->[address]",
        ms_100mb: 74,
        ms_250mb: 141,
        ms_1gb: 717,
    },
];

/// One row of the paper's Table 4 (TPC-H database overview).
#[derive(Debug, Clone, Copy)]
pub struct Table4Row {
    /// TPC-H table name.
    pub table: &'static str,
    /// Number of attributes.
    pub arity: usize,
    /// Cardinality at 100 MB.
    pub card_100mb: usize,
    /// Cardinality at 250 MB.
    pub card_250mb: usize,
    /// Cardinality at 1 GB.
    pub card_1gb: usize,
}

/// Table 4 of the paper.
pub const TABLE4: [Table4Row; 8] = [
    Table4Row {
        table: "customer",
        arity: 8,
        card_100mb: 15_000,
        card_250mb: 30_043,
        card_1gb: 150_249,
    },
    Table4Row {
        table: "lineitem",
        arity: 16,
        card_100mb: 601_045,
        card_250mb: 1_196_929,
        card_1gb: 6_005_428,
    },
    Table4Row { table: "nation", arity: 4, card_100mb: 25, card_250mb: 25, card_1gb: 25 },
    Table4Row {
        table: "orders",
        arity: 9,
        card_100mb: 149_622,
        card_250mb: 301_174,
        card_1gb: 1_493_724,
    },
    Table4Row {
        table: "part",
        arity: 9,
        card_100mb: 20_000,
        card_250mb: 40_098,
        card_1gb: 199_756,
    },
    Table4Row {
        table: "partsupp",
        arity: 5,
        card_100mb: 80_533,
        card_250mb: 160_611,
        card_1gb: 779_546,
    },
    Table4Row { table: "region", arity: 3, card_100mb: 5, card_250mb: 5, card_1gb: 5 },
    Table4Row {
        table: "supplier",
        arity: 7,
        card_100mb: 1_000,
        card_250mb: 2_000,
        card_1gb: 10_000,
    },
];

/// One row of the paper's Table 6 (real databases overview).
#[derive(Debug, Clone, Copy)]
pub struct Table6Row {
    /// Relation name.
    pub table: &'static str,
    /// Number of attributes.
    pub arity: usize,
    /// Number of tuples.
    pub card: usize,
    /// Find-first processing time (milliseconds).
    pub ms: u64,
}

/// Table 6 of the paper.
pub const TABLE6: [Table6Row; 6] = [
    Table6Row { table: "Places", arity: 9, card: 10, ms: 257 },
    Table6Row { table: "Country", arity: 15, card: 239, ms: 32 },
    Table6Row { table: "Rental", arity: 7, card: 16_044, ms: 588 },
    Table6Row { table: "Image", arity: 14, card: 124_768, ms: 172_000 },
    Table6Row { table: "PageLinks", arity: 3, card: 842_159, ms: 4_678 },
    Table6Row { table: "Veterans", arity: 481, card: 95_412, ms: 1_785_000 },
];

/// The Veterans sweep grids (Tables 7 and 8): milliseconds indexed by
/// `[rows/10k - 1][attrs: 10, 20, 30]`.
pub const TABLE7_FIND_ALL_MS: [[u64; 3]; 7] = [
    [26_000, 256_000, 1_054_000],
    [38_000, 476_000, 2_101_000],
    [57_000, 707_000, 3_108_000],
    [133_000, 929_000, 5_292_000],
    [164_000, 1_174_000, 3_648_000], // 50k/30 printed as "1h48s" in the paper (ambiguous)
    [197_000, 1_371_000, 6_963_000],
    [313_000, 2_196_000, 8_588_000],
];

/// Table 8 (find the first repair), same indexing.
pub const TABLE8_FIND_FIRST_MS: [[u64; 3]; 7] = [
    [8_076, 53_096, 143_000],
    [18_022, 90_000, 250_000],
    [27_064, 135_000, 372_000],
    [85_000, 184_000, 498_000],
    [107_000, 226_000, 638_000],
    [130_000, 284_000, 771_000],
    [323_000, 357_000, 970_000],
];

/// Row counts of the sweep grids (Tables 7–8).
pub const SWEEP_ROWS: [usize; 7] = [10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000];

/// Attribute counts of the sweep grids (Tables 7–8).
pub const SWEEP_ATTRS: [usize; 3] = [10, 20, 30];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape_is_monotone_per_row() {
        for row in TABLE5 {
            assert!(row.ms_100mb <= row.ms_250mb, "{}", row.table);
            assert!(row.ms_250mb <= row.ms_1gb, "{}", row.table);
        }
    }

    #[test]
    fn lineitem_dominates_table5() {
        let lineitem = TABLE5.iter().find(|r| r.table == "lineitem").unwrap();
        for row in TABLE5 {
            assert!(row.ms_1gb <= lineitem.ms_1gb);
        }
    }

    #[test]
    fn sweep_grids_grow_with_attrs() {
        for grid in [&TABLE7_FIND_ALL_MS, &TABLE8_FIND_FIRST_MS] {
            for row in grid.iter() {
                assert!(row[0] < row[1] && row[1] < row[2]);
            }
        }
    }

    #[test]
    fn find_first_never_slower_than_find_all() {
        // Paper observation: Table 8 ≤ Table 7 cell-wise — except the
        // unrepairable 70k×10 cell, where both explore the whole space
        // and the paper's find-first run came out marginally *slower*
        // (5m23s vs 5m13s). Allow that cell 5% noise.
        for (r7, r8) in TABLE7_FIND_ALL_MS.iter().zip(TABLE8_FIND_FIRST_MS.iter()) {
            for (a, b) in r7.iter().zip(r8.iter()) {
                assert!(*b as f64 <= *a as f64 * 1.05, "find-first {b} ≫ find-all {a}");
            }
        }
    }
}
