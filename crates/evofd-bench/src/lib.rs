//! # evofd-bench
//!
//! Benchmark harness reproducing **every table and figure** of the
//! EDBT 2016 evaluation (Section 6), plus the §5 CB-vs-EB comparison the
//! paper could not run and ablations of our design choices.
//!
//! One binary per experiment (see DESIGN.md's experiment index):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table4` | Table 4 — TPC-H databases overview |
//! | `table5` | Table 5 — FindFDRepairs processing times |
//! | `fig3` | Figure 3 — time vs #attrs / #tuples / table size |
//! | `table6` | Table 6 — real databases overview & find-first times |
//! | `table7` | Table 7 — Veterans sweep, find **all** repairs |
//! | `table8` | Table 8 — Veterans sweep, find the **first** repair |
//! | `cb_vs_eb` | §5 — confidence-based vs entropy-based methods |
//! | `discovery_vs_repair` | §2 — declared-FD repair vs discover-then-relax |
//! | `ablation` | DESIGN.md ablations (cache, counting, thresholds) |
//!
//! Each binary accepts `--scale`/`--rows`/`--attrs` style flags (run with
//! `--help`) and defaults to laptop-friendly sizes; `--paper` switches to
//! the paper's full workload sizes. Measured numbers are printed next to
//! the paper's, and EXPERIMENTS.md records a full run.

pub mod paper;

use std::time::{Duration, Instant};

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Minimal flag parser: `--name value` pairs plus boolean `--flag`s.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `std::env::args` (skipping the binary name).
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// Parse an explicit iterator (testable).
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Args {
        let mut out = Args::default();
        let mut iter = items.into_iter().peekable();
        while let Some(item) = iter.next() {
            if let Some(name) = item.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        out.pairs.push((name.to_string(), iter.next().expect("peeked")));
                    }
                    _ => out.flags.push(name.to_string()),
                }
            }
        }
        out
    }

    /// Boolean flag presence.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Raw string value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Parsed value with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Comma-separated list with default.
    pub fn list_or(&self, name: &str, default: &[usize]) -> Vec<usize> {
        match self.get(name) {
            None => default.to_vec(),
            Some(v) => v.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
        }
    }
}

/// Render `measured` next to a `paper_ms` reference.
pub fn vs_paper(measured: Duration, paper_ms: u64) -> String {
    format!(
        "{} (paper: {})",
        evofd_core::format_duration(measured),
        evofd_core::format_duration(Duration::from_millis(paper_ms))
    )
}

/// Print a standard experiment header.
pub fn banner(title: &str, note: &str) {
    println!("================================================================");
    println!("{title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = args("--scale 0.05 --paper --rows 10,20");
        assert_eq!(a.get_or("scale", 1.0f64), 0.05);
        assert!(a.flag("paper"));
        assert!(!a.flag("full"));
        assert_eq!(a.list_or("rows", &[1]), vec![10, 20]);
        assert_eq!(a.list_or("attrs", &[5, 6]), vec![5, 6]);
    }

    #[test]
    fn later_pair_wins() {
        let a = args("--scale 1 --scale 2");
        assert_eq!(a.get_or("scale", 0.0f64), 2.0);
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(5));
    }

    #[test]
    fn vs_paper_formats_both() {
        let s = vs_paper(Duration::from_millis(5), 7_159_884);
        assert!(s.contains("5ms"));
        assert!(s.contains("1h 59m 19s 884ms"));
    }
}
