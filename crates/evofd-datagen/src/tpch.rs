//! A DBGEN-style TPC-H data generator (Table 4's workload).
//!
//! Generates the eight TPC-H tables at an arbitrary scale factor with the
//! spec's arities and cardinality ratios (SF 1.0 ≈ the paper's 1 GB
//! database, SF 0.1 ≈ 100 MB, SF 0.25 ≈ 250 MB). Values follow DBGEN's
//! shapes where the experiments depend on them:
//!
//! * `*_name` key-derived columns are injective (`Customer#000000001`),
//!   so the Table 5 FDs on customer/nation/part/region/supplier are
//!   **exact** — their processing time is pure validation;
//! * `l_partkey → l_suppkey` is **violated** (each part is served by four
//!   suppliers, DBGEN's formula), `o_custkey → o_orderstatus` and
//!   `ps_suppkey → ps_availqty` are **violated** — these drive the long
//!   repair searches in Table 5;
//! * everything is deterministic in `(scale, seed)`.

use evofd_core::Fd;
use evofd_storage::{Catalog, DataType, Field, Relation, RelationBuilder, Schema, Value};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::rng::{child_seed, rng_from_seed, sentence, WORDS};

/// The eight TPC-H tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchTable {
    /// `region` (3 attributes, 5 rows).
    Region,
    /// `nation` (4 attributes, 25 rows).
    Nation,
    /// `supplier` (7 attributes, 10 000 × SF rows).
    Supplier,
    /// `customer` (8 attributes, 150 000 × SF rows).
    Customer,
    /// `part` (9 attributes, 200 000 × SF rows).
    Part,
    /// `partsupp` (5 attributes, 800 000 × SF rows).
    PartSupp,
    /// `orders` (9 attributes, 1 500 000 × SF rows).
    Orders,
    /// `lineitem` (16 attributes, ≈6 000 000 × SF rows).
    Lineitem,
}

impl TpchTable {
    /// All tables in dependency order.
    pub const ALL: [TpchTable; 8] = [
        TpchTable::Region,
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Customer,
        TpchTable::Part,
        TpchTable::PartSupp,
        TpchTable::Orders,
        TpchTable::Lineitem,
    ];

    /// The SQL table name.
    pub fn name(self) -> &'static str {
        match self {
            TpchTable::Region => "region",
            TpchTable::Nation => "nation",
            TpchTable::Supplier => "supplier",
            TpchTable::Customer => "customer",
            TpchTable::Part => "part",
            TpchTable::PartSupp => "partsupp",
            TpchTable::Orders => "orders",
            TpchTable::Lineitem => "lineitem",
        }
    }

    /// Number of attributes (matches the paper's Table 4 "arity" column).
    pub fn arity(self) -> usize {
        match self {
            TpchTable::Region => 3,
            TpchTable::Nation => 4,
            TpchTable::Supplier => 7,
            TpchTable::Customer => 8,
            TpchTable::Part => 9,
            TpchTable::PartSupp => 5,
            TpchTable::Orders => 9,
            TpchTable::Lineitem => 16,
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchSpec {
    /// Scale factor: 1.0 ≈ the paper's 1 GB database.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TpchSpec {
    /// A spec with the default seed.
    pub fn new(scale: f64) -> TpchSpec {
        TpchSpec { scale, seed: 20_160_315 } // EDBT 2016 opened March 15.
    }

    fn scaled(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(1)
    }

    /// Row count of a table at this scale (lineitem is approximate: the
    /// actual count depends on the per-order line rolls).
    pub fn cardinality(&self, table: TpchTable) -> usize {
        match table {
            TpchTable::Region => 5,
            TpchTable::Nation => 25,
            TpchTable::Supplier => self.scaled(10_000),
            TpchTable::Customer => self.scaled(150_000),
            TpchTable::Part => self.scaled(200_000),
            TpchTable::PartSupp => self.scaled(200_000) * 4,
            TpchTable::Orders => self.scaled(1_500_000),
            TpchTable::Lineitem => self.scaled(1_500_000) * 4,
        }
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const INSTRUCTIONS: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const CONTAINERS: [&str; 8] = ["SM", "MED", "LG", "JUMBO", "WRAP", "SMALL", "BIG", "TINY"];
const CONTAINER2: [&str; 5] = ["CASE", "BOX", "BAG", "PKG", "DRUM"];

fn money(rng: &mut SmallRng, lo: f64, hi: f64) -> Value {
    Value::Float((rng.gen_range(lo..hi) * 100.0).round() / 100.0)
}

fn date(rng: &mut SmallRng) -> Value {
    Value::str(format!(
        "19{:02}-{:02}-{:02}",
        rng.gen_range(92..=98u32),
        rng.gen_range(1..=12u32),
        rng.gen_range(1..=28u32)
    ))
}

fn tpch_phone(rng: &mut SmallRng, nationkey: i64) -> Value {
    Value::str(format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nationkey,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10_000)
    ))
}

/// An injective 5-word part name derived from the part key (mixed-radix
/// over the 92-word pool) — guarantees `p_name → p_mfgr` is exact, the
/// behaviour the Table 5 timings imply.
fn part_name(partkey: i64) -> String {
    let mut k = partkey as u64;
    let mut words = Vec::with_capacity(5);
    for _ in 0..5 {
        words.push(WORDS[(k % WORDS.len() as u64) as usize]);
        k /= WORDS.len() as u64;
    }
    words.join(" ")
}

fn str_field(name: &str) -> Field {
    Field::not_null(name, DataType::Str)
}

fn int_field(name: &str) -> Field {
    Field::not_null(name, DataType::Int)
}

fn float_field(name: &str) -> Field {
    Field::not_null(name, DataType::Float)
}

/// Generate one TPC-H table.
pub fn generate_table(spec: &TpchSpec, table: TpchTable) -> Relation {
    let mut rng = rng_from_seed(child_seed(spec.seed, table.name()));
    match table {
        TpchTable::Region => {
            let schema = Schema::new(
                "region",
                vec![int_field("r_regionkey"), str_field("r_name"), str_field("r_comment")],
            )
            .expect("static")
            .into_shared();
            let mut b = RelationBuilder::with_capacity(schema, 5);
            for (i, name) in REGIONS.iter().enumerate() {
                b.push_row(vec![
                    Value::Int(i as i64),
                    Value::str(*name),
                    Value::str(sentence(&mut rng, WORDS, 6)),
                ])
                .expect("static schema");
            }
            b.finish()
        }
        TpchTable::Nation => {
            let schema = Schema::new(
                "nation",
                vec![
                    int_field("n_nationkey"),
                    str_field("n_name"),
                    int_field("n_regionkey"),
                    str_field("n_comment"),
                ],
            )
            .expect("static")
            .into_shared();
            let mut b = RelationBuilder::with_capacity(schema, 25);
            for (i, (name, region)) in NATIONS.iter().enumerate() {
                b.push_row(vec![
                    Value::Int(i as i64),
                    Value::str(*name),
                    Value::Int(*region),
                    Value::str(sentence(&mut rng, WORDS, 8)),
                ])
                .expect("static schema");
            }
            b.finish()
        }
        TpchTable::Supplier => {
            let n = spec.cardinality(table);
            let schema = Schema::new(
                "supplier",
                vec![
                    int_field("s_suppkey"),
                    str_field("s_name"),
                    str_field("s_address"),
                    int_field("s_nationkey"),
                    str_field("s_phone"),
                    float_field("s_acctbal"),
                    str_field("s_comment"),
                ],
            )
            .expect("static")
            .into_shared();
            let mut b = RelationBuilder::with_capacity(schema, n);
            for k in 1..=n as i64 {
                let nation = rng.gen_range(0..25i64);
                b.push_row(vec![
                    Value::Int(k),
                    Value::str(format!("Supplier#{k:09}")),
                    Value::str(sentence(&mut rng, WORDS, 3)),
                    Value::Int(nation),
                    tpch_phone(&mut rng, nation),
                    money(&mut rng, -999.99, 9999.99),
                    Value::str(sentence(&mut rng, WORDS, 10)),
                ])
                .expect("static schema");
            }
            b.finish()
        }
        TpchTable::Customer => {
            let n = spec.cardinality(table);
            let schema = Schema::new(
                "customer",
                vec![
                    int_field("c_custkey"),
                    str_field("c_name"),
                    str_field("c_address"),
                    int_field("c_nationkey"),
                    str_field("c_phone"),
                    float_field("c_acctbal"),
                    str_field("c_mktsegment"),
                    str_field("c_comment"),
                ],
            )
            .expect("static")
            .into_shared();
            let mut b = RelationBuilder::with_capacity(schema, n);
            for k in 1..=n as i64 {
                let nation = rng.gen_range(0..25i64);
                b.push_row(vec![
                    Value::Int(k),
                    Value::str(format!("Customer#{k:09}")),
                    Value::str(sentence(&mut rng, WORDS, 3)),
                    Value::Int(nation),
                    tpch_phone(&mut rng, nation),
                    money(&mut rng, -999.99, 9999.99),
                    Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                    Value::str(sentence(&mut rng, WORDS, 9)),
                ])
                .expect("static schema");
            }
            b.finish()
        }
        TpchTable::Part => {
            let n = spec.cardinality(table);
            let schema = Schema::new(
                "part",
                vec![
                    int_field("p_partkey"),
                    str_field("p_name"),
                    str_field("p_mfgr"),
                    str_field("p_brand"),
                    str_field("p_type"),
                    int_field("p_size"),
                    str_field("p_container"),
                    float_field("p_retailprice"),
                    str_field("p_comment"),
                ],
            )
            .expect("static")
            .into_shared();
            let mut b = RelationBuilder::with_capacity(schema, n);
            for k in 1..=n as i64 {
                let mfgr = rng.gen_range(1..=5u32);
                b.push_row(vec![
                    Value::Int(k),
                    Value::str(part_name(k)),
                    Value::str(format!("Manufacturer#{mfgr}")),
                    Value::str(format!("Brand#{}{}", mfgr, rng.gen_range(1..=5u32))),
                    Value::str(sentence(&mut rng, WORDS, 3)),
                    Value::Int(rng.gen_range(1..=50i64)),
                    Value::str(format!(
                        "{} {}",
                        CONTAINERS[rng.gen_range(0..CONTAINERS.len())],
                        CONTAINER2[rng.gen_range(0..CONTAINER2.len())]
                    )),
                    Value::Float((90_000.0 + (k % 200_001) as f64) / 100.0),
                    Value::str(sentence(&mut rng, WORDS, 5)),
                ])
                .expect("static schema");
            }
            b.finish()
        }
        TpchTable::PartSupp => {
            let parts = spec.scaled(200_000) as i64;
            let suppliers = spec.scaled(10_000) as i64;
            let schema = Schema::new(
                "partsupp",
                vec![
                    int_field("ps_partkey"),
                    int_field("ps_suppkey"),
                    int_field("ps_availqty"),
                    float_field("ps_supplycost"),
                    str_field("ps_comment"),
                ],
            )
            .expect("static")
            .into_shared();
            let mut b = RelationBuilder::with_capacity(schema, (parts * 4) as usize);
            for p in 1..=parts {
                for i in 0..4i64 {
                    b.push_row(vec![
                        Value::Int(p),
                        Value::Int(supp_for_part(p, i, suppliers)),
                        Value::Int(rng.gen_range(1..=9999i64)),
                        money(&mut rng, 1.0, 1000.0),
                        Value::str(sentence(&mut rng, WORDS, 12)),
                    ])
                    .expect("static schema");
                }
            }
            b.finish()
        }
        TpchTable::Orders => {
            let n = spec.cardinality(table);
            let customers = spec.scaled(150_000) as i64;
            let clerks = spec.scaled(1000).max(1) as i64;
            let schema = Schema::new(
                "orders",
                vec![
                    int_field("o_orderkey"),
                    int_field("o_custkey"),
                    str_field("o_orderstatus"),
                    float_field("o_totalprice"),
                    str_field("o_orderdate"),
                    str_field("o_orderpriority"),
                    str_field("o_clerk"),
                    int_field("o_shippriority"),
                    str_field("o_comment"),
                ],
            )
            .expect("static")
            .into_shared();
            let mut b = RelationBuilder::with_capacity(schema, n);
            for k in 1..=n as i64 {
                b.push_row(vec![
                    Value::Int(k),
                    Value::Int(rng.gen_range(1..=customers)),
                    Value::str(["O", "F", "P"][rng.gen_range(0..3usize)]),
                    money(&mut rng, 800.0, 500_000.0),
                    date(&mut rng),
                    Value::str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
                    Value::str(format!("Clerk#{:09}", rng.gen_range(1..=clerks))),
                    Value::Int(0),
                    Value::str(sentence(&mut rng, WORDS, 7)),
                ])
                .expect("static schema");
            }
            b.finish()
        }
        TpchTable::Lineitem => {
            let orders = spec.cardinality(TpchTable::Orders) as i64;
            let parts = spec.scaled(200_000) as i64;
            let suppliers = spec.scaled(10_000) as i64;
            let schema = Schema::new(
                "lineitem",
                vec![
                    int_field("l_orderkey"),
                    int_field("l_partkey"),
                    int_field("l_suppkey"),
                    int_field("l_linenumber"),
                    int_field("l_quantity"),
                    float_field("l_extendedprice"),
                    float_field("l_discount"),
                    float_field("l_tax"),
                    str_field("l_returnflag"),
                    str_field("l_linestatus"),
                    str_field("l_shipdate"),
                    str_field("l_commitdate"),
                    str_field("l_receiptdate"),
                    str_field("l_shipinstruct"),
                    str_field("l_shipmode"),
                    str_field("l_comment"),
                ],
            )
            .expect("static")
            .into_shared();
            let mut b = RelationBuilder::with_capacity(schema, orders as usize * 4);
            for o in 1..=orders {
                let lines = rng.gen_range(1..=7u32);
                for line in 1..=lines {
                    let partkey = rng.gen_range(1..=parts);
                    let suppkey = supp_for_part(partkey, rng.gen_range(0..4), suppliers);
                    let qty = rng.gen_range(1..=50i64);
                    b.push_row(vec![
                        Value::Int(o),
                        Value::Int(partkey),
                        Value::Int(suppkey),
                        Value::Int(line as i64),
                        Value::Int(qty),
                        money(&mut rng, 900.0, 100_000.0),
                        Value::Float((rng.gen_range(0..=10) as f64) / 100.0),
                        Value::Float((rng.gen_range(0..=8) as f64) / 100.0),
                        Value::str(["R", "A", "N"][rng.gen_range(0..3usize)]),
                        Value::str(["O", "F"][rng.gen_range(0..2usize)]),
                        date(&mut rng),
                        date(&mut rng),
                        date(&mut rng),
                        Value::str(INSTRUCTIONS[rng.gen_range(0..INSTRUCTIONS.len())]),
                        Value::str(MODES[rng.gen_range(0..MODES.len())]),
                        Value::str(sentence(&mut rng, WORDS, 4)),
                    ])
                    .expect("static schema");
                }
            }
            b.finish()
        }
    }
}

/// DBGEN-style supplier-for-part formula: part `p` is supplied by four
/// suppliers spread around the supplier keyspace. The stride is forced
/// odd so the four values stay distinct even at tiny scale factors
/// (DBGEN's own formula assumes SF ≥ 1).
fn supp_for_part(partkey: i64, i: i64, suppliers: i64) -> i64 {
    let step = (suppliers / 4).max(1) | 1;
    (partkey + i * step) % suppliers + 1
}

/// Generate all eight tables into a catalog.
pub fn generate_catalog(spec: &TpchSpec) -> Catalog {
    let mut cat = Catalog::new();
    for table in TpchTable::ALL {
        cat.insert(generate_table(spec, table)).expect("unique table names");
    }
    cat
}

/// The FDs of the paper's Table 5, one per table:
/// `customer [c_name]→[c_address]`, `lineitem [l_partkey]→[l_suppkey]`,
/// `nation [n_name]→[n_regionkey]`, `orders [o_custkey]→[o_orderstatus]`,
/// `part [p_name]→[p_mfgr]`, `partsupp [ps_suppkey]→[ps_availqty]`,
/// `region [r_name]→[r_comment]`, `supplier [s_name]→[s_address]`.
pub fn table5_fds(cat: &Catalog) -> Vec<(TpchTable, Fd)> {
    let fd = |t: TpchTable, text: &str| -> (TpchTable, Fd) {
        let rel = cat.get(t.name()).expect("catalog holds all tables");
        (t, Fd::parse(rel.schema(), text).expect("static FD"))
    };
    vec![
        fd(TpchTable::Customer, "c_name -> c_address"),
        fd(TpchTable::Lineitem, "l_partkey -> l_suppkey"),
        fd(TpchTable::Nation, "n_name -> n_regionkey"),
        fd(TpchTable::Orders, "o_custkey -> o_orderstatus"),
        fd(TpchTable::Part, "p_name -> p_mfgr"),
        fd(TpchTable::PartSupp, "ps_suppkey -> ps_availqty"),
        fd(TpchTable::Region, "r_name -> r_comment"),
        fd(TpchTable::Supplier, "s_name -> s_address"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_core::is_satisfied;

    fn small() -> TpchSpec {
        TpchSpec { scale: 0.001, seed: 42 }
    }

    #[test]
    fn arities_match_table4() {
        let spec = small();
        for t in TpchTable::ALL {
            let rel = generate_table(&spec, t);
            assert_eq!(rel.arity(), t.arity(), "{}", t.name());
        }
    }

    #[test]
    fn cardinalities_scale() {
        let spec = TpchSpec { scale: 0.01, seed: 1 };
        assert_eq!(spec.cardinality(TpchTable::Customer), 1500);
        assert_eq!(spec.cardinality(TpchTable::Region), 5);
        assert_eq!(spec.cardinality(TpchTable::Nation), 25);
        assert_eq!(spec.cardinality(TpchTable::Supplier), 100);
        let rel = generate_table(&spec, TpchTable::Customer);
        assert_eq!(rel.row_count(), 1500);
    }

    #[test]
    fn sf01_matches_paper_100mb_overview() {
        // Table 4's 100 MB column: customer 15 000, part 20 000,
        // supplier 1 000, orders ~150 000.
        let spec = TpchSpec { scale: 0.1, seed: 1 };
        assert_eq!(spec.cardinality(TpchTable::Customer), 15_000);
        assert_eq!(spec.cardinality(TpchTable::Part), 20_000);
        assert_eq!(spec.cardinality(TpchTable::Supplier), 1_000);
        assert_eq!(spec.cardinality(TpchTable::Orders), 150_000);
    }

    #[test]
    fn lineitem_fd_violated_others_exact() {
        let spec = small();
        let cat = generate_catalog(&spec);
        for (table, fd) in table5_fds(&cat) {
            let rel = cat.get(table.name()).unwrap();
            let sat = is_satisfied(rel, &fd);
            match table {
                TpchTable::Lineitem | TpchTable::Orders | TpchTable::PartSupp => {
                    assert!(!sat, "{} FD must be violated", table.name())
                }
                _ => assert!(sat, "{} FD must be exact", table.name()),
            }
        }
    }

    #[test]
    fn partsupp_four_suppliers_per_part() {
        let spec = small();
        let rel = generate_table(&spec, TpchTable::PartSupp);
        assert_eq!(rel.row_count(), spec.scaled(200_000) * 4);
        // Each part key appears exactly 4 times with distinct suppliers.
        use std::collections::HashMap;
        let mut seen: HashMap<i64, std::collections::HashSet<i64>> = HashMap::new();
        for i in 0..rel.row_count() {
            let row = rel.row(i);
            let (p, s) = (row[0].as_int().unwrap(), row[1].as_int().unwrap());
            seen.entry(p).or_default().insert(s);
        }
        for (p, supps) in seen {
            assert!(supps.len() >= 2, "part {p} has multiple suppliers: {supps:?}");
        }
    }

    #[test]
    fn part_names_injective() {
        let spec = TpchSpec { scale: 0.005, seed: 9 };
        let rel = generate_table(&spec, TpchTable::Part);
        let mut names = std::collections::HashSet::new();
        for i in 0..rel.row_count() {
            assert!(names.insert(rel.row(i)[1].to_string()), "duplicate p_name at row {i}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_table(&small(), TpchTable::Orders);
        let b = generate_table(&small(), TpchTable::Orders);
        assert_eq!(a.row(0), b.row(0));
        assert_eq!(a.row(a.row_count() - 1), b.row(b.row_count() - 1));
    }

    #[test]
    fn catalog_holds_all_tables() {
        let cat = generate_catalog(&small());
        assert_eq!(cat.len(), 8);
        for t in TpchTable::ALL {
            assert!(cat.contains(t.name()));
        }
    }

    #[test]
    fn supp_for_part_in_range() {
        for p in 1..50 {
            for i in 0..4 {
                let s = supp_for_part(p, i, 10);
                assert!((1..=10).contains(&s), "part {p} i {i} -> {s}");
            }
        }
    }
}
