//! # evofd-datagen
//!
//! Workload generators for the `evofd` reproduction:
//!
//! * [`realworld`] — the paper's Figure 1 `Places` relation (embedded
//!   verbatim, reconstructed from the paper's reported measures) and
//!   simulators for the Table 6 real-life datasets (Country, Rental,
//!   Image, PageLinks, Veterans);
//! * [`tpch`] — a DBGEN-style TPC-H generator (Table 4 / Table 5 /
//!   Figure 3 workloads);
//! * [`synthetic`] — parameterised relations with planted, partially
//!   violated FDs for sweeps and property tests;
//! * [`rng`] — deterministic seeding helpers.
//!
//! Everything is deterministic in its seed: rerunning an experiment
//! regenerates byte-identical data.

#![warn(missing_docs)]

pub mod realworld;
pub mod rng;
pub mod synthetic;
pub mod tpch;

pub use realworld::{
    country, country_fd, image, image_fd, image_sized, pagelinks, pagelinks_fd, pagelinks_sized,
    places, places_f4, places_fds, rental, rental_fd, veterans, veterans_fd,
    veterans_with_twin_start,
};
pub use synthetic::{ColumnSpec, SyntheticSpec};
pub use tpch::{generate_catalog, generate_table, table5_fds, TpchSpec, TpchTable};
