//! Parameterised synthetic relations with planted FDs.
//!
//! Drives the scaling studies (attribute/tuple sweeps), the CB-vs-EB
//! comparison and the property tests. Each attribute draws from a
//! configurable domain; an optional *planted FD* makes `Y` a function of
//! some attributes `X` except for a controlled fraction of violating
//! rows — so both the violation degree (1 − confidence) and the repair
//! structure are under test control.

use evofd_storage::{DataType, Field, Relation, RelationBuilder, Schema, Value};
use rand::Rng;

use crate::rng::{child_seed, rng_from_seed, zipf_index};

/// How one synthetic attribute generates values.
#[derive(Debug, Clone)]
pub enum ColumnSpec {
    /// Uniform categorical values `v0..v{cardinality-1}`.
    Categorical {
        /// Number of distinct values in the domain.
        cardinality: usize,
    },
    /// Skewed categorical values (approximately Zipf).
    Skewed {
        /// Number of distinct values in the domain.
        cardinality: usize,
        /// Skew (0 = uniform, larger = more skewed).
        skew: f64,
    },
    /// A unique integer per row (a surrogate key / UNIQUE column).
    Unique,
    /// A value functionally determined by other columns:
    /// `hash(sources) mod cardinality`, except that a `violation_rate`
    /// fraction of rows draws randomly instead — creating FD violations.
    Derived {
        /// Indices (into the spec's column list) of the source attributes.
        sources: Vec<usize>,
        /// Domain size of the derived value.
        cardinality: usize,
        /// Fraction of rows that break the functional relationship.
        violation_rate: f64,
    },
}

/// Specification of a synthetic relation.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Relation name.
    pub name: String,
    /// Number of tuples.
    pub n_rows: usize,
    /// Per-attribute generators; attribute `i` is named `a{i}`.
    pub columns: Vec<ColumnSpec>,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A quick uniform spec: `n_attrs` categorical attributes with the
    /// given domain cardinality.
    pub fn uniform(
        name: &str,
        n_attrs: usize,
        n_rows: usize,
        cardinality: usize,
        seed: u64,
    ) -> SyntheticSpec {
        SyntheticSpec {
            name: name.to_string(),
            n_rows,
            columns: vec![ColumnSpec::Categorical { cardinality }; n_attrs],
            seed,
        }
    }

    /// A spec with a planted, partially-violated FD `a0 … a{k-1} → aY`
    /// (the derived column is the last one) plus `extra` independent
    /// categorical attributes.
    pub fn planted_fd(
        name: &str,
        lhs_attrs: usize,
        extra: usize,
        n_rows: usize,
        cardinality: usize,
        violation_rate: f64,
        seed: u64,
    ) -> SyntheticSpec {
        let mut columns = vec![ColumnSpec::Categorical { cardinality }; lhs_attrs + extra];
        columns.push(ColumnSpec::Derived {
            sources: (0..lhs_attrs).collect(),
            cardinality,
            violation_rate,
        });
        SyntheticSpec { name: name.to_string(), n_rows, columns, seed }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Generate the relation. Deterministic in the spec.
    pub fn generate(&self) -> Relation {
        let fields: Vec<Field> = (0..self.arity())
            .map(|i| {
                let dtype = match &self.columns[i] {
                    ColumnSpec::Unique => DataType::Int,
                    _ => DataType::Str,
                };
                Field::not_null(format!("a{i}"), dtype)
            })
            .collect();
        let schema = Schema::new(self.name.clone(), fields)
            .expect("generated names are unique")
            .into_shared();
        let mut builder = RelationBuilder::with_capacity(schema, self.n_rows);

        let mut rngs: Vec<_> = (0..self.arity())
            .map(|i| rng_from_seed(child_seed(self.seed, &format!("col{i}"))))
            .collect();

        // Row-major generation; derived columns read this row's codes.
        let mut row_codes: Vec<u64> = vec![0; self.arity()];
        for row in 0..self.n_rows {
            let mut values: Vec<Value> = Vec::with_capacity(self.arity());
            for (i, col) in self.columns.iter().enumerate() {
                let (code, value) = match col {
                    ColumnSpec::Categorical { cardinality } => {
                        let c = rngs[i].gen_range(0..*cardinality.max(&1)) as u64;
                        (c, Value::str(format!("v{c}")))
                    }
                    ColumnSpec::Skewed { cardinality, skew } => {
                        let c = zipf_index(&mut rngs[i], (*cardinality).max(1), *skew) as u64;
                        (c, Value::str(format!("v{c}")))
                    }
                    ColumnSpec::Unique => (row as u64, Value::Int(row as i64)),
                    ColumnSpec::Derived { sources, cardinality, violation_rate } => {
                        let violate = rngs[i].gen_range(0.0..1.0) < *violation_rate;
                        let c = if violate {
                            rngs[i].gen_range(0..*cardinality.max(&1)) as u64
                        } else {
                            let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
                            for &s in sources {
                                debug_assert!(s < i, "derived column reads earlier columns");
                                h ^= row_codes[s].wrapping_add(0x2545_f491_4f6c_dd1d);
                                h = h.rotate_left(23).wrapping_mul(0x100_0000_01b3);
                            }
                            h % (*cardinality).max(1) as u64
                        };
                        (c, Value::str(format!("d{c}")))
                    }
                };
                row_codes[i] = code;
                values.push(value);
            }
            builder.push_row(values).expect("schema matches generated values");
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_core::{confidence, Fd};

    #[test]
    fn deterministic_generation() {
        let spec = SyntheticSpec::uniform("t", 4, 100, 10, 7);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.row_count(), 100);
        for i in 0..a.row_count() {
            assert_eq!(a.row(i), b.row(i));
        }
    }

    #[test]
    fn planted_fd_exact_without_violations() {
        let spec = SyntheticSpec::planted_fd("t", 2, 1, 500, 8, 0.0, 11);
        let rel = spec.generate();
        let fd = Fd::parse(rel.schema(), "a0, a1 -> a3").unwrap();
        assert!(fd.satisfied_naive(&rel), "no violations planted");
    }

    #[test]
    fn planted_fd_violation_rate_controls_confidence() {
        let clean = SyntheticSpec::planted_fd("t", 1, 0, 2000, 10, 0.0, 3).generate();
        let dirty = SyntheticSpec::planted_fd("t", 1, 0, 2000, 10, 0.3, 3).generate();
        let fd_c = Fd::parse(clean.schema(), "a0 -> a1").unwrap();
        let fd_d = Fd::parse(dirty.schema(), "a0 -> a1").unwrap();
        let c_clean = confidence(&clean, &fd_c);
        let c_dirty = confidence(&dirty, &fd_d);
        assert_eq!(c_clean, 1.0);
        assert!(c_dirty < 1.0, "violations lower confidence: {c_dirty}");
    }

    #[test]
    fn unique_column_is_unique() {
        let spec = SyntheticSpec {
            name: "t".into(),
            n_rows: 50,
            columns: vec![ColumnSpec::Unique, ColumnSpec::Categorical { cardinality: 3 }],
            seed: 1,
        };
        let rel = spec.generate();
        assert!(rel.column(evofd_storage::AttrId(0)).is_unique());
        assert!(!rel.column(evofd_storage::AttrId(1)).is_unique());
    }

    #[test]
    fn skewed_column_has_fewer_heavy_values() {
        let spec = SyntheticSpec {
            name: "t".into(),
            n_rows: 2000,
            columns: vec![
                ColumnSpec::Skewed { cardinality: 100, skew: 2.0 },
                ColumnSpec::Categorical { cardinality: 100 },
            ],
            seed: 9,
        };
        let rel = spec.generate();
        // The skewed column's top value should dominate.
        let col = rel.column(evofd_storage::AttrId(0));
        let mut counts = std::collections::HashMap::new();
        for i in 0..rel.row_count() {
            *counts.entry(col.code_at(i)).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 2000 / 20, "heavy hitter exists: {max}");
    }

    #[test]
    fn arity_and_names() {
        let spec = SyntheticSpec::uniform("t", 3, 5, 2, 1);
        let rel = spec.generate();
        assert_eq!(rel.arity(), 3);
        assert_eq!(rel.schema().attr_name(evofd_storage::AttrId(2)), "a2");
        assert!(rel.non_null_attrs().len() == 3, "synthetic columns are NOT NULL");
    }
}
