//! The paper's running example and simulators for its real-life datasets.
//!
//! ## `Places` (Figure 1) — exact
//!
//! The 11-tuple `Places` relation is embedded verbatim. The published PDF's
//! figure is column-scrambled when text-extracted, so the instance below was
//! *reconstructed from the paper's own numbers* and satisfies every measure
//! the paper reports: `c/g` of F1–F4, the violating-tuple sets, and all
//! rows of Tables 1 and 2 (Table 3's confidences too; see EXPERIMENTS.md
//! for the goodness column discrepancy in the printed Table 3).
//!
//! ## Real datasets (Table 6) — simulated
//!
//! `Country`, `Rental`, `Image`, `PageLinks` and `Veterans` came from MySQL
//! sample databases, Wikimedia dumps and the KDD-Cup-98 archive — not
//! redistributable here. Each simulator reproduces the properties §6.2
//! uses to explain the measurements: arity, cardinality, NULL-free
//! attribute counts, and the *repair length* of the studied FD
//! (Places: 2 added attributes; Country: 1; Image: 2; PageLinks: single
//! candidate attribute; Veterans: sweepable, with the 70k×10 slice
//! unrepairable to reproduce Table 8's anomaly).

use evofd_core::Fd;
use evofd_storage::{DataType, Field, Relation, RelationBuilder, Schema, Value};
use rand::Rng;

use crate::rng::{child_seed, rng_from_seed};

/// The `Places` relation of Figure 1 (11 tuples, 9 attributes).
pub fn places() -> Relation {
    let schema = Schema::new(
        "Places",
        ["District", "Region", "Municipal", "AreaCode", "PhNo", "Street", "Zip", "City", "State"]
            .iter()
            .map(|n| Field::not_null(*n, DataType::Str))
            .collect(),
    )
    .expect("static schema")
    .into_shared();

    // Reconstructed Figure 1. Row order is t1..t11.
    const ROWS: [[&str; 9]; 11] = [
        // District    Region        Municipal    Area  PhNo        Street      Zip      City       State
        ["Brookside", "Granville", "Glendale", "613", "974-2345", "Boxwood", "10211", "NY", "NY"],
        ["Brookside", "Granville", "Glendale", "613", "974-2345", "Boxwood", "10211", "NY", "NY"],
        ["Brookside", "Granville", "Glendale", "613", "299-1010", "Westlane", "10211", "NY", "MA"],
        [
            "Brookside",
            "Granville",
            "Guildwood",
            "515",
            "220-1200",
            "Squire",
            "02215",
            "Boston",
            "MA",
        ],
        [
            "Brookside",
            "Granville",
            "Guildwood",
            "515",
            "220-1200",
            "Squire",
            "02215",
            "Boston",
            "MA",
        ],
        [
            "Alexandria",
            "Moore Park",
            "NapaHill",
            "415",
            "220-1200",
            "Napa",
            "60415",
            "Chicago",
            "IL",
        ],
        [
            "Alexandria",
            "Moore Park",
            "NapaHill",
            "415",
            "930-2525",
            "Main",
            "60415",
            "Chicago",
            "IL",
        ],
        [
            "Alexandria",
            "Moore Park",
            "NapaHill",
            "415",
            "555-1234",
            "Tower",
            "60415",
            "Chester",
            "IL",
        ],
        [
            "Alexandria",
            "Moore Park",
            "QueenAnne",
            "517",
            "888-5152",
            "Main",
            "60415",
            "Chicago",
            "IL",
        ],
        [
            "Alexandria",
            "Moore Park",
            "QueenAnne",
            "517",
            "888-5152",
            "Main",
            "60601",
            "Chicago",
            "IL",
        ],
        [
            "Alexandria",
            "Moore Park",
            "QueenAnne",
            "517",
            "888-5152",
            "Bay",
            "60601",
            "Chicago",
            "IL",
        ],
    ];
    Relation::from_rows(schema, ROWS.iter().map(|r| r.iter().map(Value::str).collect()))
        .expect("static data matches schema")
}

/// The example FDs of Section 1 over [`places`]:
/// `F1: [District, Region] → [AreaCode]`, `F2: [Zip] → [City, State]`,
/// `F3: [PhNo, Zip] → [Street]`.
pub fn places_fds(rel: &Relation) -> Vec<Fd> {
    vec![
        Fd::parse(rel.schema(), "District, Region -> AreaCode").expect("static"),
        Fd::parse(rel.schema(), "Zip -> City, State").expect("static"),
        Fd::parse(rel.schema(), "PhNo, Zip -> Street").expect("static"),
    ]
}

/// `F4: [District] → [PhNo]` — the §4.3 multi-attribute-repair example.
pub fn places_f4(rel: &Relation) -> Fd {
    Fd::parse(rel.schema(), "District -> PhNo").expect("static")
}

/// Simulated MySQL-world `Country` (15 attributes, 239 tuples).
///
/// `Region → Continent` is exact by construction, so the studied FD
/// `GovernmentForm → Continent` (violated) has a 1-attribute repair —
/// matching §6.2's observation that Country needed a shorter repair than
/// Places despite the similar size.
pub fn country(seed: u64) -> Relation {
    const CONTINENTS: [&str; 7] =
        ["Asia", "Europe", "North America", "Africa", "Oceania", "Antarctica", "South America"];
    const FORMS: [&str; 12] = [
        "Republic",
        "Monarchy",
        "Federal Republic",
        "Constitutional Monarchy",
        "Territory",
        "Federation",
        "Commonwealth",
        "Emirate",
        "Dependent Territory",
        "Socialist Republic",
        "Parliamentary Democracy",
        "Occupied",
    ];
    let schema = Schema::new(
        "Country",
        vec![
            Field::not_null("Code", DataType::Str),
            Field::not_null("Name", DataType::Str),
            Field::not_null("Continent", DataType::Str),
            Field::not_null("Region", DataType::Str),
            Field::not_null("SurfaceArea", DataType::Float),
            Field::new("IndepYear", DataType::Int),
            Field::not_null("Population", DataType::Int),
            Field::new("LifeExpectancy", DataType::Float),
            Field::new("GNP", DataType::Float),
            Field::new("GNPOld", DataType::Float),
            Field::not_null("LocalName", DataType::Str),
            Field::not_null("GovernmentForm", DataType::Str),
            Field::new("HeadOfState", DataType::Str),
            Field::new("Capital", DataType::Int),
            Field::not_null("Code2", DataType::Str),
        ],
    )
    .expect("static schema")
    .into_shared();

    let mut rng = rng_from_seed(child_seed(seed, "country"));
    // 25 regions, each fixed inside one continent → Region → Continent exact.
    let regions: Vec<(String, &str)> =
        (0..25).map(|i| (format!("Region{i:02}"), CONTINENTS[i % CONTINENTS.len()])).collect();

    let mut b = RelationBuilder::with_capacity(schema, 239);
    for i in 0..239 {
        let (region, continent) = &regions[rng.gen_range(0..regions.len())];
        let code = format!(
            "{}{}{}",
            (b'A' + (i / 26 / 26) as u8 % 26) as char,
            (b'A' + (i / 26) as u8 % 26) as char,
            (b'A' + (i % 26) as u8) as char
        );
        let name = format!("Country {i:03}");
        let indep: Value =
            if rng.gen_bool(0.85) { Value::Int(rng.gen_range(900..2000)) } else { Value::Null };
        let life: Value = if rng.gen_bool(0.9) {
            Value::Float((rng.gen_range(40.0..85.0f64) * 10.0).round() / 10.0)
        } else {
            Value::Null
        };
        let gnp: Value = if rng.gen_bool(0.95) {
            Value::Float((rng.gen_range(100.0..1_000_000.0f64)).round())
        } else {
            Value::Null
        };
        let gnp_old: Value = if rng.gen_bool(0.7) { gnp.clone() } else { Value::Null };
        let head: Value = if rng.gen_bool(0.9) {
            Value::str(format!("Head {}", rng.gen_range(0..120)))
        } else {
            Value::Null
        };
        let capital: Value =
            if rng.gen_bool(0.95) { Value::Int(rng.gen_range(1..5000)) } else { Value::Null };
        b.push_row(vec![
            Value::str(&code),
            Value::str(&name),
            Value::str(*continent),
            Value::str(region),
            Value::Float((rng.gen_range(10.0..2_000_000.0f64)).round()),
            indep,
            Value::Int(rng.gen_range(10_000..1_400_000_000i64)),
            life,
            gnp,
            gnp_old,
            Value::str(format!("Local {i:03}")),
            Value::str(*FORMS.get(rng.gen_range(0..FORMS.len())).expect("non-empty")),
            head,
            capital,
            Value::str(&code[..2]),
        ])
        .expect("row matches schema");
    }
    b.finish()
}

/// The FD studied on [`country`]: `GovernmentForm → Continent` (violated;
/// 1-attribute repair by `Region`).
pub fn country_fd(rel: &Relation) -> Fd {
    Fd::parse(rel.schema(), "GovernmentForm -> Continent").expect("static")
}

/// Simulated sakila `Rental` (7 attributes, 16044 tuples).
///
/// `staff_id → store_id` is exact by construction; the studied FD
/// `customer_id → store_id` is violated with a 1-attribute repair.
pub fn rental(seed: u64) -> Relation {
    let schema = Schema::new(
        "Rental",
        vec![
            Field::not_null("rental_id", DataType::Int),
            Field::not_null("rental_date", DataType::Str),
            Field::not_null("inventory_id", DataType::Int),
            Field::not_null("customer_id", DataType::Int),
            Field::new("return_date", DataType::Str),
            Field::not_null("staff_id", DataType::Int),
            Field::not_null("store_id", DataType::Int),
        ],
    )
    .expect("static schema")
    .into_shared();
    let mut rng = rng_from_seed(child_seed(seed, "rental"));
    let mut b = RelationBuilder::with_capacity(schema, 16_044);
    for i in 0..16_044i64 {
        let staff = rng.gen_range(1..=8i64);
        let store = (staff - 1) / 4 + 1; // staff 1-4 → store 1, staff 5-8 → store 2
        let day = rng.gen_range(1..=28u32);
        let month = rng.gen_range(1..=12u32);
        let returned = rng.gen_bool(0.9);
        b.push_row(vec![
            Value::Int(i + 1),
            Value::str(format!("2005-{month:02}-{day:02}")),
            Value::Int(rng.gen_range(1..=4581i64)),
            Value::Int(rng.gen_range(1..=599i64)),
            if returned {
                Value::str(format!("2005-{:02}-{:02}", month, rng.gen_range(1..=28u32)))
            } else {
                Value::Null
            },
            Value::Int(staff),
            Value::Int(store),
        ])
        .expect("row matches schema");
    }
    b.finish()
}

/// The FD studied on [`rental`]: `customer_id → store_id` (violated;
/// repaired by adding `staff_id`).
pub fn rental_fd(rel: &Relation) -> Fd {
    Fd::parse(rel.schema(), "customer_id -> store_id").expect("static")
}

/// Simulated Wikimedia `Image` (14 attributes, 124768 tuples).
///
/// The studied FD `img_user_text → img_major_mime` is violated and needs a
/// **2-attribute** repair: `img_media_type` and `img_minor_mime` jointly
/// determine the major MIME type, but no single NULL-free attribute short
/// of the near-unique ones does — and the near-unique attributes
/// (`img_name`, `img_sha1`, `img_timestamp`) contain NULLs so they are
/// excluded from the pool, reproducing §6.2's "for the Image table, the
/// algorithm had to add 2 attributes".
pub fn image(seed: u64) -> Relation {
    image_sized(seed, 124_768)
}

/// [`image`] with a custom row count (for faster test/bench runs).
pub fn image_sized(seed: u64, n_rows: usize) -> Relation {
    const MEDIA: [&str; 4] = ["BITMAP", "DRAWING", "AUDIO", "VIDEO"];
    const MINOR: [&str; 6] = ["jpeg", "png", "svg+xml", "ogg", "webm", "tiff"];
    let schema = Schema::new(
        "Image",
        vec![
            Field::new("img_name", DataType::Str),
            Field::not_null("img_size", DataType::Int),
            Field::not_null("img_width", DataType::Int),
            Field::not_null("img_height", DataType::Int),
            Field::not_null("img_bits", DataType::Int),
            Field::not_null("img_media_type", DataType::Str),
            Field::not_null("img_major_mime", DataType::Str),
            Field::not_null("img_minor_mime", DataType::Str),
            Field::not_null("img_user", DataType::Int),
            Field::not_null("img_user_text", DataType::Str),
            Field::new("img_timestamp", DataType::Str),
            Field::new("img_sha1", DataType::Str),
            Field::new("img_metadata", DataType::Str),
            Field::not_null("img_description", DataType::Str),
        ],
    )
    .expect("static schema")
    .into_shared();
    let mut rng = rng_from_seed(child_seed(seed, "image"));
    let mut b = RelationBuilder::with_capacity(schema, n_rows);
    // `(media, minor) → major` is the only functional route to the
    // consequent. The first six rows plant *blocking pairs* so that no
    // single NULL-free attribute can repair the studied FD regardless of
    // how the random tail collides:
    //   rows 0,1 — identical on every NULL-free column except
    //              media/minor/major ⇒ blocks every candidate ∉ {media, minor};
    //   rows 2,3 — same user_text and same media (BITMAP), majors differ
    //              ⇒ blocks `img_media_type` alone;
    //   rows 4,5 — same user_text and same minor (jpeg), majors differ
    //              ⇒ blocks `img_minor_mime` alone.
    let planted: [(&str, &str); 6] = [
        ("BITMAP", "jpeg"), // major: image
        ("AUDIO", "ogg"),   // major: audio
        ("BITMAP", "jpeg"), // major: image
        ("BITMAP", "ogg"),  // major: audio
        ("BITMAP", "jpeg"), // major: image
        ("AUDIO", "jpeg"),  // major: audio
    ];
    for i in 0..n_rows {
        let (media, minor) = if i < planted.len() {
            planted[i]
        } else {
            (MEDIA[rng.gen_range(0..MEDIA.len())], MINOR[rng.gen_range(0..MINOR.len())])
        };
        let major = match (media, minor) {
            ("AUDIO", _) | (_, "ogg") => "audio",
            ("VIDEO", _) | (_, "webm") => "video",
            ("DRAWING", _) | (_, "svg+xml") => "application",
            _ => "image",
        };
        // Planted rows 0/1 share everything NULL-free; 2..6 share the user.
        let user = if i < planted.len() { 1 } else { rng.gen_range(1..=500i64) };
        let (size, width, height, bits, desc) = if i < 2 {
            (4096, 640, 480, 8, 0)
        } else {
            (
                rng.gen_range(1_000..20_000i64),
                rng.gen_range(16..2000i64),
                rng.gen_range(16..2000i64),
                [1, 8, 16, 24][rng.gen_range(0..4usize)],
                rng.gen_range(0..5000),
            )
        };
        b.push_row(vec![
            // Deterministic NULLs so the NULL-bearing columns are excluded
            // from the candidate pool at any generated size.
            if i % 500 == 499 { Value::Null } else { Value::str(format!("File_{i}.dat")) },
            Value::Int(size),
            Value::Int(width),
            Value::Int(height),
            Value::Int(bits),
            Value::str(media),
            Value::str(major),
            Value::str(minor),
            Value::Int(user),
            Value::str(format!("User{user}")),
            if i % 97 == 3 {
                Value::Null
            } else {
                Value::str(format!(
                    "2015{:02}{:02}{:06}",
                    rng.gen_range(1..=12u32),
                    rng.gen_range(1..=28u32),
                    i
                ))
            },
            if i % 53 == 5 { Value::Null } else { Value::str(format!("sha{i:032x}")) },
            if i % 5 == 2 {
                Value::Null
            } else {
                Value::str(format!("meta{}", rng.gen_range(0..1000)))
            },
            Value::str(format!("desc {desc}")),
        ])
        .expect("row matches schema");
    }
    b.finish()
}

/// The FD studied on [`image`]: `img_user_text → img_major_mime`
/// (violated; 2-attribute repair).
pub fn image_fd(rel: &Relation) -> Fd {
    Fd::parse(rel.schema(), "img_user_text -> img_major_mime").expect("static")
}

/// Simulated Wikimedia `PageLinks` (3 attributes, 842159 tuples).
///
/// The FD `pl_from → pl_namespace` is violated and the schema leaves a
/// *single* candidate attribute (`pl_title`, which determines the
/// namespace by construction) — reproducing §6.2's explanation of why the
/// biggest table repaired fastest.
pub fn pagelinks(seed: u64) -> Relation {
    pagelinks_sized(seed, 842_159)
}

/// [`pagelinks`] with a custom row count.
pub fn pagelinks_sized(seed: u64, n_rows: usize) -> Relation {
    let schema = Schema::new(
        "PageLinks",
        vec![
            Field::not_null("pl_from", DataType::Int),
            Field::not_null("pl_namespace", DataType::Int),
            Field::not_null("pl_title", DataType::Str),
        ],
    )
    .expect("static schema")
    .into_shared();
    let mut rng = rng_from_seed(child_seed(seed, "pagelinks"));
    let n_titles = (n_rows / 8).max(16);
    let mut b = RelationBuilder::with_capacity(schema, n_rows);
    for _ in 0..n_rows {
        let title_id = rng.gen_range(0..n_titles);
        let namespace = (title_id % 6) as i64; // title → namespace functional
        b.push_row(vec![
            Value::Int(rng.gen_range(1..=(n_rows / 4).max(4) as i64)),
            Value::Int(namespace),
            Value::str(format!("Title_{title_id}")),
        ])
        .expect("row matches schema");
    }
    b.finish()
}

/// The FD studied on [`pagelinks`]: `pl_from → pl_namespace`.
pub fn pagelinks_fd(rel: &Relation) -> Fd {
    Fd::parse(rel.schema(), "pl_from -> pl_namespace").expect("static")
}

/// Simulated KDD-Cup-98 `Veterans` relation.
///
/// The real table has 481 attributes (323 NULL-free) and 95412 tuples.
/// The generator is sized on demand: `veterans(seed, n_attrs, n_rows)`
/// yields `n_attrs` NULL-free attributes (every third generated attribute
/// also gets a NULL-bearing shadow column when `with_nulls` is set, to
/// mirror the 481-vs-323 split).
///
/// Structure, chosen to reproduce the §6.2.1 sweeps:
///
/// * `a0` (the FD antecedent) is a ~200-value categorical; `a1` (the
///   consequent) is derived from `(a6, a7)` — so repairs exist but no
///   single early attribute suffices;
/// * attributes have mixed domain sizes (5–1000), so exactness typically
///   arrives at 2–4 added attributes and the find-all frontier grows
///   steeply with the attribute count (Table 7's exponential trend);
/// * rows `60_000..` duplicate the first ten attributes of rows
///   `0..` with a *different* consequent — so the 10-attribute slice
///   becomes unrepairable beyond 60k tuples (Table 8's 70k×10 anomaly)
///   while wider slices still distinguish the twins via `a10+`.
pub fn veterans(seed: u64, n_attrs: usize, n_rows: usize) -> Relation {
    veterans_with_twin_start(seed, n_attrs, n_rows, 60_000)
}

/// [`veterans`] with an explicit twin threshold: rows `twin_start..`
/// duplicate `a0..a9` of rows `0..` with a conflicting consequent. Lower
/// values let tests exercise the unrepairable-slice behaviour cheaply.
pub fn veterans_with_twin_start(
    seed: u64,
    n_attrs: usize,
    n_rows: usize,
    twin_start: usize,
) -> Relation {
    assert!(n_attrs >= 8, "veterans needs at least 8 attributes");
    let fields: Vec<Field> =
        (0..n_attrs).map(|i| Field::not_null(format!("a{i}"), DataType::Str)).collect();
    let schema = Schema::new("Veterans", fields).expect("unique names").into_shared();
    let mut rng = rng_from_seed(child_seed(seed, "veterans"));

    // Mixed domain sizes: deterministic per attribute index.
    let domain = |i: usize| -> u64 {
        match i {
            0 => 200,
            6 | 7 => 40,
            _ => [5, 9, 17, 33, 65, 129, 257, 513, 1000][i % 9] as u64,
        }
    };

    let mut b = RelationBuilder::with_capacity(schema, n_rows);
    let mut base_rows: Vec<Vec<u64>> = Vec::new();
    let base_pool = twin_start.clamp(1, 10_000);
    for row in 0..n_rows {
        let twin_of = if row >= twin_start { Some((row - twin_start) % base_pool) } else { None };
        let mut codes: Vec<u64> = Vec::with_capacity(n_attrs);
        // Index-based on purpose: `i` selects the *column* inside the
        // remembered twin row, which an iterator over base_rows cannot.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n_attrs {
            let code = match twin_of {
                // Twin rows copy attributes a0..a9 (FD attrs + first-ten
                // candidates) and re-roll everything else.
                Some(t) if i < 10 && i != 1 => base_rows[t][i],
                _ if i == 1 => {
                    // consequent: derived from (a6, a7), broken for twins
                    // and for a 2% violation rate.
                    if twin_of.is_some() {
                        u64::MAX // sentinel, rewritten below
                    } else {
                        0 // placeholder, computed after a6/a7 exist
                    }
                }
                _ => rng.gen_range(0..domain(i)),
            };
            codes.push(code);
        }
        // Compute the derived consequent now that a6/a7 are fixed.
        let y_domain = 60u64;
        let derived = (codes[6].rotate_left(13) ^ codes[7].wrapping_mul(0x9e37)) % y_domain;
        codes[1] = match twin_of {
            Some(_) => (derived + 1 + rng.gen_range(0..y_domain - 1)) % y_domain,
            None if rng.gen_bool(0.02) => rng.gen_range(0..y_domain),
            None => derived,
        };
        if row < base_pool {
            base_rows.push(codes.clone());
        }
        b.push_row(
            codes.iter().enumerate().map(|(i, c)| Value::str(format!("x{i}_{c}"))).collect(),
        )
        .expect("row matches schema");
    }
    b.finish()
}

/// The FD studied on [`veterans`]: `a0 → a1` (violated).
pub fn veterans_fd(rel: &Relation) -> Fd {
    Fd::parse(rel.schema(), "a0 -> a1").expect("static")
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_core::{is_satisfied, validate, Measures};
    use evofd_storage::DistinctCache;

    #[test]
    fn places_matches_paper_measures() {
        let r = places();
        assert_eq!(r.row_count(), 11);
        assert_eq!(r.arity(), 9);
        let fds = places_fds(&r);
        let mut cache = DistinctCache::new();
        let m1 = Measures::compute(&r, &fds[0], &mut cache);
        assert!((m1.confidence - 0.5).abs() < 1e-12, "cF1 = 0.5, got {}", m1.confidence);
        assert_eq!(m1.goodness, -2, "gF1 = -2");
        let m2 = Measures::compute(&r, &fds[1], &mut cache);
        assert!((m2.confidence - 2.0 / 3.0).abs() < 1e-3, "cF2 = 0.667, got {}", m2.confidence);
        assert_eq!(m2.goodness, -1, "gF2 = -1");
        let m3 = Measures::compute(&r, &fds[2], &mut cache);
        assert!((m3.confidence - 8.0 / 9.0).abs() < 1e-3, "cF3 = 0.889, got {}", m3.confidence);
        assert_eq!(m3.goodness, 1, "gF3 = 1");
    }

    #[test]
    fn places_f4_measures() {
        let r = places();
        let f4 = places_f4(&r);
        let mut cache = DistinctCache::new();
        let m = Measures::compute(&r, &f4, &mut cache);
        assert!((m.confidence - 2.0 / 7.0).abs() < 1e-12, "cF4 = 0.29");
        assert_eq!(m.goodness, -4, "gF4 = -4");
    }

    #[test]
    fn country_fd_violated_with_one_attr_repair() {
        let r = country(1);
        assert_eq!(r.arity(), 15);
        assert_eq!(r.row_count(), 239);
        let fd = country_fd(&r);
        assert!(!is_satisfied(&r, &fd));
        // Region → Continent exact ⇒ adding Region repairs.
        let region = r.schema().resolve("Region").unwrap();
        assert!(is_satisfied(&r, &fd.with_lhs_attr(region)));
    }

    #[test]
    fn rental_structure() {
        let r = rental(1);
        assert_eq!(r.arity(), 7);
        assert_eq!(r.row_count(), 16_044);
        let fd = rental_fd(&r);
        assert!(!is_satisfied(&r, &fd));
        let staff = r.schema().resolve("staff_id").unwrap();
        assert!(is_satisfied(&r, &fd.with_lhs_attr(staff)), "staff determines store");
        // staff_id → store_id itself is exact.
        assert!(is_satisfied(&r, &Fd::parse(r.schema(), "staff_id -> store_id").unwrap()));
    }

    #[test]
    fn image_needs_two_attributes() {
        let r = image_sized(1, 4000);
        assert_eq!(r.arity(), 14);
        let fd = image_fd(&r);
        assert!(!is_satisfied(&r, &fd));
        // No single NULL-free candidate repairs it...
        let pool = evofd_core::candidate_pool(&r, &fd);
        for a in pool.iter() {
            assert!(
                !is_satisfied(&r, &fd.with_lhs_attr(a)),
                "attr {} alone must not repair",
                r.schema().attr_name(a)
            );
        }
        // ...but media_type + minor_mime does.
        let pair = r.schema().attr_set(&["img_media_type", "img_minor_mime"]).unwrap();
        assert!(is_satisfied(&r, &fd.with_lhs_attrs(&pair)));
    }

    #[test]
    fn pagelinks_single_candidate() {
        let r = pagelinks_sized(1, 5000);
        assert_eq!(r.arity(), 3);
        let fd = pagelinks_fd(&r);
        assert!(!is_satisfied(&r, &fd));
        let pool = evofd_core::candidate_pool(&r, &fd);
        assert_eq!(pool.len(), 1, "only pl_title remains");
        let title = r.schema().resolve("pl_title").unwrap();
        assert!(is_satisfied(&r, &fd.with_lhs_attr(title)));
    }

    #[test]
    fn veterans_slices_repairable_below_60k() {
        let r = veterans(1, 12, 3000);
        assert_eq!(r.arity(), 12);
        assert_eq!(r.row_count(), 3000);
        let fd = veterans_fd(&r);
        assert!(!is_satisfied(&r, &fd));
        // a6 + a7 determine a1 up to the 2% noise — not exact, but the
        // search space is rich; a full-width set must be exact for most
        // rows... check that the instance is *repairable*: the all-attrs
        // antecedent has fewer classes than with Y only when exact. Use
        // the engine on a small slice.
        let cfg = evofd_core::RepairConfig::find_first();
        let search = evofd_core::repair_fd(&r, &fd, &cfg).unwrap();
        assert!(search.best().is_some(), "small veterans slice is repairable");
    }

    #[test]
    fn veterans_twins_block_narrow_slices() {
        // Rows past the twin threshold duplicate a0..a9 of earlier rows
        // with a different a1 ⇒ no repair can exist in a 10-attr slice.
        let r = veterans_with_twin_start(1, 10, 2_200, 2_000);
        let fd = veterans_fd(&r);
        let all_attrs = evofd_storage::AttrSet::full(10).difference(fd.rhs());
        let widest = evofd_core::Fd::new(all_attrs, fd.rhs().clone()).unwrap();
        assert!(!is_satisfied(&r, &widest), "even the widest antecedent cannot separate the twins");
    }

    #[test]
    fn veterans_wide_slices_distinguish_twins() {
        let r = veterans_with_twin_start(1, 20, 2_200, 2_000);
        let fd = veterans_fd(&r);
        let all_attrs = evofd_storage::AttrSet::full(20).difference(fd.rhs());
        let widest = evofd_core::Fd::new(all_attrs, fd.rhs().clone()).unwrap();
        assert!(is_satisfied(&r, &widest), "a10+ separates the twins");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = country(9);
        let b = country(9);
        for i in [0usize, 100, 238] {
            assert_eq!(a.row(i), b.row(i));
        }
        assert_ne!(country(1).row(0), country(2).row(0), "seed matters");
    }

    #[test]
    fn table6_fds_all_report_violations() {
        // Every Table 6 dataset/FD pair must start violated (that is what
        // gets repaired/timed).
        let pl = pagelinks_sized(3, 2000);
        let im = image_sized(3, 2000);
        let co = country(3);
        let re = rental(3);
        for (rel, fd) in [
            (&pl, pagelinks_fd(&pl)),
            (&im, image_fd(&im)),
            (&co, country_fd(&co)),
            (&re, rental_fd(&re)),
        ] {
            let report = validate(rel, &[fd]);
            assert_eq!(report.violation_count(), 1, "{}", rel.name());
        }
    }
}
