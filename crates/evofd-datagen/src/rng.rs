//! Deterministic random-generation helpers shared by all generators.
//!
//! Everything is seeded: the same spec always produces byte-identical
//! relations, so experiments are reproducible run-to-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Create a deterministic RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream label, so different
/// tables/columns get independent but reproducible streams.
pub fn child_seed(parent: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the parent.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ parent.rotate_left(17);
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Uniformly pick an element of a non-empty slice.
pub fn pick<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// A skewed (approximately Zipf) index in `0..n`: smaller indices are more
/// likely. `skew = 0` is uniform; larger values concentrate mass.
pub fn zipf_index(rng: &mut SmallRng, n: usize, skew: f64) -> usize {
    debug_assert!(n > 0);
    if skew <= 0.0 {
        return rng.gen_range(0..n);
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    let idx = (u.powf(1.0 + skew) * n as f64) as usize;
    idx.min(n - 1)
}

/// Lowercase alphabetic string of the given length.
pub fn random_word(rng: &mut SmallRng, len: usize) -> String {
    (0..len).map(|_| (b'a' + rng.gen_range(0..26u8)) as char).collect()
}

/// A US-style phone number like `974-2345`.
pub fn phone(rng: &mut SmallRng) -> String {
    format!("{:03}-{:04}", rng.gen_range(200..999), rng.gen_range(0..10_000))
}

/// Sentence of `words` words drawn from a pool.
pub fn sentence(rng: &mut SmallRng, pool: &[&str], words: usize) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(pool[rng.gen_range(0..pool.len())]);
    }
    out
}

/// The TPC-H-flavoured word pool used for names and comments.
pub const WORDS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn child_seeds_differ_by_label() {
        let s = child_seed(7, "customer");
        assert_ne!(s, child_seed(7, "orders"));
        assert_ne!(s, child_seed(8, "customer"));
        assert_eq!(s, child_seed(7, "customer"));
    }

    #[test]
    fn zipf_skews_small_indices() {
        let mut rng = rng_from_seed(1);
        let n = 100;
        let mut low = 0;
        for _ in 0..1000 {
            if zipf_index(&mut rng, n, 2.0) < 10 {
                low += 1;
            }
        }
        // With skew 2 (u^3 mapping), P(idx < 10) = (0.1)^(1/3) ≈ 0.46.
        assert!(low > 300, "skew concentrates mass on small indices: {low}");
        // Uniform baseline stays near 10%.
        let mut low_u = 0;
        for _ in 0..1000 {
            if zipf_index(&mut rng, n, 0.0) < 10 {
                low_u += 1;
            }
        }
        assert!(low_u < 200, "{low_u}");
    }

    #[test]
    fn zipf_in_range() {
        let mut rng = rng_from_seed(3);
        for _ in 0..100 {
            assert!(zipf_index(&mut rng, 5, 1.5) < 5);
            assert!(zipf_index(&mut rng, 1, 1.5) == 0);
        }
    }

    #[test]
    fn words_and_phones_shape() {
        let mut rng = rng_from_seed(5);
        let w = random_word(&mut rng, 8);
        assert_eq!(w.len(), 8);
        assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        let p = phone(&mut rng);
        assert_eq!(p.len(), 8);
        assert_eq!(&p[3..4], "-");
        let s = sentence(&mut rng, WORDS, 3);
        assert_eq!(s.split(' ').count(), 3);
    }
}
