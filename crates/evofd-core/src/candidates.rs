//! Candidate-repair generation and ordering (Section 4.2, Algorithm 2).
//!
//! Given a violated FD `F : X → Y`, every attribute `A ∈ R \ XY` (that is
//! NULL-free, §6.2.1) yields a candidate `F_A : XA → Y`. Candidates are
//! ranked by
//!
//! 1. confidence `c(F_A)` — descending (closer to exact wins);
//! 2. |goodness| — ascending (the paper prefers goodness *close to zero*:
//!    in Table 1, `Municipal` (g = 0) outranks `PhNo` (g = 3), penalising
//!    over-specific, UNIQUE-like attributes);
//! 3. attribute position — ascending, for determinism (matches the
//!    paper's table layouts, which list schema order within ties).

use std::cmp::Ordering;

use evofd_storage::{AttrId, AttrSet, DistinctCache, Relation, SharedDistinctCache};

use crate::fd::Fd;
use crate::measures::Measures;

/// One candidate single-attribute extension of an FD.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The attribute added to the antecedent.
    pub attr: AttrId,
    /// The extended FD `XA → Y`.
    pub fd: Fd,
    /// Measures of the extended FD.
    pub measures: Measures,
}

impl Candidate {
    /// Paper ranking: confidence desc, |goodness| asc, attribute asc.
    pub fn rank_cmp(&self, other: &Candidate) -> Ordering {
        other
            .measures
            .confidence
            .total_cmp(&self.measures.confidence)
            .then_with(|| self.measures.abs_goodness().cmp(&other.measures.abs_goodness()))
            .then_with(|| self.attr.cmp(&other.attr))
    }
}

/// The candidate pool for extending `fd` on `rel`: NULL-free attributes
/// not already mentioned by the FD.
pub fn candidate_pool(rel: &Relation, fd: &Fd) -> AttrSet {
    rel.non_null_attrs().difference(&fd.attrs())
}

/// Algorithm 2 (`ExtendByOne`): compute confidence and goodness for every
/// candidate extension of `fd`, returning them ranked.
///
/// `pool` restricts which attributes may be added (callers pass
/// [`candidate_pool`] minus anything already tried); counts are memoised
/// in `cache`.
pub fn extend_by_one(
    rel: &Relation,
    fd: &Fd,
    pool: &AttrSet,
    cache: &mut DistinctCache,
) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = pool
        .iter()
        .map(|attr| {
            let extended = fd.with_lhs_attr(attr);
            let measures = Measures::compute(rel, &extended, cache);
            Candidate { attr, fd: extended, measures }
        })
        .collect();
    out.sort_by(Candidate::rank_cmp);
    out
}

/// [`extend_by_one`] with the candidates' `|π_XA|` / `|π_XAY|` counts
/// scored concurrently — each candidate is an independent pair of
/// distinct counts, so one queue expansion fans the whole pool out over
/// the `mintpool` width. The returned ranking is identical to the
/// sequential form at any thread count (counts are deterministic and the
/// rank comparator is a total order).
pub fn extend_by_one_shared(
    rel: &Relation,
    fd: &Fd,
    pool: &AttrSet,
    cache: &SharedDistinctCache,
) -> Vec<Candidate> {
    let attrs: Vec<AttrId> = pool.iter().collect();
    let mut out = mintpool::par_map(&attrs, |&attr| {
        let extended = fd.with_lhs_attr(attr);
        let measures = Measures::compute_shared(rel, &extended, cache);
        Candidate { attr, fd: extended, measures }
    });
    out.sort_by(Candidate::rank_cmp);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    /// Mini-Places: District determines AreaCode only with Municipal.
    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["D", "M", "P", "A"],
            &[
                &["d1", "m1", "p1", "a1"],
                &["d1", "m1", "p2", "a1"],
                &["d1", "m2", "p3", "a2"],
                &["d2", "m3", "p4", "a3"],
                &["d2", "m3", "p5", "a3"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn pool_excludes_fd_attrs() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let pool = candidate_pool(&r, &fd);
        assert_eq!(pool, r.schema().attr_set(&["M", "P"]).unwrap());
    }

    #[test]
    fn pool_excludes_null_attrs() {
        use evofd_storage::{DataType, Field, Relation, Schema, Value};
        let schema = Schema::new(
            "t",
            vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
                Field::new("c", DataType::Int),
            ],
        )
        .unwrap()
        .into_shared();
        let r = Relation::from_rows(schema, vec![vec![Value::Int(1), Value::Int(2), Value::Null]])
            .unwrap();
        let fd = Fd::parse(r.schema(), "a -> b").unwrap();
        assert!(candidate_pool(&r, &fd).is_empty(), "c has NULLs");
    }

    #[test]
    fn ranking_prefers_confidence_then_goodness() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let cands = extend_by_one(&r, &fd, &candidate_pool(&r, &fd), &mut DistinctCache::new());
        assert_eq!(cands.len(), 2);
        // Both M and P repair the FD (confidence 1); M has |π_DM| = 3 vs
        // |π_A| = 3 → g = 0, P has |π_DP| = 5 → g = 2. M must win.
        assert_eq!(cands[0].attr, r.schema().resolve("M").unwrap());
        assert_eq!(cands[0].measures.goodness, 0);
        assert_eq!(cands[1].attr, r.schema().resolve("P").unwrap());
        assert_eq!(cands[1].measures.goodness, 2);
        assert!(cands[0].measures.is_exact() && cands[1].measures.is_exact());
    }

    #[test]
    fn rank_cmp_total_order() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let cands = extend_by_one(&r, &fd, &candidate_pool(&r, &fd), &mut DistinctCache::new());
        for w in cands.windows(2) {
            assert_ne!(w[0].rank_cmp(&w[1]), Ordering::Greater);
        }
    }

    #[test]
    fn empty_pool_yields_no_candidates() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let cands = extend_by_one(&r, &fd, &AttrSet::empty(), &mut DistinctCache::new());
        assert!(cands.is_empty());
    }

    #[test]
    fn shared_scoring_matches_sequential() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let pool = candidate_pool(&r, &fd);
        let seq = extend_by_one(&r, &fd, &pool, &mut DistinctCache::new());
        let par = extend_by_one_shared(&r, &fd, &pool, &SharedDistinctCache::new());
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.attr, b.attr);
            assert_eq!(a.fd, b.fd);
            assert_eq!(a.measures, b.measures);
        }
    }
}
