//! Error types for the FD core.

use std::fmt;

use evofd_storage::StorageError;

/// Errors produced while parsing, validating or repairing FDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdError {
    /// An FD string could not be parsed.
    Parse {
        /// The offending input.
        input: String,
        /// Human-readable description.
        message: String,
    },
    /// An FD references an attribute set that is empty where it must not be.
    EmptyConsequent,
    /// An FD attribute contains NULLs, which Definition 3 forbids.
    NullAttribute {
        /// The attribute name.
        name: String,
    },
    /// The repair engine was asked about an FD that is already satisfied.
    AlreadySatisfied {
        /// Rendered FD.
        fd: String,
    },
    /// An advisor operation referenced an unknown FD or proposal index.
    UnknownProposal {
        /// What was looked up.
        what: String,
    },
    /// An advisor operation was applied in an invalid session state.
    InvalidState {
        /// Description of the violated protocol step.
        message: String,
    },
    /// An underlying storage error.
    Storage(StorageError),
}

impl fmt::Display for FdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdError::Parse { input, message } => {
                write!(f, "cannot parse FD `{input}`: {message}")
            }
            FdError::EmptyConsequent => write!(f, "FD consequent must not be empty"),
            FdError::NullAttribute { name } => {
                write!(f, "attribute `{name}` contains NULLs and cannot appear in an FD")
            }
            FdError::AlreadySatisfied { fd } => {
                write!(f, "FD {fd} is already satisfied; nothing to repair")
            }
            FdError::UnknownProposal { what } => write!(f, "unknown proposal: {what}"),
            FdError::InvalidState { message } => write!(f, "invalid session state: {message}"),
            FdError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for FdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FdError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for FdError {
    fn from(e: StorageError) -> Self {
        FdError::Storage(e)
    }
}

/// Result alias for FD-core operations.
pub type Result<T> = std::result::Result<T, FdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = FdError::Parse { input: "A B".into(), message: "missing ->".into() };
        assert!(e.to_string().contains("A B"));
        assert!(FdError::EmptyConsequent.to_string().contains("consequent"));
    }

    #[test]
    fn storage_error_source() {
        use std::error::Error;
        let e = FdError::Storage(StorageError::UnknownTable { name: "t".into() });
        assert!(e.source().is_some());
    }
}
