//! Plain-text table rendering for CLI output, examples and the benchmark
//! harness — mirrors the look of the paper's tables.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity; extra cells are kept,
    /// missing cells rendered empty).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a header underline and `|` separators.
    pub fn render(&self) -> String {
        let n_cols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; n_cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = (0..n_cols)
                .map(|i| {
                    let cell = cells.get(i).map(String::as_str).unwrap_or("");
                    format!("{cell:<width$}", width = widths[i])
                })
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        let header_line = render_row(&self.header);
        let sep: String = header_line.chars().map(|c| if c == '|' { '+' } else { '-' }).collect();
        let _ = writeln!(out, "{sep}");
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row));
        }
        let _ = writeln!(out, "{sep}");
        out
    }
}

/// Format a duration the way the paper prints processing times
/// (`1h 59m 19s 884ms`, `2s 873ms`, `5ms`).
pub fn format_duration(d: std::time::Duration) -> String {
    let total_ms = d.as_millis();
    let ms = total_ms % 1000;
    let s = (total_ms / 1000) % 60;
    let m = (total_ms / 60_000) % 60;
    let h = total_ms / 3_600_000;
    let mut parts: Vec<String> = Vec::new();
    if h > 0 {
        parts.push(format!("{h}h"));
    }
    if m > 0 || h > 0 {
        parts.push(format!("{m}m"));
    }
    if s > 0 || m > 0 || h > 0 {
        parts.push(format!("{s}s"));
    }
    parts.push(format!("{ms}ms"));
    parts.join(" ")
}

/// Format a confidence the way the paper prints it (3 decimals, trailing
/// zeros trimmed so `1` renders as `1`).
pub fn format_confidence(c: f64) -> String {
    if (c - 1.0).abs() < 1e-12 {
        "1".to_string()
    } else {
        let s = format!("{c:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["attr", "conf", "good"]);
        t.row(["Municipal", "1", "0"]);
        t.row(["PhNo", "1", "3"]);
        let text = t.render();
        assert!(text.contains("| Municipal | 1    | 0    |"), "{text}");
        assert!(text.contains("| PhNo      | 1    | 3    |"), "{text}");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
        let text = t.render();
        assert!(text.contains("only one"));
    }

    #[test]
    fn duration_formats_like_paper() {
        assert_eq!(format_duration(Duration::from_millis(5)), "5ms");
        assert_eq!(format_duration(Duration::from_millis(2873)), "2s 873ms");
        assert_eq!(
            format_duration(Duration::from_millis(3_600_000 + 59 * 60_000 + 19_000 + 884)),
            "1h 59m 19s 884ms"
        );
        assert_eq!(format_duration(Duration::from_millis(60_000)), "1m 0s 0ms");
    }

    #[test]
    fn confidence_formats() {
        assert_eq!(format_confidence(1.0), "1");
        assert_eq!(format_confidence(0.5), "0.5");
        assert_eq!(format_confidence(2.0 / 3.0), "0.667");
        assert_eq!(format_confidence(0.875), "0.875");
    }
}
