//! FD validation: the "periodic or continuous checks of FD validity" the
//! paper's introduction assumes the DBMS performs.
//!
//! Validation is embarrassingly parallel across FDs: every status is an
//! independent triple of distinct counts. [`validate`] fans the FD set out
//! over the `mintpool` width with one shared, shard-locked count cache, so
//! overlapping attribute sets are still only counted once.

use evofd_storage::{Relation, SharedDistinctCache};

use crate::fd::Fd;
use crate::measures::Measures;

/// Validation verdict for one FD.
#[derive(Debug, Clone)]
pub struct FdStatus {
    /// The FD checked.
    pub fd: Fd,
    /// Its measures on the instance.
    pub measures: Measures,
}

impl FdStatus {
    /// True iff the FD is exact (Definition 4).
    pub fn satisfied(&self) -> bool {
        self.measures.is_exact()
    }
}

/// Result of validating a set of FDs against an instance.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Status of every FD, in input order.
    pub statuses: Vec<FdStatus>,
    /// Number of tuples inspected.
    pub row_count: usize,
}

impl ValidationReport {
    /// FDs that hold.
    pub fn satisfied(&self) -> impl Iterator<Item = &FdStatus> {
        self.statuses.iter().filter(|s| s.satisfied())
    }

    /// FDs that are violated (approximate, Definition 4).
    pub fn violated(&self) -> impl Iterator<Item = &FdStatus> {
        self.statuses.iter().filter(|s| !s.satisfied())
    }

    /// True iff every FD holds.
    pub fn all_satisfied(&self) -> bool {
        self.statuses.iter().all(|s| s.satisfied())
    }

    /// Count of violated FDs.
    pub fn violation_count(&self) -> usize {
        self.violated().count()
    }
}

/// Validate `fds` against `rel`, sharing one distinct-count cache. FDs
/// are checked in parallel when the `mintpool` width allows; statuses
/// come back in input order regardless.
pub fn validate(rel: &Relation, fds: &[Fd]) -> ValidationReport {
    let cache = SharedDistinctCache::new();
    let statuses = mintpool::par_map(fds, |fd| FdStatus {
        fd: fd.clone(),
        measures: Measures::compute_shared(rel, fd, &cache),
    });
    ValidationReport { statuses, row_count: rel.row_count() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["A", "B", "C"],
            &[&["1", "x", "p"], &["1", "y", "p"], &["2", "x", "q"]],
        )
        .unwrap()
    }

    #[test]
    fn validates_mixed_set() {
        let r = rel();
        let fds = vec![
            Fd::parse(r.schema(), "A -> B").unwrap(), // violated
            Fd::parse(r.schema(), "A -> C").unwrap(), // satisfied
        ];
        let report = validate(&r, &fds);
        assert_eq!(report.row_count, 3);
        assert!(!report.all_satisfied());
        assert_eq!(report.violation_count(), 1);
        assert_eq!(report.satisfied().count(), 1);
        let violated: Vec<_> = report.violated().collect();
        assert_eq!(violated[0].fd, fds[0]);
        assert!(violated[0].measures.confidence < 1.0);
    }

    #[test]
    fn verdicts_match_naive_semantics() {
        let r = rel();
        for text in ["A -> B", "A -> C", "B -> C", "A, B -> C", "C -> A"] {
            let fd = Fd::parse(r.schema(), text).unwrap();
            let report = validate(&r, std::slice::from_ref(&fd));
            assert_eq!(report.statuses[0].satisfied(), fd.satisfied_naive(&r), "FD {text}");
        }
    }

    #[test]
    fn empty_fd_set() {
        let report = validate(&rel(), &[]);
        assert!(report.all_satisfied());
        assert_eq!(report.violation_count(), 0);
    }
}
