//! Violation inspection: *which tuples* break an FD, and how.
//!
//! The paper's workflow is semi-automatic — a designer must look at the
//! evidence before deciding whether the data or the constraint is wrong
//! (§1: "Suppose the designer realizes that an FD not being satisfied is
//! not a mistake but a symptom of a real-world situation"). This module
//! materialises that evidence: the X-groups associated with more than one
//! Y-value, their tuples, and summary statistics.

use evofd_storage::{Partition, Relation, Value};

use crate::fd::Fd;

/// One violating group: an antecedent value associated with ≥ 2 distinct
/// consequent values.
#[derive(Debug, Clone)]
pub struct ViolationGroup {
    /// The shared antecedent values (one per lhs attribute, ascending).
    pub lhs_values: Vec<Value>,
    /// The distinct consequent value combinations seen in the group.
    pub rhs_variants: Vec<Vec<Value>>,
    /// Row ids of every tuple in the group.
    pub rows: Vec<u32>,
}

impl ViolationGroup {
    /// Number of tuples involved.
    pub fn size(&self) -> usize {
        self.rows.len()
    }

    /// Number of distinct consequent combinations (≥ 2 by construction).
    pub fn variant_count(&self) -> usize {
        self.rhs_variants.len()
    }
}

/// Full violation evidence for one FD on one instance.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// The FD analysed.
    pub fd: Fd,
    /// Violating groups, largest first.
    pub groups: Vec<ViolationGroup>,
    /// Total tuples in the relation.
    pub total_rows: usize,
}

impl ViolationReport {
    /// True iff the FD is satisfied (no violating groups).
    pub fn is_clean(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of tuples belonging to some violating group — the tuples a
    /// data-repair approach would have to touch.
    pub fn violating_rows(&self) -> usize {
        self.groups.iter().map(ViolationGroup::size).sum()
    }

    /// Fraction of tuples involved in violations, in `[0, 1]`.
    pub fn violation_ratio(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.violating_rows() as f64 / self.total_rows as f64
        }
    }

    /// Render the first `limit` groups with attribute names.
    pub fn render(&self, rel: &Relation, limit: usize) -> String {
        use std::fmt::Write as _;
        let schema = rel.schema();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} violating group(s), {} of {} tuples involved",
            self.fd.display(schema),
            self.groups.len(),
            self.violating_rows(),
            self.total_rows
        );
        for group in self.groups.iter().take(limit) {
            let lhs_names: Vec<String> = self
                .fd
                .lhs()
                .iter()
                .zip(group.lhs_values.iter())
                .map(|(a, v)| format!("{} = {}", schema.attr_name(a), v))
                .collect();
            let _ = writeln!(
                out,
                "  [{}] -> {} variants over {} tuples:",
                lhs_names.join(", "),
                group.variant_count(),
                group.size()
            );
            for variant in &group.rhs_variants {
                let rhs_names: Vec<String> = self
                    .fd
                    .rhs()
                    .iter()
                    .zip(variant.iter())
                    .map(|(a, v)| format!("{} = {}", schema.attr_name(a), v))
                    .collect();
                let _ = writeln!(out, "      {}", rhs_names.join(", "));
            }
        }
        if self.groups.len() > limit {
            let _ = writeln!(out, "  ... ({} more groups)", self.groups.len() - limit);
        }
        out
    }
}

/// Compute the violating groups of `fd` on `rel`.
///
/// Groups rows by the antecedent, keeps the groups whose consequent
/// projection is not constant, and sorts them by size (largest — most
/// evidence of a real semantic change — first).
pub fn violations(rel: &Relation, fd: &Fd) -> ViolationReport {
    let lhs_partition = Partition::by_attrs(rel, fd.lhs());
    let rhs_partition = Partition::by_attrs(rel, fd.rhs());

    // For each lhs class, collect the set of rhs class labels.
    let mut variants: Vec<Vec<u32>> = vec![Vec::new(); lhs_partition.n_classes()];
    for row in 0..rel.row_count() {
        let l = lhs_partition.labels()[row] as usize;
        let r = rhs_partition.labels()[row];
        if !variants[l].contains(&r) {
            variants[l].push(r);
        }
    }

    let mut groups: Vec<ViolationGroup> = Vec::new();
    for (class, rhs_labels) in variants.iter().enumerate() {
        if rhs_labels.len() < 2 {
            continue;
        }
        let rows: Vec<u32> = (0..rel.row_count() as u32)
            .filter(|&r| lhs_partition.labels()[r as usize] as usize == class)
            .collect();
        let rep = rows[0] as usize;
        let lhs_values: Vec<Value> = fd.lhs().iter().map(|a| rel.column(a).value_at(rep)).collect();
        // One representative tuple per rhs variant, in first-seen order.
        let mut seen: Vec<u32> = Vec::new();
        let mut rhs_variants: Vec<Vec<Value>> = Vec::new();
        for &row in &rows {
            let label = rhs_partition.labels()[row as usize];
            if !seen.contains(&label) {
                seen.push(label);
                rhs_variants
                    .push(fd.rhs().iter().map(|a| rel.column(a).value_at(row as usize)).collect());
            }
        }
        groups.push(ViolationGroup { lhs_values, rhs_variants, rows });
    }
    groups.sort_by(|a, b| b.size().cmp(&a.size()).then_with(|| a.lhs_values.cmp(&b.lhs_values)));
    ViolationReport { fd: fd.clone(), groups, total_rows: rel.row_count() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["X", "Y"],
            &[&["a", "1"], &["a", "2"], &["a", "1"], &["b", "3"], &["b", "3"], &["c", "4"]],
        )
        .unwrap()
    }

    #[test]
    fn finds_violating_groups() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let report = violations(&r, &fd);
        assert!(!report.is_clean());
        assert_eq!(report.groups.len(), 1, "only X=a splits");
        let g = &report.groups[0];
        assert_eq!(g.lhs_values, vec![Value::str("a")]);
        assert_eq!(g.size(), 3);
        assert_eq!(g.variant_count(), 2);
        assert_eq!(report.violating_rows(), 3);
        assert!((report.violation_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clean_fd_reports_empty() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "Y -> X").unwrap();
        let report = violations(&r, &fd);
        assert!(report.is_clean());
        assert_eq!(report.violating_rows(), 0);
        assert_eq!(report.violation_ratio(), 0.0);
    }

    #[test]
    fn groups_sorted_by_size() {
        let r = relation_of_strs(
            "t",
            &["X", "Y"],
            &[&["a", "1"], &["a", "2"], &["b", "1"], &["b", "2"], &["b", "3"]],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let report = violations(&r, &fd);
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.groups[0].size(), 3, "X=b first (bigger)");
        assert_eq!(report.groups[0].variant_count(), 3);
    }

    #[test]
    fn render_names_attributes() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let text = violations(&r, &fd).render(&r, 5);
        assert!(text.contains("X = a"), "{text}");
        assert!(text.contains("Y = 1"), "{text}");
        assert!(text.contains("Y = 2"), "{text}");
    }

    #[test]
    fn render_truncates_groups() {
        let r = relation_of_strs(
            "t",
            &["X", "Y"],
            &[&["a", "1"], &["a", "2"], &["b", "1"], &["b", "2"]],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let text = violations(&r, &fd).render(&r, 1);
        assert!(text.contains("1 more groups"), "{text}");
    }

    #[test]
    fn places_f1_all_tuples_violate() {
        let rel = evofd_datagen_placeholder();
        if let Some(rel) = rel {
            let fd = Fd::parse(rel.schema(), "District, Region -> AreaCode").unwrap();
            let report = violations(&rel, &fd);
            assert_eq!(report.violating_rows(), rel.row_count());
        }
    }

    // evofd-core cannot depend on evofd-datagen (cycle); the Places check
    // lives in the integration tests. This stub keeps the intent visible.
    fn evofd_datagen_placeholder() -> Option<Relation> {
        None
    }

    #[test]
    fn violation_consistent_with_satisfaction() {
        let r = rel();
        for text in ["X -> Y", "Y -> X", "X, Y -> X"] {
            let fd = Fd::parse(r.schema(), text).unwrap();
            let report = violations(&r, &fd);
            assert_eq!(report.is_clean(), fd.satisfied_naive(&r), "{text}");
        }
    }
}
