//! Functional dependencies: syntax (Definition 1) and semantics
//! (Definition 2).

use std::fmt;

use evofd_storage::{AttrId, AttrSet, Relation, Schema};

use crate::error::{FdError, Result};

/// A functional dependency `X → Y` over a relation schema (Definition 1).
///
/// Attributes are stored positionally (as an [`AttrSet`]) so FDs are cheap
/// to copy, hash and compare; use [`Fd::display`] to render with names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    lhs: AttrSet,
    rhs: AttrSet,
}

impl Fd {
    /// Build an FD from attribute sets. The consequent must be non-empty;
    /// the antecedent may be empty (`∅ → Y` asserts Y is constant).
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Result<Fd> {
        if rhs.is_empty() {
            return Err(FdError::EmptyConsequent);
        }
        Ok(Fd { lhs, rhs })
    }

    /// Build from attribute names resolved against a schema.
    pub fn from_names(schema: &Schema, lhs: &[&str], rhs: &[&str]) -> Result<Fd> {
        Fd::new(schema.attr_set(lhs)?, schema.attr_set(rhs)?)
    }

    /// Parse `"A, B -> C"` (also accepts the paper's bracketed form
    /// `"[A, B] -> [C]"`) against a schema.
    pub fn parse(schema: &Schema, text: &str) -> Result<Fd> {
        let (lhs_text, rhs_text) = text.split_once("->").ok_or_else(|| FdError::Parse {
            input: text.to_string(),
            message: "expected `lhs -> rhs`".to_string(),
        })?;
        let clean = |s: &str| -> Vec<String> {
            s.trim()
                .trim_start_matches('[')
                .trim_end_matches(']')
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect()
        };
        let lhs_names = clean(lhs_text);
        let rhs_names = clean(rhs_text);
        if rhs_names.is_empty() {
            return Err(FdError::Parse {
                input: text.to_string(),
                message: "empty consequent".to_string(),
            });
        }
        let lhs_refs: Vec<&str> = lhs_names.iter().map(String::as_str).collect();
        let rhs_refs: Vec<&str> = rhs_names.iter().map(String::as_str).collect();
        Fd::from_names(schema, &lhs_refs, &rhs_refs)
    }

    /// The antecedent `X`.
    pub fn lhs(&self) -> &AttrSet {
        &self.lhs
    }

    /// The consequent `Y`.
    pub fn rhs(&self) -> &AttrSet {
        &self.rhs
    }

    /// `XY`: all attributes mentioned by the FD.
    pub fn attrs(&self) -> AttrSet {
        self.lhs.union(&self.rhs)
    }

    /// The paper's `|F| = |XY|`.
    pub fn num_attrs(&self) -> usize {
        self.attrs().len()
    }

    /// The paper's `|F ∩ F'|`: attributes shared between two FDs.
    pub fn shared_attrs(&self, other: &Fd) -> usize {
        self.attrs().intersection_len(&other.attrs())
    }

    /// True iff `Y ⊆ X` (always satisfied, never needs repair).
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset_of(&self.lhs)
    }

    /// New FD with `attr` added to the antecedent (`XA → Y`).
    pub fn with_lhs_attr(&self, attr: AttrId) -> Fd {
        Fd { lhs: self.lhs.with(attr), rhs: self.rhs.clone() }
    }

    /// New FD with an attribute set unioned into the antecedent
    /// (`XU → Y`).
    pub fn with_lhs_attrs(&self, attrs: &AttrSet) -> Fd {
        Fd { lhs: self.lhs.union(attrs), rhs: self.rhs.clone() }
    }

    /// Decompose into FDs with single-attribute consequents — the paper's
    /// "without loss of generality" normalisation (§1).
    pub fn decompose(&self) -> Vec<Fd> {
        self.rhs.iter().map(|a| Fd { lhs: self.lhs.clone(), rhs: AttrSet::single(a) }).collect()
    }

    /// Definition 2 evaluated naively: scan all tuple pairs via a hash map
    /// from X-projection to Y-projection. Used as the semantics oracle in
    /// tests; production code uses confidence (`|π_X| = |π_XY|`).
    pub fn satisfied_naive(&self, rel: &Relation) -> bool {
        use std::collections::HashMap;
        let lhs_cols: Vec<_> = self.lhs.iter().map(|a| rel.column(a)).collect();
        let rhs_cols: Vec<_> = self.rhs.iter().map(|a| rel.column(a)).collect();
        let mut seen: HashMap<Vec<u32>, Vec<evofd_storage::Value>> = HashMap::new();
        for row in 0..rel.row_count() {
            let key: Vec<u32> = lhs_cols.iter().map(|c| c.code_at(row)).collect();
            let val: Vec<evofd_storage::Value> = rhs_cols.iter().map(|c| c.value_at(row)).collect();
            match seen.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != val {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(val);
                }
            }
        }
        true
    }

    /// Render with attribute names, e.g. `[District, Region] -> [AreaCode]`.
    pub fn display(&self, schema: &Schema) -> String {
        format!("{} -> {}", schema.render_attrs(&self.lhs), schema.render_attrs(&self.rhs))
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["A", "B", "C"],
            &[&["1", "x", "p"], &["1", "x", "p"], &["2", "y", "p"], &["2", "z", "q"]],
        )
        .unwrap()
    }

    #[test]
    fn parse_plain_and_bracketed() {
        let r = rel();
        let f1 = Fd::parse(r.schema(), "A, B -> C").unwrap();
        let f2 = Fd::parse(r.schema(), "[A, B] -> [C]").unwrap();
        assert_eq!(f1, f2);
        assert_eq!(f1.lhs().indices(), vec![0, 1]);
        assert_eq!(f1.rhs().indices(), vec![2]);
    }

    #[test]
    fn parse_errors() {
        let r = rel();
        assert!(matches!(Fd::parse(r.schema(), "A B C"), Err(FdError::Parse { .. })));
        assert!(matches!(Fd::parse(r.schema(), "A -> "), Err(FdError::Parse { .. })));
        assert!(Fd::parse(r.schema(), "A -> Missing").is_err());
    }

    #[test]
    fn empty_consequent_rejected() {
        assert!(matches!(
            Fd::new(AttrSet::single(AttrId(0)), AttrSet::empty()),
            Err(FdError::EmptyConsequent)
        ));
    }

    #[test]
    fn trivial_detection() {
        let r = rel();
        assert!(Fd::parse(r.schema(), "A, C -> C").unwrap().is_trivial());
        assert!(!Fd::parse(r.schema(), "A -> C").unwrap().is_trivial());
    }

    #[test]
    fn satisfied_naive_matches_definition() {
        let r = rel();
        // A -> B fails: A=2 maps to y and z.
        assert!(!Fd::parse(r.schema(), "A -> B").unwrap().satisfied_naive(&r));
        // B -> C holds: x->p, y->p, z->q.
        assert!(Fd::parse(r.schema(), "B -> C").unwrap().satisfied_naive(&r));
        // A,B -> C holds.
        assert!(Fd::parse(r.schema(), "A, B -> C").unwrap().satisfied_naive(&r));
    }

    #[test]
    fn decompose_splits_consequent() {
        let r = rel();
        let f = Fd::parse(r.schema(), "A -> B, C").unwrap();
        let parts = f.decompose();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], Fd::parse(r.schema(), "A -> B").unwrap());
        assert_eq!(parts[1], Fd::parse(r.schema(), "A -> C").unwrap());
    }

    #[test]
    fn shared_attrs_counts_xy_overlap() {
        let r = rel();
        let f1 = Fd::parse(r.schema(), "A -> B").unwrap();
        let f2 = Fd::parse(r.schema(), "B -> C").unwrap();
        let f3 = Fd::parse(r.schema(), "A -> C").unwrap();
        assert_eq!(f1.shared_attrs(&f2), 1);
        assert_eq!(f1.shared_attrs(&f3), 1);
        assert_eq!(f1.shared_attrs(&f1), 2);
        assert_eq!(f1.num_attrs(), 2);
    }

    #[test]
    fn with_lhs_attr_extends() {
        let r = rel();
        let f = Fd::parse(r.schema(), "A -> C").unwrap();
        let g = f.with_lhs_attr(AttrId(1));
        assert_eq!(g, Fd::parse(r.schema(), "A, B -> C").unwrap());
        // original untouched
        assert_eq!(f.lhs().len(), 1);
    }

    #[test]
    fn display_with_names() {
        let r = rel();
        let f = Fd::parse(r.schema(), "A, B -> C").unwrap();
        assert_eq!(f.display(r.schema()), "[A, B] -> [C]");
        assert_eq!(f.to_string(), "{0,1} -> {2}");
    }

    #[test]
    fn empty_lhs_allowed() {
        let r = rel();
        let f = Fd::new(AttrSet::empty(), AttrSet::single(AttrId(2))).unwrap();
        assert!(!f.satisfied_naive(&r), "C is not constant");
    }

    #[test]
    fn satisfied_naive_null_as_value() {
        use evofd_storage::{DataType, Field, Schema, Value};
        let schema =
            Schema::new("t", vec![Field::new("a", DataType::Int), Field::new("b", DataType::Int)])
                .unwrap()
                .into_shared();
        let r = Relation::from_rows(
            schema,
            vec![vec![Value::Null, Value::Int(1)], vec![Value::Null, Value::Int(1)]],
        )
        .unwrap();
        let f = Fd::parse(r.schema(), "a -> b").unwrap();
        assert!(f.satisfied_naive(&r));
    }
}
