//! [`RepairIndex`]: the repair search of [`crate::repair`] split into a
//! **resumable index** whose per-candidate scores are maintained from
//! delta row lists instead of recomputed by a from-scratch lattice walk.
//!
//! The batch `Extend` search (Algorithm 3) explores a lattice of added
//! attribute sets `S ⊆ pool`: the single-attribute seeds always, and a
//! node `S` with `|S| ≥ 2` exactly when some parent `S \ {a}` was visited,
//! was **not** exact, and had room left under `max_added`. Accepted
//! repairs are the visited exact nodes (within the goodness threshold),
//! reported in queue-pop order — `(|S|, |goodness|, S)` ascending, since
//! every accepted repair has confidence exactly 1. Both the visited set
//! and the ranking are therefore pure functions of the distinct counts
//! `|π_XS|` / `|π_XSY|` / `|π_Y|` on the current rows.
//!
//! [`RepairIndex`] maintains those counts per candidate node with the
//! same group-count maps the incremental validator keeps for whole FDs
//! (dictionary-code keys, stable between compactions): a delta touching
//! `k` rows costs O(k) per maintained node, after which **dirty-candidate
//! invalidation** re-derives the visited lattice from the updated
//! exactness bits — pruning orphaned branches, growing newly reachable
//! ones (the only part that rescans live rows, and only for the new
//! nodes) — and a **bounded re-rank** rebuilds the proposal list by
//! sorting the surviving exact nodes. The result is proven equal to a
//! fresh [`crate::repair_fd`] run at every step (see the in-module tests
//! and `tests/live_advisor_equivalence.rs`).
//!
//! Node re-scoring fans out across the `mintpool` width: each node's
//! counter is owned by exactly one task per update, the relation and the
//! delta row lists are shared read-only.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::ops::Range;

use evofd_storage::{AttrId, AttrSet, Relation, NULL_CODE};

use crate::fastkey::{key, packed_key, FastMap, GroupRhs, Key, KeyMap};
use crate::fd::Fd;
use crate::measures::Measures;
use crate::repair::{Repair, RepairConfig, SearchMode};

/// `EVOFD_INDEX_TRACE=1` prints per-update phase timings to stderr.
fn trace_enabled() -> bool {
    static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *TRACE.get_or_init(|| std::env::var_os("EVOFD_INDEX_TRACE").is_some())
}

/// One candidate node's count state: `X∪S`-projection → its Y-projection
/// distribution ([`GroupRhs`]). `|π_XS|` = map length, `|π_XSY|` = the
/// maintained pair total.
#[derive(Debug, Clone)]
struct PairCounter<K> {
    groups: FastMap<K, GroupRhs<K>>,
    /// `|π_XSY|` — total distinct (X∪S, Y) pairs across groups.
    pairs: usize,
}

impl<K> Default for PairCounter<K> {
    fn default() -> Self {
        PairCounter { groups: FastMap::default(), pairs: 0 }
    }
}

impl<K: Hash + Eq + Clone> PairCounter<K> {
    fn insert_row(&mut self, lkey: K, rkey: &K) {
        match self.groups.entry(lkey) {
            Entry::Vacant(v) => {
                v.insert(GroupRhs::new(rkey.clone()));
                self.pairs += 1;
            }
            Entry::Occupied(mut e) => {
                if e.get_mut().insert(rkey) {
                    self.pairs += 1;
                }
            }
        }
    }

    fn remove_row(&mut self, lkey: K, rkey: &K) {
        let Entry::Occupied(mut e) = self.groups.entry(lkey) else {
            unreachable!("group exists for a tracked row")
        };
        if e.get_mut().remove(rkey) {
            self.pairs -= 1;
        }
        if e.get().is_empty() {
            e.remove();
        }
    }

    /// `(|π_XS|, |π_XSY|)`.
    fn counts(&self) -> (usize, usize) {
        (self.groups.len(), self.pairs)
    }
}

/// A node's counter in its chosen key representation. **Packed** nodes —
/// every key column NULL-free with a sub-2^16 dictionary, antecedent and
/// consequent each at most four attributes — fold their keys into single
/// `u64` words, shrinking map entries to cache-line size (the dominant
/// cost of maintenance is map-probe cache misses). The representation is
/// fixed per (re)build; a dictionary outgrowing the bound rebuilds the
/// index (see [`RepairIndex::update`]).
#[derive(Debug, Clone)]
enum Counter {
    Packed(PairCounter<u64>),
    General(PairCounter<Key>),
}

/// One changed row's Y-projection key, in both representations (packed is
/// meaningful only when the consequent qualifies for packing).
struct RowRhs {
    generic: Key,
    packed: u64,
}

/// One maintained lattice node: the added set `S` and its counter.
#[derive(Debug, Clone)]
struct Node {
    /// Attribute ids of `X ∪ S` in index order (the counter's group key).
    lhs: Vec<AttrId>,
    counter: Counter,
}

impl Node {
    fn insert(&mut self, rel: &Relation, rkey: &RowRhs, row: usize) {
        match &mut self.counter {
            Counter::Packed(c) => c.insert_row(packed_key(rel, &self.lhs, row), &rkey.packed),
            Counter::General(c) => c.insert_row(key(rel, &self.lhs, row), &rkey.generic),
        }
    }

    fn remove(&mut self, rel: &Relation, rkey: &RowRhs, row: usize) {
        match &mut self.counter {
            Counter::Packed(c) => c.remove_row(packed_key(rel, &self.lhs, row), &rkey.packed),
            Counter::General(c) => c.remove_row(key(rel, &self.lhs, row), &rkey.generic),
        }
    }

    fn exact(&self) -> bool {
        let (dl, dlr) = self.counts();
        dl == dlr
    }

    fn counts(&self) -> (usize, usize) {
        match &self.counter {
            Counter::Packed(c) => c.counts(),
            Counter::General(c) => c.counts(),
        }
    }
}

/// Distinct Y-projection counter shared by every node (`|π_Y|` feeds the
/// goodness of every candidate). Keys are computed once per row by the
/// index and shared with every node's counter.
#[derive(Debug, Clone, Default)]
struct RhsCounter {
    counts: KeyMap<u32>,
}

impl RhsCounter {
    fn insert(&mut self, rkey: &Key) {
        *self.counts.entry(rkey.clone()).or_insert(0) += 1;
    }

    fn remove(&mut self, rkey: &Key) {
        match self.counts.entry(rkey.clone()) {
            Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(_) => unreachable!("rhs key exists for a tracked row"),
        }
    }
}

/// What one [`RepairIndex::update`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexOutcome {
    /// Counters were maintained in O(changed rows); the lattice structure
    /// was re-derived (possibly growing/pruning a few nodes).
    Incremental,
    /// The candidate pool changed (an attribute gained or lost its last
    /// NULL) — the whole index was rebuilt from the live rows.
    Rebuilt,
}

/// Work counters for the `advisor` bench and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Deltas absorbed incrementally.
    pub incremental: u64,
    /// Full rebuilds (pool changes, explicit resyncs).
    pub rebuilds: u64,
    /// Lattice nodes built by scanning live rows (structure growth).
    pub nodes_built: u64,
    /// Lattice nodes pruned as unreachable.
    pub nodes_pruned: u64,
}

/// A resumable repair search for one violated FD: the candidate lattice
/// of [`crate::repair_fd`] kept live under row-level deltas.
///
/// ```
/// use evofd_core::{repair_fd, Fd, RepairConfig, RepairIndex};
/// use evofd_storage::relation_of_strs;
///
/// let rel = relation_of_strs(
///     "t",
///     &["D", "M", "A"],
///     &[&["d1", "m1", "a1"], &["d1", "m2", "a2"], &["d2", "m3", "a3"]],
/// )
/// .unwrap();
/// let fd = Fd::parse(rel.schema(), "D -> A").unwrap();
/// let config = RepairConfig::find_all();
/// let rows: Vec<usize> = (0..rel.row_count()).collect();
/// let index = RepairIndex::build(&rel, &rows, fd.clone(), config.clone());
/// let batch = repair_fd(&rel, &fd, &config).unwrap();
/// assert_eq!(index.proposals().len(), batch.repairs.len());
/// ```
#[derive(Debug, Clone)]
pub struct RepairIndex {
    fd: Fd,
    config: RepairConfig,
    /// Y attribute ids in index order.
    rhs_attrs: Vec<AttrId>,
    /// Candidate pool at the last (re)build: NULL-free attributes outside
    /// the FD.
    pool: AttrSet,
    nodes: HashMap<AttrSet, Node>,
    rhs: RhsCounter,
    /// Live-row NULL count per attribute — the pool-change detector.
    null_counts: Vec<usize>,
    /// Per-attribute pack eligibility (NULL-free, dictionary < 2^16) at
    /// the last (re)build — the packed-node invalidation detector.
    pack_ok: Vec<bool>,
    /// Ranked proposals, rebuilt after every update (bounded re-rank).
    proposals: Vec<Repair>,
    /// True when the lattice hit [`RepairConfig::max_expansions`] — the
    /// combinatorial-blowup guard the batch search enforces by capping
    /// queue expansions. A truncated index stops growing (it never hangs
    /// or OOMs a wide schema) but is no longer promised equal to the
    /// (equally truncated) batch search.
    truncated: bool,
    stats: IndexStats,
}

impl RepairIndex {
    /// Build the index from scratch over the given live rows.
    pub fn build(rel: &Relation, rows: &[usize], fd: Fd, config: RepairConfig) -> RepairIndex {
        let rhs_attrs: Vec<AttrId> = fd.rhs().iter().collect();
        let mut index = RepairIndex {
            fd,
            config,
            rhs_attrs,
            pool: AttrSet::empty(),
            nodes: HashMap::new(),
            rhs: RhsCounter::default(),
            null_counts: vec![0; rel.arity()],
            pack_ok: Vec::new(),
            proposals: Vec::new(),
            truncated: false,
            stats: IndexStats::default(),
        };
        index.rebuild(rel, rows);
        index.stats = IndexStats { rebuilds: 0, ..IndexStats::default() };
        index
    }

    /// The FD this index repairs.
    pub fn fd(&self) -> &Fd {
        &self.fd
    }

    /// The search configuration.
    pub fn config(&self) -> &RepairConfig {
        &self.config
    }

    /// The current candidate pool (NULL-free attributes outside the FD).
    pub fn pool(&self) -> &AttrSet {
        &self.pool
    }

    /// Number of lattice nodes currently maintained.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Work counters.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// The ranked repair proposals — element for element what
    /// [`crate::repair_fd`] returns on the current rows (the first element
    /// alone under [`SearchMode::FindFirst`]), as long as neither side is
    /// [truncated](RepairIndex::truncated).
    pub fn proposals(&self) -> &[Repair] {
        &self.proposals
    }

    /// True when the lattice hit the [`RepairConfig::max_expansions`]
    /// node cap: deeper candidates exist but were not explored.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Throw the maintained state away and rebuild from the live rows
    /// (pool changes, compactions, epoch gaps).
    pub fn rebuild(&mut self, rel: &Relation, rows: &[usize]) {
        let timer = evofd_obs::Timer::start();
        evofd_obs::metrics::REPAIR_INDEX_BUILDS_TOTAL.inc();
        self.stats.rebuilds += 1;
        self.null_counts = vec![0; rel.arity()];
        for a in 0..rel.arity() {
            let col = rel.column(AttrId::from(a));
            self.null_counts[a] = rows.iter().filter(|&&r| col.code_at(r) == NULL_CODE).count();
        }
        self.pool = self.current_pool();
        self.pack_ok = self.compute_pack_ok(rel);
        self.rhs = RhsCounter::default();
        for &row in rows {
            let rkey = key(rel, &self.rhs_attrs, row);
            self.rhs.insert(&rkey);
        }
        self.nodes = HashMap::new();
        self.restructure(rel, rows);
        self.rerank();
        timer.observe(&evofd_obs::metrics::REPAIR_INDEX_BUILD_SECONDS);
    }

    /// Absorb one applied delta: `deleted` rows are tombstoned but still
    /// readable, `inserted` is the appended physical id range. `live_rows`
    /// is only invoked when the lattice grows or the pool changed (it must
    /// reflect the rows *after* this delta).
    pub fn update(
        &mut self,
        rel: &Relation,
        deleted: &[usize],
        inserted: Range<usize>,
        live_rows: impl FnOnce() -> Vec<usize>,
    ) -> IndexOutcome {
        let timer = evofd_obs::Timer::start();
        // 1. NULL bookkeeping → pool-change detection.
        for a in 0..rel.arity() {
            let col = rel.column(AttrId::from(a));
            let gained = inserted.clone().filter(|&r| col.code_at(r) == NULL_CODE).count();
            let lost = deleted.iter().filter(|&&r| col.code_at(r) == NULL_CODE).count();
            self.null_counts[a] = self.null_counts[a] + gained - lost;
        }
        if self.current_pool() != self.pool || self.compute_pack_ok(rel) != self.pack_ok {
            self.rebuild(rel, &live_rows());
            return IndexOutcome::Rebuilt;
        }

        // 2. O(changed) counter maintenance, fanned out across nodes. The
        //    Y-projection keys are computed once per changed row and
        //    shared read-only by every node's counter.
        let del_rhs: Vec<RowRhs> = deleted.iter().map(|&r| self.row_rhs(rel, r)).collect();
        let ins_rhs: Vec<RowRhs> = inserted.clone().map(|r| self.row_rhs(rel, r)).collect();
        for rkey in &del_rhs {
            self.rhs.remove(&rkey.generic);
        }
        for rkey in &ins_rhs {
            self.rhs.insert(&rkey.generic);
        }
        let t0 = std::time::Instant::now();
        let mut nodes: Vec<&mut Node> = self.nodes.values_mut().collect();
        mintpool::par_for_each_mut(&mut nodes, |_, node| {
            for (&row, rkey) in deleted.iter().zip(&del_rhs) {
                node.remove(rel, rkey, row);
            }
            for (row, rkey) in inserted.clone().zip(&ins_rhs) {
                node.insert(rel, rkey, row);
            }
        });
        self.stats.incremental += 1;
        let t_maint = t0.elapsed();

        // 3. Dirty invalidation: re-derive the visited lattice from the
        //    updated exactness bits; 4. bounded re-rank.
        let t1 = std::time::Instant::now();
        let mut cached: Option<Vec<usize>> = None;
        let mut live_rows = Some(live_rows);
        self.restructure_with(rel, &mut || {
            cached.get_or_insert_with(|| (live_rows.take().expect("called once"))()).clone()
        });
        let t_struct = t1.elapsed();
        if trace_enabled() {
            eprintln!(
                "    index[{} nodes]: maint {t_maint:?} struct {t_struct:?}",
                self.nodes.len()
            );
        }
        self.rerank();
        evofd_obs::metrics::REPAIR_INDEX_UPDATES_TOTAL.inc();
        timer.observe(&evofd_obs::metrics::REPAIR_INDEX_UPDATE_SECONDS);
        IndexOutcome::Incremental
    }

    /// Which attributes currently qualify for packed group keys: NULL-free
    /// (packed codes cannot carry the NULL sentinel) with a dictionary
    /// small enough for 16-bit codes. Dictionaries only grow, so a flip
    /// here is rare — the whole index rebuilds once when it happens.
    fn compute_pack_ok(&self, rel: &Relation) -> Vec<bool> {
        (0..self.null_counts.len())
            .map(|a| {
                self.null_counts[a] == 0 && rel.column(AttrId::from(a)).dict().len() < (1 << 16)
            })
            .collect()
    }

    /// True when the consequent's key qualifies for packing.
    fn rhs_packable(&self) -> bool {
        self.rhs_attrs.len() <= 4 && self.rhs_attrs.iter().all(|a| self.pack_ok[a.index()])
    }

    /// Both representations of one row's Y-projection key.
    fn row_rhs(&self, rel: &Relation, row: usize) -> RowRhs {
        RowRhs {
            generic: key(rel, &self.rhs_attrs, row),
            packed: if self.rhs_packable() { packed_key(rel, &self.rhs_attrs, row) } else { 0 },
        }
    }

    fn current_pool(&self) -> AttrSet {
        let non_null = AttrSet::from_indices(
            (0..self.null_counts.len()).filter(|&a| self.null_counts[a] == 0),
        );
        non_null.difference(&self.fd.attrs())
    }

    fn restructure(&mut self, rel: &Relation, rows: &[usize]) {
        self.restructure_with(rel, &mut || rows.to_vec());
    }

    /// Re-derive the visited set level by level — exactly the batch
    /// search's reachability rule — building counters only for nodes that
    /// do not exist yet and pruning nodes that are no longer reachable.
    fn restructure_with(&mut self, rel: &Relation, rows: &mut dyn FnMut() -> Vec<usize>) {
        let mut desired: HashSet<AttrSet> = HashSet::new();
        self.truncated = false;
        // Seeds: every single-attribute extension, unconditionally.
        let mut level: Vec<AttrSet> = self.pool.iter().map(AttrSet::single).collect();
        while !level.is_empty() {
            // Build any missing node of this level before reading its
            // exactness (one scan of the live rows per new node, fanned
            // out across the pool width) — bounded by the batch search's
            // expansion cap so a wide schema can never blow the lattice
            // up unboundedly.
            let mut missing: Vec<AttrSet> =
                level.iter().filter(|s| !self.nodes.contains_key(*s)).cloned().collect();
            // Budget against the nodes this walk has COMMITTED to keeping
            // (prior levels' `desired` plus this level's already-built
            // entries) — not `self.nodes.len()`, which still counts stale
            // entries the retain() below is about to prune; those must
            // not eat the cap and spuriously truncate a shrinking lattice.
            let committed = desired.len() + (level.len() - missing.len());
            let budget = self.config.max_expansions.saturating_sub(committed);
            if missing.len() > budget {
                missing.truncate(budget);
                if !self.truncated {
                    evofd_obs::metrics::REPAIR_INDEX_TRUNCATIONS_TOTAL.inc();
                }
                self.truncated = true;
            }
            if !missing.is_empty() {
                let live = rows();
                let fd = &self.fd;
                let pack_ok = &self.pack_ok;
                let rhs_packable = self.rhs_packable();
                let rhs_keys: Vec<RowRhs> = live.iter().map(|&r| self.row_rhs(rel, r)).collect();
                let built: Vec<Node> = mintpool::par_map(&missing, |added| {
                    let lhs: Vec<AttrId> = fd.lhs().union(added).iter().collect();
                    let packed =
                        rhs_packable && lhs.len() <= 4 && lhs.iter().all(|a| pack_ok[a.index()]);
                    let counter = if packed {
                        Counter::Packed(PairCounter::default())
                    } else {
                        Counter::General(PairCounter::default())
                    };
                    let mut node = Node { lhs, counter };
                    for (&row, rkey) in live.iter().zip(&rhs_keys) {
                        node.insert(rel, rkey, row);
                    }
                    node
                });
                self.stats.nodes_built += built.len() as u64;
                evofd_obs::metrics::REPAIR_INDEX_INVALIDATIONS_TOTAL.add(built.len() as u64);
                for (added, node) in missing.into_iter().zip(built) {
                    self.nodes.insert(added, node);
                }
            }
            // Expand the non-exact nodes with room left under max_added
            // (the batch search's lines 8–9 plus its max_added gate).
            let mut next: HashSet<AttrSet> = HashSet::new();
            for added in &level {
                // A node past the cap was never built: it is the
                // truncated frontier — not expanded, not proposed.
                let Some(node) = self.nodes.get(added) else { continue };
                desired.insert(added.clone());
                if node.exact() || added.len() >= self.config.max_added {
                    continue;
                }
                for a in self.pool.difference(added).iter() {
                    next.insert(added.with(a));
                }
            }
            if self.truncated {
                break; // the cap is spent: no deeper level can build
            }
            level = next.into_iter().collect();
            // Keys of the next level are strictly larger sets, so a node
            // can never re-enter `desired`; no dedup against it needed.
        }
        let before = self.nodes.len();
        self.nodes.retain(|added, _| desired.contains(added));
        self.stats.nodes_pruned += (before - self.nodes.len()) as u64;
        evofd_obs::metrics::REPAIR_INDEX_INVALIDATIONS_TOTAL
            .add((before - self.nodes.len()) as u64);
    }

    /// Rebuild the ranked proposal list from the surviving exact nodes:
    /// `(|S|, |goodness|, S)` ascending — the batch queue's pop order
    /// restricted to accepted repairs (confidence is exactly 1 for all of
    /// them, so it never discriminates).
    fn rerank(&mut self) {
        let distinct_rhs = self.rhs.counts.len();
        let mut ranked: Vec<(usize, u64, AttrSet, Repair)> = self
            .nodes
            .iter()
            .filter(|(_, node)| node.exact())
            .filter_map(|(added, node)| {
                let (distinct_lhs, distinct_lhs_rhs) = node.counts();
                let confidence = if distinct_lhs_rhs == 0 {
                    1.0
                } else {
                    distinct_lhs as f64 / distinct_lhs_rhs as f64
                };
                let measures = Measures {
                    distinct_lhs,
                    distinct_lhs_rhs,
                    distinct_rhs,
                    confidence,
                    goodness: distinct_lhs as i64 - distinct_rhs as i64,
                };
                if self.config.goodness_threshold.is_some_and(|thr| measures.abs_goodness() > thr) {
                    return None;
                }
                let repair =
                    Repair { fd: self.fd.with_lhs_attrs(added), added: added.clone(), measures };
                Some((added.len(), measures.abs_goodness(), added.clone(), repair))
            })
            .collect();
        ranked
            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)).then_with(|| a.2.cmp(&b.2)));
        self.proposals = ranked.into_iter().map(|(_, _, _, r)| r).collect();
        if self.config.mode == SearchMode::FindFirst {
            self.proposals.truncate(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::repair_fd;
    use evofd_storage::{relation_of_strs, Value};

    /// Batch-vs-index oracle: proposals must match `repair_fd` exactly
    /// (count, order, added sets, measures).
    fn assert_matches_batch(rel: &Relation, index: &RepairIndex) {
        let batch = repair_fd(rel, index.fd(), index.config());
        match batch {
            Err(_) => {
                // FD satisfied: the advisor layer drops the index before
                // this comparison; nothing to check here.
            }
            Ok(search) => {
                assert!(!search.truncated, "oracle must not truncate");
                assert_eq!(index.proposals().len(), search.repairs.len(), "proposal count");
                for (ours, theirs) in index.proposals().iter().zip(&search.repairs) {
                    assert_eq!(ours.added, theirs.added);
                    assert_eq!(ours.fd, theirs.fd);
                    assert_eq!(ours.measures, theirs.measures);
                }
            }
        }
    }

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["D", "M", "P", "A", "U"],
            &[
                &["d1", "m1", "p1", "a1", "u1"],
                &["d1", "m1", "p1", "a1", "u2"],
                &["d1", "m2", "p2", "a2", "u3"],
                &["d2", "m3", "p3", "a3", "u4"],
                &["d2", "m3", "p4", "a3", "u5"],
            ],
        )
        .unwrap()
    }

    fn srow(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|v| Value::str(*v)).collect()
    }

    #[test]
    fn build_matches_batch_search() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let rows: Vec<usize> = (0..r.row_count()).collect();
        for config in [RepairConfig::find_all(), RepairConfig::find_first()] {
            let index = RepairIndex::build(&r, &rows, fd.clone(), config);
            assert_matches_batch(&r, &index);
        }
        let all = RepairIndex::build(&r, &rows, fd, RepairConfig::find_all());
        assert_eq!(all.proposals().len(), 3, "M, P and U each repair D -> A");
        assert_eq!(all.proposals()[0].added.indices(), vec![1], "M (g = 0) ranks first");
    }

    #[test]
    fn goodness_threshold_and_max_added_respected() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let rows: Vec<usize> = (0..r.row_count()).collect();
        let mut cfg = RepairConfig::find_all();
        cfg.goodness_threshold = Some(0);
        let index = RepairIndex::build(&r, &rows, fd.clone(), cfg);
        assert_matches_batch(&r, &index);
        assert!(index.proposals().iter().all(|p| p.measures.abs_goodness() == 0));

        let mut cfg = RepairConfig::find_all();
        cfg.max_added = 1;
        let index = RepairIndex::build(&r, &rows, fd, cfg);
        assert_matches_batch(&r, &index);
    }

    #[test]
    fn update_tracks_appends_and_tombstones() {
        // Simulate the live-relation protocol: appended rows at the tail,
        // deletes only tombstone (the index never reads dead rows again).
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let mut live: Vec<usize> = (0..r.row_count()).collect();
        let mut index = RepairIndex::build(&r, &live, fd, RepairConfig::find_all());

        // Append a row that breaks the M repair: (d1, m1) now maps to a2.
        let mut grown = r.clone();
        grown.append_rows([srow(&["d1", "m1", "p9", "a2", "u6"])]).unwrap();
        live.push(5);
        let out = index.update(&grown, &[], 5..6, || live.clone());
        assert_eq!(out, IndexOutcome::Incremental);
        assert_matches_batch(&grown, &index);
        assert!(
            index.proposals().iter().all(|p| p.added.indices() != vec![1]),
            "M alone no longer repairs"
        );

        // Tombstone that row again: M comes back.
        live.pop();
        let out = index.update(&grown, &[5], 6..6, || live.clone());
        assert_eq!(out, IndexOutcome::Incremental);
        let canon = grown.gather(&live);
        assert_matches_batch(&canon, &index);
        assert_eq!(index.proposals()[0].added.indices(), vec![1]);
    }

    #[test]
    fn exactness_flip_grows_and_prunes_the_lattice() {
        // X -> Y needs {A, B} while both A and B alone stay inexact; then
        // deleting rows makes A alone exact, pruning the deeper node.
        let r = relation_of_strs(
            "t",
            &["X", "A", "B", "Y"],
            &[
                &["x", "a1", "b1", "y1"],
                &["x", "a1", "b2", "y2"],
                &["x", "a2", "b1", "y3"],
                &["x", "a2", "b2", "y4"],
            ],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let mut live: Vec<usize> = (0..r.row_count()).collect();
        let mut index = RepairIndex::build(&r, &live, fd, RepairConfig::find_all());
        assert_matches_batch(&r, &index);
        assert_eq!(index.proposals().len(), 1, "only {{A, B}} repairs");
        let deep_nodes = index.node_count();
        assert!(deep_nodes > 2, "lattice went past the seeds");

        // Remove the rows that made A and B ambiguous: both seeds become
        // exact repairs on their own, so the {A, B} branch is no longer
        // reachable and gets pruned.
        live.retain(|&row| row != 1 && row != 2);
        index.update(&r, &[1, 2], 4..4, || live.clone());
        let canon = r.gather(&live);
        assert_matches_batch(&canon, &index);
        assert_eq!(index.proposals().len(), 2, "A and B each repair now");
        assert_eq!(index.proposals()[0].added.indices(), vec![1]);
        assert!(index.stats().nodes_pruned > 0, "orphaned branch pruned");
    }

    #[test]
    fn pool_change_forces_rebuild() {
        use evofd_storage::{DataType, Field, Schema};
        let schema = Schema::new(
            "t",
            vec![
                Field::new("X", DataType::Str),
                Field::new("A", DataType::Str),
                Field::new("Y", DataType::Str),
            ],
        )
        .unwrap()
        .into_shared();
        let mut r =
            Relation::from_rows(schema, vec![srow(&["x", "a1", "y1"]), srow(&["x", "a2", "y2"])])
                .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let mut live: Vec<usize> = vec![0, 1];
        let mut index = RepairIndex::build(&r, &live, fd, RepairConfig::find_all());
        assert_eq!(index.pool().indices(), vec![1]);

        // A NULL lands in A: the pool empties, the index rebuilds.
        r.append_rows([vec![Value::str("x"), Value::Null, Value::str("y3")]]).unwrap();
        live.push(2);
        let out = index.update(&r, &[], 2..3, || live.clone());
        assert_eq!(out, IndexOutcome::Rebuilt);
        assert!(index.pool().is_empty());
        assert!(index.proposals().is_empty());
        assert_matches_batch(&r, &index);

        // The NULL row leaves again: A re-enters the pool.
        live.pop();
        let out = index.update(&r, &[2], 3..3, || live.clone());
        assert_eq!(out, IndexOutcome::Rebuilt);
        assert_eq!(index.pool().indices(), vec![1]);
        let canon = r.gather(&live);
        assert_matches_batch(&canon, &index);
    }

    #[test]
    fn max_expansions_caps_the_lattice() {
        // X -> Y over a wide pool where nothing single-attribute repairs:
        // an uncapped walk would enumerate the whole subset lattice.
        let names: Vec<String> =
            std::iter::once("X".to_string()).chain((0..8).map(|i| format!("A{i}"))).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        // A0 (the consequent) splits rows 0-2 vs 3-5 while every pool
        // column only separates even from odd rows — no subset of the
        // pool ever determines A0, so the walk would visit all 2^7 - 1
        // candidate sets without the cap.
        let rows: Vec<Vec<String>> = (0..6)
            .map(|r| {
                std::iter::once("x".to_string())
                    .chain(std::iter::once(format!("{}", r / 3)))
                    .chain((1..8).map(move |_| format!("{}", r % 2)))
                    .collect()
            })
            .collect();
        let row_refs: Vec<Vec<&str>> =
            rows.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
        let row_slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
        let r = relation_of_strs("t", &name_refs, &row_slices).unwrap();
        let fd = Fd::parse(r.schema(), "X -> A0").unwrap();
        let live: Vec<usize> = (0..r.row_count()).collect();

        let mut cfg = RepairConfig::find_all();
        cfg.max_expansions = 10;
        let index = RepairIndex::build(&r, &live, fd.clone(), cfg);
        assert!(index.truncated(), "the cap must have been hit");
        assert!(index.node_count() <= 10, "lattice bounded: {}", index.node_count());

        // The uncapped walk on the same input explores more (and is the
        // equal-to-batch configuration the equivalence tests exercise).
        let full = RepairIndex::build(&r, &live, fd, RepairConfig::find_all());
        assert!(!full.truncated());
        assert!(full.node_count() > 10);
        assert_matches_batch(&r, &full);
    }

    #[test]
    fn empty_relation_and_empty_pool_are_harmless() {
        let r = relation_of_strs("t", &["X", "Y"], &[&["x", "y1"], &["x", "y2"]]).unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let index = RepairIndex::build(&r, &[0, 1], fd.clone(), RepairConfig::find_all());
        assert!(index.pool().is_empty(), "no attributes outside the FD");
        assert!(index.proposals().is_empty());
        let empty = RepairIndex::build(&r, &[], fd, RepairConfig::find_all());
        assert!(empty.proposals().is_empty());
    }
}
