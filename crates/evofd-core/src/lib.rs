//! # evofd-core
//!
//! The confidence-based (CB) method of *"Semi-automatic support for
//! evolving functional dependencies"* (Mazuran, Quintarelli, Tanca,
//! Ugolini — EDBT 2016): detect functional dependencies violated by the
//! current data and evolve them by adding a minimal set of attributes to
//! their antecedent, ranked by **confidence** and **goodness**.
//!
//! * [`fd`] — FD syntax/semantics (Definitions 1–2), parsing, decomposition;
//! * [`measures`] — confidence, goodness, ε_CB (Definition 3, §5);
//! * [`clustering`] — FDs as functions between clusterings (Definitions 5–6);
//! * [`mod@closure`] — Armstrong reasoning: closures, implication, minimal cover,
//!   candidate keys;
//! * [`ordering`] — multi-FD repair ordering (§4.1);
//! * [`candidates`] — `ExtendByOne` candidate ranking (§4.2, Algorithm 2);
//! * [`repair`] — the `Extend` best-first search and `FindFDRepairs`
//!   (§4.3–4.4, Algorithms 1 & 3), find-first/find-all modes, goodness
//!   threshold;
//! * [`repair_index`] — the repair search as a resumable index whose
//!   candidate scores are maintained from row-level deltas;
//! * [`fastkey`] — the shared group-key machinery (fast hasher, inline
//!   and packed keys, tiered per-group counts) behind the repair index
//!   and the incremental validator's trackers;
//! * [`advisor`] — the semi-automatic designer loop;
//! * [`mod@violations`] — the tuple-level evidence behind each violation;
//! * [`mod@validate`] — FD validation reports;
//! * [`discovery`] — a TANE-style levelwise FD miner (the §2 alternative);
//! * [`cfd`] — conditional FDs: evolving by *restricting scope* (§7);
//! * [`normalize`] — BCNF analysis and lossless decomposition;
//! * [`report`] — paper-style text tables and duration formatting.

#![warn(missing_docs)]

pub mod advisor;
pub mod candidates;
pub mod cfd;
pub mod closure;
pub mod clustering;
pub mod discovery;
pub mod error;
pub mod fastkey;
pub mod fd;
pub mod measures;
pub mod normalize;
pub mod ordering;
pub mod repair;
pub mod repair_index;
pub mod report;
pub mod validate;
pub mod violations;

pub use advisor::{AdvisorSession, AuditEvent, FdState};
pub use candidates::{candidate_pool, extend_by_one, extend_by_one_shared, Candidate};
pub use cfd::{condition_repairs, Cfd, ConditionRepair, Pattern};
pub use closure::{
    candidate_keys, closure, determines, equivalent, implies, minimal_cover, reduce_determined,
};
pub use clustering::{Clustering, FdClusterView};
pub use discovery::{discover_fds, DiscoveredFd, DiscoveryConfig, DiscoveryResult};
pub use error::{FdError, Result};
pub use fastkey::{CodeHasher, FastMap, GroupRhs, Key, KeyMap};
pub use fd::Fd;
pub use measures::{confidence, epsilon_cb, goodness, is_satisfied, Measures};
pub use normalize::{bcnf_decompose, bcnf_violations, is_bcnf, is_superkey, Fragment};
pub use ordering::{conflict_score, order_fds, ConflictMode, RankedFd};
pub use repair::{
    find_fd_repairs, repair_fd, FdOutcome, Repair, RepairConfig, RepairSearch, SearchMode,
    SearchStats,
};
pub use repair_index::{IndexOutcome, IndexStats, RepairIndex};
pub use report::{format_confidence, format_duration, TextTable};
pub use validate::{validate, FdStatus, ValidationReport};
pub use violations::{violations, ViolationGroup, ViolationReport};
