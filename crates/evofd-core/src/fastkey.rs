//! Shared group-key machinery for the engine's count-map hot paths.
//!
//! [`crate::RepairIndex`] (PR 5) and the incremental validator's per-FD
//! trackers maintain the same kind of state: hash maps keyed by tuples of
//! dictionary codes, probed once per changed row. Three representation
//! choices dominate their cost and live here so both hot paths share
//! them:
//!
//! * [`CodeHasher`] — an FxHash-style multiplicative hasher replacing
//!   SipHash on every map ([`FastMap`]). Dictionary codes are already
//!   well distributed, so SipHash's DoS hardening only buys latency. The
//!   xorshift-multiply finalizer is load-bearing: without it the low
//!   bits — exactly the ones hashbrown picks buckets with — depend only
//!   on the last written word (one column's dictionary), which once piled
//!   19k keys into 86 buckets.
//! * [`Key`] — a code tuple stored inline up to [`INLINE_KEY`] codes
//!   (no heap traffic per row) and boxed beyond.
//! * [`packed_key`] — up to four sub-2^16 codes folded into one `u64`,
//!   shrinking map entries to cache-line size. Eligibility (NULL-free
//!   columns, small dictionaries) is the *caller's* contract; the checked
//!   [`try_packed_key`] variant detects ineligible rows for callers that
//!   discover it mid-stream.
//! * [`GroupRhs`] — the One/Few/Many tiered consequent distribution of
//!   one antecedent group. Almost every group maps to a **single**
//!   Y-projection (that is what exactness means), so that case lives
//!   inline in the parent map entry: one probe, no nested allocation.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use evofd_storage::{AttrId, Relation};

/// Codes a [`Key`] can hold inline — covers every `X∪S∪Y` tuple up to
/// eight attributes without touching the heap (the overwhelmingly common
/// case; wider keys spill to a boxed slice).
pub const INLINE_KEY: usize = 8;

/// A dictionary-code tuple used as a group key. NULL cells carry the
/// storage sentinel code, grouping exactly like `count_distinct`. Keys up
/// to [`INLINE_KEY`] codes are stored inline — the hot maintenance path
/// allocates nothing per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Key {
    /// Up to [`INLINE_KEY`] codes, zero-padded past `len` (Eq/Hash
    /// include `len`, so padding never aliases a shorter key).
    Inline {
        /// Number of meaningful codes.
        len: u8,
        /// The codes, zero-padded.
        codes: [u32; INLINE_KEY],
    },
    /// More than [`INLINE_KEY`] codes.
    Heap(Box<[u32]>),
}

impl Key {
    /// Build a key from an explicit code slice (snapshot import).
    pub fn from_codes(codes: &[u32]) -> Key {
        if codes.len() <= INLINE_KEY {
            let mut inline = [0u32; INLINE_KEY];
            inline[..codes.len()].copy_from_slice(codes);
            Key::Inline { len: codes.len() as u8, codes: inline }
        } else {
            Key::Heap(codes.into())
        }
    }

    /// The meaningful codes of this key, in attribute order.
    pub fn codes(&self) -> &[u32] {
        match self {
            Key::Inline { len, codes } => &codes[..*len as usize],
            Key::Heap(codes) => codes,
        }
    }
}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // Padding past `len` is always zero, so hashing the whole
            // inline array plus the length is collision-equivalent to
            // hashing the meaningful prefix — and branch-free.
            Key::Inline { len, codes } => {
                state.write_u8(*len);
                for &c in codes {
                    state.write_u32(c);
                }
            }
            Key::Heap(codes) => {
                state.write_u8(INLINE_KEY as u8 + 1); // cannot alias Inline
                for &c in codes.iter() {
                    state.write_u32(c);
                }
                state.write_u32(codes.len() as u32);
            }
        }
    }
}

/// A fast multiplicative hasher (FxHash-style) for code-keyed group
/// maps: dictionary codes are already well distributed, so the default
/// SipHash's DoS hardening only costs latency on this hot path.
#[derive(Debug, Default, Clone)]
pub struct CodeHasher {
    hash: u64,
}

impl CodeHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for CodeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // xorshift-multiply finalizer: in a plain multiplicative
        // accumulator the low bits — exactly the ones hashbrown uses for
        // bucket selection — depend only on the low bits of the last
        // write, which for packed code words can carry almost no entropy
        // (one column's dictionary). Fold the high half down twice so
        // every input bit reaches every bucket bit.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Hash map with the fast code hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<CodeHasher>>;
/// Hash map keyed by [`Key`] with the fast code hasher.
pub type KeyMap<V> = FastMap<Key, V>;

/// Fold up to four sub-2^16 codes into one word. The caller guarantees
/// eligibility (every column NULL-free with a sub-2^16 dictionary); use
/// [`try_packed_key`] when a row may violate it.
pub fn packed_key(rel: &Relation, attrs: &[AttrId], row: usize) -> u64 {
    let mut v = 0u64;
    for &a in attrs {
        let code = rel.column(a).code_at(row);
        debug_assert!(code < 1 << 16, "packed key saw a wide code");
        v = (v << 16) | code as u64;
    }
    v
}

/// [`packed_key`], detecting ineligible rows: `None` when any code does
/// not fit 16 bits — a dictionary that outgrew the bound, or a NULL cell
/// (the sentinel code has all high bits set). One branch per row.
#[inline]
pub fn try_packed_key(rel: &Relation, attrs: &[AttrId], row: usize) -> Option<u64> {
    let mut v = 0u64;
    let mut or = 0u32;
    for &a in attrs {
        let code = rel.column(a).code_at(row);
        or |= code;
        v = (v << 16) | (code & 0xFFFF) as u64;
    }
    if or >> 16 != 0 {
        return None;
    }
    Some(v)
}

/// Unfold a [`packed_key`] word back into its `len` codes — exact, since
/// packed codes are always sub-2^16.
pub fn unpack_key(v: u64, len: usize) -> Vec<u32> {
    (0..len).map(|i| ((v >> (16 * (len - 1 - i))) & 0xFFFF) as u32).collect()
}

/// The generic group key of a row: its dictionary codes over `attrs`.
pub fn key(rel: &Relation, attrs: &[AttrId], row: usize) -> Key {
    if attrs.len() <= INLINE_KEY {
        let mut codes = [0u32; INLINE_KEY];
        for (slot, &a) in codes.iter_mut().zip(attrs) {
            *slot = rel.column(a).code_at(row);
        }
        Key::Inline { len: attrs.len() as u8, codes }
    } else {
        Key::Heap(attrs.iter().map(|&a| rel.column(a).code_at(row)).collect())
    }
}

/// Distinct Y-projections above which a group's counts spill from the
/// linear-scanned [`GroupRhs::Few`] vector into a hash map.
pub const FEW_LIMIT: usize = 16;

/// How one antecedent group distributes over Y-projections. Almost every
/// group maps to a **single** Y-projection (that is what exactness
/// means), so that case is stored inline in the group map entry — one
/// probe, no inner allocation; groups with more spill to a linear vector
/// and, past [`FEW_LIMIT`], to a boxed count map. Generic over the key
/// representation: `u64` for packed keys (cache-line-sized entries),
/// [`Key`] otherwise.
#[derive(Debug, Clone)]
pub enum GroupRhs<K> {
    /// Exactly one distinct Y-projection in this group.
    One {
        /// The projection.
        rkey: K,
        /// Live rows carrying it.
        count: u32,
    },
    /// A handful of distinct Y-projections: contiguous, linear-scanned —
    /// one predictable memory access instead of a nested hash probe.
    Few(Vec<(K, u32)>),
    /// Beyond [`FEW_LIMIT`] distinct Y-projections.
    Many(Box<FastMap<K, u32>>),
}

impl<K: Hash + Eq + Clone> GroupRhs<K> {
    /// A fresh group holding one row of one projection.
    pub fn new(rkey: K) -> GroupRhs<K> {
        GroupRhs::One { rkey, count: 1 }
    }

    /// A fresh group holding `count` rows of one projection (bulk import).
    pub fn with_count(rkey: K, count: u32) -> GroupRhs<K> {
        GroupRhs::One { rkey, count }
    }

    /// Account one row; true iff `rkey` is a projection this group had
    /// not seen (a new distinct (X, Y) pair).
    pub fn insert(&mut self, rkey: &K) -> bool {
        self.insert_n(rkey, 1)
    }

    /// Account `n` rows of one projection at once (bulk import); true iff
    /// `rkey` is a projection this group had not seen.
    pub fn insert_n(&mut self, rkey: &K, n: u32) -> bool {
        match self {
            GroupRhs::One { rkey: existing, count } if existing == rkey => {
                *count += n;
                false
            }
            GroupRhs::One { rkey: existing, count } => {
                let few = vec![(existing.clone(), *count), (rkey.clone(), n)];
                *self = GroupRhs::Few(few);
                true
            }
            GroupRhs::Few(few) => {
                if let Some(slot) = few.iter_mut().find(|(k, _)| k == rkey) {
                    slot.1 += n;
                    false
                } else {
                    few.push((rkey.clone(), n));
                    if few.len() > FEW_LIMIT {
                        let m: FastMap<K, u32> = few.drain(..).collect();
                        *self = GroupRhs::Many(Box::new(m));
                    }
                    true
                }
            }
            GroupRhs::Many(m) => match m.entry(rkey.clone()) {
                Entry::Occupied(mut inner) => {
                    *inner.get_mut() += n;
                    false
                }
                Entry::Vacant(inner) => {
                    inner.insert(n);
                    true
                }
            },
        }
    }

    /// Un-account one row of `rkey` (which must be present); true iff its
    /// last row left (a distinct (X, Y) pair died). A group whose only
    /// projection dies stays representable ([`GroupRhs::is_empty`]) so
    /// the caller can drop the whole entry.
    pub fn remove(&mut self, rkey: &K) -> bool {
        match self {
            GroupRhs::One { count, .. } => {
                *count -= 1;
                *count == 0
            }
            GroupRhs::Few(few) => {
                let idx =
                    few.iter().position(|(k, _)| k == rkey).expect("pair exists for a tracked row");
                few[idx].1 -= 1;
                let gone = few[idx].1 == 0;
                if gone {
                    few.swap_remove(idx);
                }
                if few.len() == 1 {
                    let (k, n) = few.pop().expect("one entry");
                    *self = GroupRhs::One { rkey: k, count: n };
                }
                gone
            }
            GroupRhs::Many(m) => {
                let gone = match m.entry(rkey.clone()) {
                    Entry::Occupied(mut inner) => {
                        *inner.get_mut() -= 1;
                        if *inner.get() == 0 {
                            inner.remove();
                            true
                        } else {
                            false
                        }
                    }
                    Entry::Vacant(_) => unreachable!("pair exists for a tracked row"),
                };
                if m.len() == 1 {
                    let (k, n) = m.iter().next().expect("one entry");
                    *self = GroupRhs::One { rkey: k.clone(), count: *n };
                }
                gone
            }
        }
    }
}

impl<K> GroupRhs<K> {
    /// Number of distinct Y-projections currently in the group.
    pub fn distinct(&self) -> usize {
        match self {
            GroupRhs::One { count, .. } => usize::from(*count > 0),
            GroupRhs::Few(few) => few.len(),
            GroupRhs::Many(m) => m.len(),
        }
    }

    /// True when no live rows remain (only reachable through
    /// [`GroupRhs::remove`] draining a [`GroupRhs::One`]).
    pub fn is_empty(&self) -> bool {
        matches!(self, GroupRhs::One { count: 0, .. })
    }

    /// The largest per-projection row count (the `g3` plurality).
    pub fn max_count(&self) -> u32 {
        match self {
            GroupRhs::One { count, .. } => *count,
            GroupRhs::Few(few) => few.iter().map(|(_, n)| *n).max().unwrap_or(0),
            GroupRhs::Many(m) => m.values().copied().max().unwrap_or(0),
        }
    }

    /// Iterate `(projection, count)` pairs in arbitrary order.
    pub fn iter(&self) -> GroupRhsIter<'_, K> {
        match self {
            GroupRhs::One { rkey, count } => GroupRhsIter::One(Some((rkey, *count))),
            GroupRhs::Few(few) => GroupRhsIter::Few(few.iter()),
            GroupRhs::Many(m) => GroupRhsIter::Many(m.iter()),
        }
    }

    /// Rough heap bytes held beyond the parent map entry (the spilled
    /// [`GroupRhs::Few`] / [`GroupRhs::Many`] storage).
    pub fn spilled_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(K, u32)>();
        match self {
            GroupRhs::One { .. } => 0,
            GroupRhs::Few(few) => few.capacity() * entry,
            GroupRhs::Many(m) => m.capacity() * (entry + 8),
        }
    }
}

/// Iterator over a [`GroupRhs`]'s `(projection, count)` pairs.
pub enum GroupRhsIter<'a, K> {
    /// The single-projection tier.
    One(Option<(&'a K, u32)>),
    /// The linear tier.
    Few(std::slice::Iter<'a, (K, u32)>),
    /// The map tier.
    Many(std::collections::hash_map::Iter<'a, K, u32>),
}

impl<'a, K> Iterator for GroupRhsIter<'a, K> {
    type Item = (&'a K, u32);

    fn next(&mut self) -> Option<(&'a K, u32)> {
        match self {
            GroupRhsIter::One(slot) => slot.take(),
            GroupRhsIter::Few(it) => it.next().map(|(k, n)| (k, *n)),
            GroupRhsIter::Many(it) => it.next().map(|(k, n)| (k, *n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_key_round_trips_codes() {
        let k = Key::from_codes(&[3, 0, 7]);
        assert_eq!(k.codes(), &[3, 0, 7]);
        assert!(matches!(k, Key::Inline { len: 3, .. }));
        let wide: Vec<u32> = (0..12).collect();
        let k = Key::from_codes(&wide);
        assert_eq!(k.codes(), wide.as_slice());
        assert!(matches!(k, Key::Heap(_)));
    }

    #[test]
    fn packed_key_round_trips_and_detects_wide_codes() {
        // Packing is pure arithmetic over the codes; rebuild the word by
        // hand and compare against unpack.
        let v = (5u64 << 32) | 65535;
        assert_eq!(unpack_key(v, 3), vec![5, 0, 65535]);
        assert_eq!(unpack_key(0, 0), Vec::<u32>::new());
    }

    #[test]
    fn group_rhs_tiers_upgrade_and_downgrade() {
        let mut g: GroupRhs<u64> = GroupRhs::new(1);
        assert_eq!(g.distinct(), 1);
        assert!(!g.insert(&1), "same projection is not a new pair");
        assert!(g.insert(&2), "second projection upgrades One -> Few");
        assert!(matches!(g, GroupRhs::Few(_)));
        for k in 3..=(FEW_LIMIT as u64 + 1) {
            assert!(g.insert(&k));
        }
        assert!(matches!(g, GroupRhs::Many(_)), "past FEW_LIMIT spills to a map");
        assert_eq!(g.distinct(), FEW_LIMIT + 1);
        assert_eq!(g.max_count(), 2);
        for k in 2..=(FEW_LIMIT as u64 + 1) {
            assert!(g.remove(&k));
        }
        assert!(matches!(g, GroupRhs::One { .. }), "a single survivor downgrades to One");
        assert!(!g.remove(&1), "two rows of projection 1 remain");
        assert!(g.remove(&1));
        assert!(g.is_empty());
    }

    #[test]
    fn group_rhs_iterates_every_tier() {
        let mut g: GroupRhs<u64> = GroupRhs::new(7);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(&7, 1)]);
        g.insert(&9);
        let mut pairs: Vec<(u64, u32)> = g.iter().map(|(k, n)| (*k, n)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(7, 1), (9, 1)]);
        for k in 10..40 {
            g.insert(&k);
        }
        assert_eq!(g.iter().count(), 32);
    }
}
