//! FDs as functions between clusterings (Definitions 5–6, Section 3).
//!
//! This module makes the paper's cluster-level vocabulary executable:
//! homogeneity, completeness, proper association and well-defined
//! (bijective) functions between the clusterings `C_X` and `C_Y` induced by
//! an FD. The CB method itself never materialises clusters — it only counts
//! them — but these operations back the theory tests (Theorem 1) and the
//! entropy baseline.

use evofd_storage::{AttrSet, Partition, Relation};

use crate::fd::Fd;

/// An X-clustering: the partition of `r` induced by an attribute set `X`
/// (Definition 5), remembering which attributes induced it.
#[derive(Debug, Clone)]
pub struct Clustering {
    attrs: AttrSet,
    partition: Partition,
}

impl Clustering {
    /// Build the clustering `C_attrs` of `rel`.
    pub fn of(rel: &Relation, attrs: &AttrSet) -> Clustering {
        Clustering { attrs: attrs.clone(), partition: Partition::by_attrs(rel, attrs) }
    }

    /// The inducing attribute set.
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// The underlying row partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of classes `K`.
    pub fn n_classes(&self) -> usize {
        self.partition.n_classes()
    }

    /// The paper's *homogeneity*: every class of `self` is contained in a
    /// unique class of `other` (i.e. is *properly associated*,
    /// Definition 6).
    pub fn is_homogeneous_wrt(&self, other: &Clustering) -> bool {
        self.partition.is_refinement_of(other.partition())
    }

    /// The paper's *completeness* of `self` versus `other`: every class of
    /// `other` is contained in a unique class of `self`.
    pub fn is_complete_wrt(&self, other: &Clustering) -> bool {
        other.partition.is_refinement_of(&self.partition)
    }
}

/// The cluster-level view of an FD `X → Y` on an instance: the clusterings
/// `C_X`, `C_Y` and `C_XY` plus the function-ness predicates of Section 3.
#[derive(Debug, Clone)]
pub struct FdClusterView {
    /// `C_X`.
    pub lhs: Clustering,
    /// `C_Y`.
    pub rhs: Clustering,
    /// `C_XY` (the common refinement).
    pub both: Clustering,
}

impl FdClusterView {
    /// Materialise all three clusterings for `fd` over `rel`.
    pub fn of(rel: &Relation, fd: &Fd) -> FdClusterView {
        FdClusterView {
            lhs: Clustering::of(rel, fd.lhs()),
            rhs: Clustering::of(rel, fd.rhs()),
            both: Clustering::of(rel, &fd.attrs()),
        }
    }

    /// Section 3: `F` is satisfied iff `|C_XY| = |C_X|` — each X-class maps
    /// into exactly one Y-class.
    pub fn induces_function(&self) -> bool {
        self.both.n_classes() == self.lhs.n_classes()
    }

    /// The induced function (when it exists) is *injective* iff
    /// `|C_X| = |C_Y|`; together with the surjectivity every total FD map
    /// enjoys, this makes it bijective — the paper's "well-defined
    /// function" best case `{c = 1, g = 0}`.
    pub fn induces_bijection(&self) -> bool {
        self.induces_function() && self.lhs.n_classes() == self.rhs.n_classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    /// The paper's Figure 2 scenario in miniature.
    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["D", "M", "P", "A"],
            &[
                // D = district, M = municipal, P = phone, A = area code
                &["d1", "m1", "p1", "a1"],
                &["d1", "m1", "p1", "a1"],
                &["d1", "m2", "p2", "a2"],
                &["d2", "m3", "p3", "a3"],
                &["d2", "m3", "p4", "a3"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn violated_fd_is_not_a_function() {
        let r = rel();
        let f = Fd::parse(r.schema(), "D -> A").unwrap();
        let view = FdClusterView::of(&r, &f);
        assert!(!view.induces_function(), "d1 maps to a1 and a2");
    }

    #[test]
    fn adding_municipal_gives_bijection() {
        let r = rel();
        let f = Fd::parse(r.schema(), "D, M -> A").unwrap();
        let view = FdClusterView::of(&r, &f);
        assert!(view.induces_function());
        assert!(view.induces_bijection(), "3 DM-classes vs 3 A-classes");
    }

    #[test]
    fn adding_phone_gives_function_but_not_bijection() {
        let r = rel();
        let f = Fd::parse(r.schema(), "D, P -> A").unwrap();
        let view = FdClusterView::of(&r, &f);
        assert!(view.induces_function());
        assert!(!view.induces_bijection(), "4 DP-classes vs 3 A-classes");
    }

    #[test]
    fn homogeneity_matches_refinement() {
        let r = rel();
        let dm = Clustering::of(&r, &r.schema().attr_set(&["D", "M"]).unwrap());
        let a = Clustering::of(&r, &r.schema().attr_set(&["A"]).unwrap());
        assert!(dm.is_homogeneous_wrt(&a), "each DM-class inside one A-class");
        assert!(a.is_complete_wrt(&dm), "completeness is the converse view");
        let d = Clustering::of(&r, &r.schema().attr_set(&["D"]).unwrap());
        assert!(!d.is_homogeneous_wrt(&a));
    }

    #[test]
    fn homogeneity_plus_completeness_means_equal_partitions() {
        let r = rel();
        // M and P: m1<->{p1,p2}? m1 rows {0,1,2}? No: m1 rows {0,1}, m2 {2}, m3 {3,4}.
        // P classes: p1 {0,1}, p2 {2}, p3 {3}, p4 {4}.
        let m = Clustering::of(&r, &r.schema().attr_set(&["M"]).unwrap());
        let a = Clustering::of(&r, &r.schema().attr_set(&["A"]).unwrap());
        // A classes: a1 {0,1}, a2 {2}, a3 {3,4} — identical partition to M.
        assert!(m.is_homogeneous_wrt(&a));
        assert!(m.is_complete_wrt(&a));
        assert_eq!(m.n_classes(), a.n_classes());
    }

    #[test]
    fn cluster_view_counts_match_distinct() {
        use evofd_storage::count_distinct;
        let r = rel();
        let f = Fd::parse(r.schema(), "D -> A").unwrap();
        let view = FdClusterView::of(&r, &f);
        assert_eq!(view.lhs.n_classes(), count_distinct(&r, f.lhs()));
        assert_eq!(view.rhs.n_classes(), count_distinct(&r, f.rhs()));
        assert_eq!(view.both.n_classes(), count_distinct(&r, &f.attrs()));
    }
}
