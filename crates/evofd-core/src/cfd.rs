//! Conditional functional dependencies (CFDs) — the §7 "extend the method
//! to other kinds of constraints" direction, built on the same measures.
//!
//! A CFD `(X → Y, tp)` holds an FD only on the tuples matching a pattern
//! `tp` (constants or wildcards over a set of condition attributes). This
//! gives the designer a *second* way to evolve a violated FD, dual to the
//! paper's antecedent extension:
//!
//! * **extend** (the paper): `X → Y` becomes `XU → Y` on all tuples;
//! * **condition** (this module): `X → Y` becomes `(X → Y, B = b)` — the
//!   constraint retreats to the scope where it still describes reality.
//!
//! [`condition_repairs`] ranks single-attribute conditionings by the
//! fraction of tuples they keep governed, reusing confidence per scope.

use evofd_storage::{AttrId, DistinctCache, Partition, Relation, Value};

use crate::fd::Fd;
use crate::measures::Measures;

/// A single-tuple pattern: `attr = value` constraints (constants only;
/// unlisted attributes are wildcards).
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    conditions: Vec<(AttrId, Value)>,
}

impl Pattern {
    /// The empty (all-wildcard) pattern — matches every tuple.
    pub fn wildcard() -> Pattern {
        Pattern { conditions: Vec::new() }
    }

    /// A single-condition pattern.
    pub fn eq(attr: AttrId, value: Value) -> Pattern {
        Pattern { conditions: vec![(attr, value)] }
    }

    /// Add a condition (builder-style).
    pub fn and(mut self, attr: AttrId, value: Value) -> Pattern {
        self.conditions.push((attr, value));
        self
    }

    /// The conditions, in insertion order.
    pub fn conditions(&self) -> &[(AttrId, Value)] {
        &self.conditions
    }

    /// Does row `row` of `rel` match?
    pub fn matches(&self, rel: &Relation, row: usize) -> bool {
        self.conditions.iter().all(|(a, v)| rel.column(*a).value_at(row) == *v)
    }

    /// Row-selection mask over a relation.
    pub fn mask(&self, rel: &Relation) -> Vec<bool> {
        (0..rel.row_count()).map(|r| self.matches(rel, r)).collect()
    }

    /// Render with attribute names.
    pub fn display(&self, schema: &evofd_storage::Schema) -> String {
        if self.conditions.is_empty() {
            return "(true)".to_string();
        }
        let parts: Vec<String> = self
            .conditions
            .iter()
            .map(|(a, v)| format!("{} = {}", schema.attr_name(*a), v))
            .collect();
        parts.join(" AND ")
    }
}

/// A conditional FD: an embedded FD plus a pattern restricting its scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfd {
    /// The embedded FD `X → Y`.
    pub fd: Fd,
    /// The scope pattern `tp`.
    pub pattern: Pattern,
}

impl Cfd {
    /// Build a CFD.
    pub fn new(fd: Fd, pattern: Pattern) -> Cfd {
        Cfd { fd, pattern }
    }

    /// The tuples in scope.
    pub fn scope(&self, rel: &Relation) -> Relation {
        rel.filter(&self.pattern.mask(rel))
    }

    /// Measures of the embedded FD *within the scope*.
    pub fn measures(&self, rel: &Relation) -> Measures {
        let scoped = self.scope(rel);
        Measures::compute(&scoped, &self.fd, &mut DistinctCache::disabled())
    }

    /// Satisfaction: the FD holds on every matching tuple pair.
    pub fn is_satisfied(&self, rel: &Relation) -> bool {
        self.measures(rel).is_exact()
    }

    /// Fraction of the relation's tuples inside the scope (the CFD's
    /// *support*).
    pub fn support(&self, rel: &Relation) -> f64 {
        if rel.row_count() == 0 {
            return 0.0;
        }
        let kept = self.pattern.mask(rel).iter().filter(|&&m| m).count();
        kept as f64 / rel.row_count() as f64
    }

    /// Render as `(X -> Y, pattern)`.
    pub fn display(&self, schema: &evofd_storage::Schema) -> String {
        format!("({}, {})", self.fd.display(schema), self.pattern.display(schema))
    }
}

/// A candidate conditioning repair: restrict the violated FD to the
/// values of one attribute where it still holds.
#[derive(Debug, Clone)]
pub struct ConditionRepair {
    /// The condition attribute `B`.
    pub attr: AttrId,
    /// CFDs `(X → Y, B = b)` for every clean value `b`.
    pub clean_cfds: Vec<Cfd>,
    /// Fraction of tuples covered by the clean values (kept governed).
    pub coverage: f64,
    /// Number of values of `B` whose scope still violates the FD.
    pub dirty_values: usize,
}

/// For each candidate condition attribute (NULL-free, outside `XY`),
/// compute which of its values give a clean scope for `fd`, ranked by
/// coverage (descending) — "how much of the data can this constraint
/// still govern if we condition on B?".
pub fn condition_repairs(rel: &Relation, fd: &Fd) -> Vec<ConditionRepair> {
    let pool = crate::candidates::candidate_pool(rel, fd);
    let lhs_partition = Partition::by_attrs(rel, fd.lhs());
    let lhs_rhs_partition = lhs_partition.refine_by_attrs(rel, fd.rhs());
    let n = rel.row_count();

    let mut out: Vec<ConditionRepair> = Vec::new();
    for attr in pool.iter() {
        let column = rel.column(attr);
        // For each value v of B: the scope σ_{B=v} is clean iff within it,
        // every lhs class maps to one rhs class. Detect per value: count
        // distinct (v, lhs) pairs vs distinct (v, lhs, rhs) triples.
        let by_value = Partition::by_attrs(rel, &evofd_storage::AttrSet::single(attr));
        let v_lhs = by_value.refine_by_codes(lhs_partition.labels());
        let v_lhs_rhs = by_value.refine_by_codes(lhs_rhs_partition.labels());
        // A value is dirty iff one of its (v, lhs) groups splits in
        // (v, lhs, rhs). Mark dirty values via the rows where the finer
        // partition has more classes — detect by per-value counting.
        let mut pair_count = vec![0u32; by_value.n_classes()];
        let mut triple_count = vec![0u32; by_value.n_classes()];
        let mut seen_pair = vec![false; v_lhs.n_classes()];
        let mut seen_triple = vec![false; v_lhs_rhs.n_classes()];
        for row in 0..n {
            let v = by_value.labels()[row] as usize;
            let p = v_lhs.labels()[row] as usize;
            let t = v_lhs_rhs.labels()[row] as usize;
            if !seen_pair[p] {
                seen_pair[p] = true;
                pair_count[v] += 1;
            }
            if !seen_triple[t] {
                seen_triple[t] = true;
                triple_count[v] += 1;
            }
        }
        let mut clean_rows = 0usize;
        let mut dirty_values = 0usize;
        let mut clean_value_labels: Vec<bool> = vec![false; by_value.n_classes()];
        for v in 0..by_value.n_classes() {
            if pair_count[v] == triple_count[v] {
                clean_value_labels[v] = true;
            } else {
                dirty_values += 1;
            }
        }
        let mut representative: Vec<Option<usize>> = vec![None; by_value.n_classes()];
        for row in 0..n {
            let v = by_value.labels()[row] as usize;
            if clean_value_labels[v] {
                clean_rows += 1;
                if representative[v].is_none() {
                    representative[v] = Some(row);
                }
            }
        }
        let clean_cfds: Vec<Cfd> = representative
            .iter()
            .flatten()
            .map(|&row| Cfd::new(fd.clone(), Pattern::eq(attr, column.value_at(row))))
            .collect();
        let coverage = if n == 0 { 0.0 } else { clean_rows as f64 / n as f64 };
        out.push(ConditionRepair { attr, clean_cfds, coverage, dirty_values });
    }
    out.sort_by(|a, b| {
        b.coverage
            .total_cmp(&a.coverage)
            .then_with(|| a.dirty_values.cmp(&b.dirty_values))
            .then_with(|| a.attr.cmp(&b.attr))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    /// X -> Y holds for era = old, breaks for era = new.
    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["X", "Y", "Era"],
            &[
                &["a", "1", "old"],
                &["a", "1", "old"],
                &["b", "2", "old"],
                &["a", "9", "new"],
                &["a", "8", "new"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn pattern_matching() {
        let r = rel();
        let era = r.schema().resolve("Era").unwrap();
        let p = Pattern::eq(era, Value::str("old"));
        assert_eq!(p.mask(&r), vec![true, true, true, false, false]);
        assert!(Pattern::wildcard().matches(&r, 4));
        let both = Pattern::eq(era, Value::str("old"))
            .and(r.schema().resolve("X").unwrap(), Value::str("a"));
        assert_eq!(both.mask(&r), vec![true, true, false, false, false]);
        assert_eq!(both.display(r.schema()), "Era = old AND X = a");
        assert_eq!(Pattern::wildcard().display(r.schema()), "(true)");
    }

    #[test]
    fn cfd_satisfaction_within_scope() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        assert!(!fd.satisfied_naive(&r), "globally violated");
        let era = r.schema().resolve("Era").unwrap();
        let old = Cfd::new(fd.clone(), Pattern::eq(era, Value::str("old")));
        assert!(old.is_satisfied(&r), "holds on the old era");
        let new = Cfd::new(fd, Pattern::eq(era, Value::str("new")));
        assert!(!new.is_satisfied(&r), "broken on the new era");
        assert!((old.support(&r) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn wildcard_cfd_equals_plain_fd() {
        let r = rel();
        for text in ["X -> Y", "Y -> X", "X, Era -> Y"] {
            let fd = Fd::parse(r.schema(), text).unwrap();
            let cfd = Cfd::new(fd.clone(), Pattern::wildcard());
            assert_eq!(cfd.is_satisfied(&r), fd.satisfied_naive(&r), "{text}");
            assert_eq!(cfd.support(&r), 1.0);
        }
    }

    #[test]
    fn condition_repairs_rank_by_coverage() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let repairs = condition_repairs(&r, &fd);
        assert_eq!(repairs.len(), 1, "Era is the only candidate attribute");
        let era_repair = &repairs[0];
        assert_eq!(era_repair.attr, r.schema().resolve("Era").unwrap());
        assert_eq!(era_repair.dirty_values, 1, "new is dirty");
        assert_eq!(era_repair.clean_cfds.len(), 1, "old is clean");
        assert!((era_repair.coverage - 0.6).abs() < 1e-12);
        // The proposed CFD is indeed satisfied.
        for cfd in &era_repair.clean_cfds {
            assert!(cfd.is_satisfied(&r), "{}", cfd.display(r.schema()));
        }
    }

    #[test]
    fn condition_repairs_on_places() {
        // F2: Zip -> City, State is violated in the 10211 and 60415
        // scopes; conditioning on State keeps some coverage.
        let r = relation_of_strs(
            "t",
            &["Zip", "City", "State"],
            &[
                &["10211", "NY", "NY"],
                &["10211", "NY", "MA"],
                &["02215", "Boston", "MA"],
                &["60601", "Chicago", "IL"],
                &["60601", "Chicago", "IL"],
            ],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "Zip -> City").unwrap();
        // City is in the FD; State is the only condition candidate.
        let repairs = condition_repairs(&r, &fd);
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].coverage > 0.0);
        for cfd in &repairs[0].clean_cfds {
            assert!(cfd.is_satisfied(&r));
        }
    }

    #[test]
    fn fully_clean_attribute_has_full_coverage() {
        let r = relation_of_strs(
            "t",
            &["X", "Y", "B"],
            &[&["a", "1", "p"], &["a", "2", "q"], &["b", "3", "p"]],
        )
        .unwrap();
        // Conditioning on B: scope p = {(a,1),(b,3)} clean; scope q clean.
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let repairs = condition_repairs(&r, &fd);
        let b = &repairs[0];
        assert_eq!(b.dirty_values, 0);
        assert!((b.coverage - 1.0).abs() < 1e-12);
        assert_eq!(b.clean_cfds.len(), 2);
    }

    #[test]
    fn empty_relation_support() {
        let r = relation_of_strs("t", &["X", "Y"], &[]).unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let cfd = Cfd::new(fd, Pattern::wildcard());
        assert_eq!(cfd.support(&r), 0.0);
        assert!(cfd.is_satisfied(&r), "vacuously");
    }
}
