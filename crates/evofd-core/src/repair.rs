//! The repair search (Section 4.3–4.4, Algorithms 1 and 3).
//!
//! `Extend` explores multi-attribute repairs with a best-first queue
//! ordered by **increasing antecedent cardinality** and then **decreasing
//! candidate rank** (confidence desc, |goodness| asc). Because shorter
//! antecedents always pop first, the first exact FD popped is a *minimal*
//! repair — property-tested against brute-force subset enumeration.
//!
//! Two additions over the paper's pseudocode, both documented in DESIGN.md:
//!
//! * **visited-set deduplication** — `X ∪ {A, B}` is reachable as
//!   `(X+A)+B` and `(X+B)+A`; without a visited set the queue blows up
//!   factorially instead of exponentially. Dedup does not change results.
//! * **goodness threshold** (the §4.4 "currently investigating" extension)
//!   — an exact candidate whose |goodness| exceeds the threshold is *not*
//!   accepted (and not extended further: extending an exact FD can only
//!   keep it exact with equal-or-larger goodness). This is what stops a
//!   UNIQUE attribute from short-circuiting the search.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::time::{Duration, Instant};

use evofd_storage::{AttrSet, DistinctCache, Relation, SharedDistinctCache};

use crate::candidates::{candidate_pool, extend_by_one_shared, Candidate};
use crate::error::{FdError, Result};
use crate::fd::Fd;
use crate::measures::Measures;
use crate::ordering::{order_fds, ConflictMode, RankedFd};

/// Whether the search stops at the first repair or explores exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Stop at the first (minimal, best-ranked) repair — the mode behind
    /// the paper's Table 6 and Table 8.
    #[default]
    FindFirst,
    /// Enumerate every repair in the search space — Tables 5 and 7.
    FindAll,
}

/// Configuration for the repair search.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Stop condition.
    pub mode: SearchMode,
    /// Maximum number of attributes that may be *added* to the antecedent.
    /// Defaults to unlimited (bounded by the candidate pool).
    pub max_added: usize,
    /// §4.4 extension: maximum |goodness| an accepted repair may have.
    /// `None` disables the filter (paper default).
    pub goodness_threshold: Option<u64>,
    /// Safety cap on queue expansions; the search reports truncation.
    pub max_expansions: usize,
    /// Wall-clock budget; `None` = unlimited.
    pub time_limit: Option<Duration>,
    /// Conflict-score mode used when ordering multiple FDs.
    pub conflict_mode: ConflictMode,
    /// Memoise distinct counts (ablation switch; on by default).
    pub use_cache: bool,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            mode: SearchMode::FindFirst,
            max_added: usize::MAX,
            goodness_threshold: None,
            max_expansions: 1_000_000,
            time_limit: None,
            conflict_mode: ConflictMode::default(),
            use_cache: true,
        }
    }
}

impl RepairConfig {
    /// Exhaustive-search configuration (Tables 5/7).
    pub fn find_all() -> RepairConfig {
        RepairConfig { mode: SearchMode::FindAll, ..RepairConfig::default() }
    }

    /// First-repair configuration (Tables 6/8).
    pub fn find_first() -> RepairConfig {
        RepairConfig::default()
    }

    fn new_cache(&self) -> SharedDistinctCache {
        if self.use_cache {
            SharedDistinctCache::new()
        } else {
            SharedDistinctCache::disabled()
        }
    }
}

/// One accepted repair: the evolved FD and what was added.
#[derive(Debug, Clone)]
pub struct Repair {
    /// The evolved, exact FD `XU → Y`.
    pub fd: Fd,
    /// The added attribute set `U`.
    pub added: AttrSet,
    /// Measures of the evolved FD (confidence 1 by construction).
    pub measures: Measures,
}

/// Counters describing how much work a search did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Queue entries expanded (calls to `ExtendByOne`).
    pub expansions: usize,
    /// Candidates generated across all expansions.
    pub generated: usize,
    /// Candidates skipped because their antecedent was already enqueued.
    pub deduped: usize,
    /// Exact candidates rejected by the goodness threshold.
    pub rejected_by_goodness: usize,
    /// Distinct-count cache hits/misses.
    pub cache: evofd_storage::CacheStats,
}

/// Result of repairing a single FD.
#[derive(Debug, Clone)]
pub struct RepairSearch {
    /// The FD that was repaired.
    pub original: Fd,
    /// Measures of the original FD (confidence < 1).
    pub original_measures: Measures,
    /// Accepted repairs, in discovery order (minimal → larger; best rank
    /// first within a size).
    pub repairs: Vec<Repair>,
    /// Work counters.
    pub stats: SearchStats,
    /// True if the search hit `max_expansions` or the time limit.
    pub truncated: bool,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl RepairSearch {
    /// The minimal repair, if any was found (first discovered).
    pub fn best(&self) -> Option<&Repair> {
        self.repairs.first()
    }
}

/// Queue entry: ordered so that the `BinaryHeap` (a max-heap) pops the
/// entry with the smallest antecedent first, then the best rank.
struct QueueEntry {
    candidate: Candidate,
    added: AttrSet,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: `Greater` pops first. Prefer fewer added attributes,
        // then the paper's candidate rank, then a stable set order.
        other
            .added
            .len()
            .cmp(&self.added.len())
            .then_with(|| {
                self.candidate.measures.confidence.total_cmp(&other.candidate.measures.confidence)
            })
            .then_with(|| {
                other.candidate.measures.abs_goodness().cmp(&self.candidate.measures.abs_goodness())
            })
            .then_with(|| other.added.cmp(&self.added))
    }
}

/// Algorithm 3 (`Extend`) with Algorithm 1's exactness bookkeeping: find
/// repairs for a single violated FD.
///
/// Returns [`FdError::AlreadySatisfied`] if the FD is exact on `rel`.
pub fn repair_fd(rel: &Relation, fd: &Fd, config: &RepairConfig) -> Result<RepairSearch> {
    let cache = config.new_cache();
    let original_measures = Measures::compute_shared(rel, fd, &cache);
    if original_measures.is_exact() {
        return Err(FdError::AlreadySatisfied { fd: fd.display(rel.schema()) });
    }
    Ok(run_search(rel, fd, original_measures, config, cache))
}

fn run_search(
    rel: &Relation,
    fd: &Fd,
    original_measures: Measures,
    config: &RepairConfig,
    cache: SharedDistinctCache,
) -> RepairSearch {
    let start = Instant::now();
    let mut stats = SearchStats::default();
    let mut repairs: Vec<Repair> = Vec::new();
    let mut truncated = false;

    let pool = candidate_pool(rel, fd);
    let mut visited: HashSet<AttrSet> = HashSet::new();
    let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();

    // Seed: all one-attribute extensions (Algorithm 3, lines 1–2).
    stats.expansions += 1;
    for candidate in extend_by_one_shared(rel, fd, &pool, &cache) {
        let added = AttrSet::single(candidate.attr);
        visited.insert(added.clone());
        stats.generated += 1;
        queue.push(QueueEntry { candidate, added });
    }

    'search: while let Some(entry) = queue.pop() {
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                truncated = true;
                break 'search;
            }
        }
        let QueueEntry { candidate, added } = entry;

        if candidate.measures.is_exact() {
            let within_goodness = config
                .goodness_threshold
                .is_none_or(|thr| candidate.measures.abs_goodness() <= thr);
            if within_goodness {
                repairs.push(Repair {
                    fd: candidate.fd.clone(),
                    added: added.clone(),
                    measures: candidate.measures,
                });
                if config.mode == SearchMode::FindFirst {
                    break 'search;
                }
            } else {
                // Extending an exact FD keeps |π_XA| = |π_XAY| while the
                // goodness can only grow — dead end under the threshold.
                stats.rejected_by_goodness += 1;
            }
            continue;
        }

        // Not exact: extend further (Algorithm 3, lines 8–9).
        if added.len() >= config.max_added {
            continue;
        }
        if stats.expansions >= config.max_expansions {
            truncated = true;
            break 'search;
        }
        stats.expansions += 1;
        let remaining = pool.difference(candidate.fd.lhs());
        for next in extend_by_one_shared(rel, &candidate.fd, &remaining, &cache) {
            let next_added = added.with(next.attr);
            if !visited.insert(next_added.clone()) {
                stats.deduped += 1;
                continue;
            }
            stats.generated += 1;
            queue.push(QueueEntry { candidate: next, added: next_added });
        }
    }

    stats.cache = cache.stats();
    RepairSearch {
        original: fd.clone(),
        original_measures,
        repairs,
        stats,
        truncated,
        elapsed: start.elapsed(),
    }
}

/// Outcome of `FindFDRepairs` for one FD of the input set.
#[derive(Debug, Clone)]
pub struct FdOutcome {
    /// The FD with its rank (§4.1) and measures.
    pub ranked: RankedFd,
    /// `None` if the FD was already satisfied; otherwise the search result.
    pub search: Option<RepairSearch>,
}

impl FdOutcome {
    /// True iff the FD held on the instance.
    pub fn satisfied(&self) -> bool {
        self.search.is_none()
    }
}

/// Algorithm 1 (`FindFDRepairs`): order all FDs by rank, then repair each
/// violated one. Satisfied FDs are reported with `search = None`. The
/// per-FD searches are independent and fan out across the `mintpool`
/// width; outcomes come back in rank order either way.
pub fn find_fd_repairs(rel: &Relation, fds: &[Fd], config: &RepairConfig) -> Vec<FdOutcome> {
    let mut order_cache =
        if config.use_cache { DistinctCache::new() } else { DistinctCache::disabled() };
    let ranked = order_fds(rel, fds, config.conflict_mode, &mut order_cache);
    mintpool::par_map(&ranked, |ranked| {
        let search = if ranked.measures.is_exact() {
            None
        } else {
            let fd_cache = config.new_cache();
            Some(run_search(rel, &ranked.fd, ranked.measures, config, fd_cache))
        };
        FdOutcome { ranked: ranked.clone(), search }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    /// D -> A is violated; M repairs it with goodness 0, P with goodness 2;
    /// U is UNIQUE (would repair anything, worst goodness).
    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["D", "M", "P", "A", "U"],
            &[
                &["d1", "m1", "p1", "a1", "u1"],
                &["d1", "m1", "p1", "a1", "u2"],
                &["d1", "m2", "p2", "a2", "u3"],
                &["d2", "m3", "p3", "a3", "u4"],
                &["d2", "m3", "p4", "a3", "u5"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn find_first_returns_minimal_best_repair() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let search = repair_fd(&r, &fd, &RepairConfig::find_first()).unwrap();
        let best = search.best().expect("repair exists");
        assert_eq!(best.added.indices(), vec![1], "Municipal-like attribute wins");
        assert_eq!(best.measures.goodness, 0);
        assert!(best.measures.is_exact());
        assert_eq!(search.repairs.len(), 1);
    }

    #[test]
    fn find_all_enumerates_single_attr_repairs_first() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let search = repair_fd(&r, &fd, &RepairConfig::find_all()).unwrap();
        // M, P and U all repair with one attribute.
        let one_attr: Vec<_> = search.repairs.iter().filter(|rep| rep.added.len() == 1).collect();
        assert_eq!(one_attr.len(), 3);
        // Best-ranked first: M (g=0), then P (g=2), then U (g=4? |π_DU|=5-|π_A|=3 → 2).
        assert_eq!(search.repairs[0].added.indices(), vec![1]);
        // Every reported repair must be exact.
        assert!(search.repairs.iter().all(|rep| rep.measures.is_exact()));
    }

    #[test]
    fn already_satisfied_errors() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "M -> A").unwrap();
        assert!(fd.satisfied_naive(&r));
        assert!(matches!(
            repair_fd(&r, &fd, &RepairConfig::default()),
            Err(FdError::AlreadySatisfied { .. })
        ));
    }

    #[test]
    fn goodness_threshold_rejects_unique_attribute() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let mut cfg = RepairConfig::find_all();
        cfg.goodness_threshold = Some(0);
        let search = repair_fd(&r, &fd, &cfg).unwrap();
        assert!(
            search.repairs.iter().all(|rep| rep.measures.abs_goodness() == 0),
            "only bijective repairs accepted"
        );
        assert!(search.stats.rejected_by_goodness > 0);
    }

    #[test]
    fn max_added_limits_depth() {
        // FD needing two attributes: X -> Y where only {A, B} together work.
        let r = relation_of_strs(
            "t",
            &["X", "A", "B", "Y"],
            &[
                &["x", "a1", "b1", "y1"],
                &["x", "a1", "b2", "y2"],
                &["x", "a2", "b1", "y3"],
                &["x", "a2", "b2", "y4"],
            ],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let mut cfg = RepairConfig::find_first();
        cfg.max_added = 1;
        let search = repair_fd(&r, &fd, &cfg).unwrap();
        assert!(search.repairs.is_empty(), "no single attribute repairs this FD");
        cfg.max_added = 2;
        let search = repair_fd(&r, &fd, &cfg).unwrap();
        let best = search.best().expect("two attributes repair it");
        assert_eq!(best.added.len(), 2);
    }

    #[test]
    fn dedup_counts_duplicates() {
        let r = relation_of_strs(
            "t",
            &["X", "A", "B", "Y"],
            &[
                &["x", "a1", "b1", "y1"],
                &["x", "a1", "b2", "y2"],
                &["x", "a2", "b1", "y3"],
                &["x", "a2", "b2", "y4"],
            ],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let search = repair_fd(&r, &fd, &RepairConfig::find_all()).unwrap();
        assert!(search.stats.deduped > 0, "A+B and B+A collapse");
        assert_eq!(search.repairs.len(), 1, "exactly one repair: {{A,B}}");
        assert_eq!(search.repairs[0].added.len(), 2);
    }

    #[test]
    fn no_repair_possible_reports_empty() {
        // Y differs on rows identical everywhere else: nothing can repair.
        let r = relation_of_strs("t", &["X", "A", "Y"], &[&["x", "a", "y1"], &["x", "a", "y2"]])
            .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let search = repair_fd(&r, &fd, &RepairConfig::find_all()).unwrap();
        assert!(search.repairs.is_empty());
        assert!(!search.truncated);
    }

    #[test]
    fn expansion_cap_truncates() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> P").unwrap(); // hard: P near-unique
        let mut cfg = RepairConfig::find_all();
        cfg.max_expansions = 1;
        let search = repair_fd(&r, &fd, &cfg).unwrap();
        // With only the seed expansion allowed, any non-exact candidate
        // requiring further extension marks the search truncated.
        assert!(search.truncated || !search.repairs.is_empty());
    }

    #[test]
    fn find_fd_repairs_orders_and_skips_satisfied() {
        let r = rel();
        let fds = vec![
            Fd::parse(r.schema(), "M -> A").unwrap(), // satisfied
            Fd::parse(r.schema(), "D -> A").unwrap(), // violated
        ];
        let outcomes = find_fd_repairs(&r, &fds, &RepairConfig::find_first());
        assert_eq!(outcomes.len(), 2);
        // Violated FD has higher rank (ic > 0), so it comes first.
        assert!(!outcomes[0].satisfied());
        assert!(outcomes[1].satisfied());
        assert!(outcomes[0].search.as_ref().unwrap().best().is_some());
    }

    #[test]
    fn cache_ablation_changes_stats_not_results() {
        let r = rel();
        let fd = Fd::parse(r.schema(), "D -> A").unwrap();
        let with_cache = repair_fd(&r, &fd, &RepairConfig::find_all()).unwrap();
        let mut cfg = RepairConfig::find_all();
        cfg.use_cache = false;
        let without = repair_fd(&r, &fd, &cfg).unwrap();
        assert_eq!(with_cache.repairs.len(), without.repairs.len());
        assert_eq!(
            with_cache.repairs.iter().map(|x| x.fd.clone()).collect::<Vec<_>>(),
            without.repairs.iter().map(|x| x.fd.clone()).collect::<Vec<_>>()
        );
        assert_eq!(without.stats.cache.hits, 0);
    }

    #[test]
    fn first_repair_is_minimal() {
        // Brute-force check on a relation where the minimal repair needs 2
        // attributes but a 3-attribute superset also works.
        let r = relation_of_strs(
            "t",
            &["X", "A", "B", "C", "Y"],
            &[
                &["x", "a1", "b1", "c1", "y1"],
                &["x", "a1", "b2", "c2", "y2"],
                &["x", "a2", "b1", "c3", "y3"],
                &["x", "a2", "b2", "c4", "y4"],
            ],
        )
        .unwrap();
        let fd = Fd::parse(r.schema(), "X -> Y").unwrap();
        let search = repair_fd(&r, &fd, &RepairConfig::find_first()).unwrap();
        let best = search.best().unwrap();
        // C alone is unique → single-attribute repair exists; minimal = 1.
        assert_eq!(best.added.len(), 1);
    }
}
