//! Levelwise FD discovery (a TANE-style miner on partition refinement).
//!
//! Section 2 of the paper discusses the alternative to repairing declared
//! FDs: *discover* every dependency that holds on the instance and then
//! relax the obsolete ones — and argues it is "rather impractical" when
//! the FDs were designer-specified, both for efficiency and because the
//! discovered set "not always include\[s\] extensions of the ones specified
//! by the designer". This module makes that claim testable: a levelwise
//! miner over the same storage substrate, used by the
//! `discovery_vs_repair` benchmark.
//!
//! The miner walks the attribute-set lattice level by level. `X → A`
//! holds iff `|π_X| = |π_XA|` (the same count identity the CB method
//! uses); minimality pruning discards any candidate whose antecedent
//! contains an already-found determinant of the same consequent, and key
//! pruning stops extending superkeys.
//!
//! Lattice nodes of one level are scored **in parallel** over a shared
//! count cache: within a level no discovery can prune another (equal-size
//! antecedents are never strict subsets of each other), so per-node work
//! only depends on previous levels and the nodes fan out freely. Results
//! merge back in levelwise order, yielding the same mined FD list as the
//! sequential walk; at width 1 the original sequential code runs verbatim.

use std::time::{Duration, Instant};

use evofd_storage::{AttrId, AttrSet, DistinctCache, Relation, SharedDistinctCache};

use crate::fd::Fd;
use crate::measures::Measures;

/// Configuration for the miner.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Maximum antecedent size explored.
    pub max_lhs: usize,
    /// Minimum confidence for a dependency to be reported. `1.0` mines
    /// exact FDs; lower values mine approximate FDs (Definition 4).
    pub min_confidence: f64,
    /// Hard cap on reported FDs (the lattice is exponential).
    pub max_results: usize,
    /// Restrict mining to these attributes (`None` = all NULL-free ones).
    pub attributes: Option<AttrSet>,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig { max_lhs: 3, min_confidence: 1.0, max_results: 10_000, attributes: None }
    }
}

/// One mined dependency.
#[derive(Debug, Clone)]
pub struct DiscoveredFd {
    /// The dependency (single-attribute consequent).
    pub fd: Fd,
    /// Its measures on the instance.
    pub measures: Measures,
}

/// Outcome of a mining run.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// Minimal dependencies found, in discovery (levelwise) order.
    pub fds: Vec<DiscoveredFd>,
    /// Lattice nodes (antecedent sets) visited.
    pub nodes_visited: usize,
    /// Candidate FD checks performed.
    pub checks: usize,
    /// True if `max_results` stopped the run early.
    pub truncated: bool,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl DiscoveryResult {
    /// Does the mined set contain `fd` or a *generalisation* of it (same
    /// consequent, antecedent ⊆ `fd`'s)? This is the §2 question: would
    /// discover-then-relax even surface the designer's constraint?
    pub fn covers(&self, fd: &Fd) -> bool {
        self.fds
            .iter()
            .any(|d| d.fd.rhs().is_subset_of(fd.rhs()) && d.fd.lhs().is_subset_of(fd.lhs()))
    }

    /// Mined extensions of `fd`: same consequent, antecedent ⊇ `fd`'s —
    /// exactly the repairs the CB method would propose.
    pub fn extensions_of(&self, fd: &Fd) -> Vec<&DiscoveredFd> {
        self.fds
            .iter()
            .filter(|d| d.fd.rhs() == fd.rhs() && fd.lhs().is_subset_of(d.fd.lhs()))
            .collect()
    }
}

/// Mine minimal (approximate) FDs from an instance. Candidate validation
/// within each lattice level fans out across the `mintpool` width; at
/// width 1 the sequential walk runs unchanged (bit-identical results and
/// work counters).
pub fn discover_fds(rel: &Relation, config: &DiscoveryConfig) -> DiscoveryResult {
    if mintpool::threads() <= 1 {
        discover_fds_sequential(rel, config)
    } else {
        discover_fds_parallel(rel, config)
    }
}

fn discover_fds_sequential(rel: &Relation, config: &DiscoveryConfig) -> DiscoveryResult {
    let start = Instant::now();
    let mut cache = DistinctCache::new();
    let attrs: Vec<AttrId> = match &config.attributes {
        Some(set) => set.iter().collect(),
        None => rel.non_null_attrs().iter().collect(),
    };
    let n_rows = rel.row_count();

    let mut result = DiscoveryResult {
        fds: Vec::new(),
        nodes_visited: 0,
        checks: 0,
        truncated: false,
        elapsed: Duration::ZERO,
    };

    // found[rhs attr] = list of minimal determinant sets already reported.
    let mut found: Vec<(AttrSet, AttrId)> = Vec::new();
    let is_minimal = |found: &[(AttrSet, AttrId)], lhs: &AttrSet, rhs: AttrId| {
        !found.iter().any(|(l, r)| *r == rhs && l.is_subset_of(lhs))
    };

    // Level 1 antecedents: single attributes. Levels grow by extension
    // with a strictly larger attribute id (each set generated once).
    let mut level: Vec<AttrSet> = attrs.iter().map(|&a| AttrSet::single(a)).collect();

    'levels: for _size in 1..=config.max_lhs {
        let mut next_level: Vec<AttrSet> = Vec::new();
        for lhs in &level {
            result.nodes_visited += 1;
            let lhs_count = cache.count(rel, lhs);
            let lhs_is_key = lhs_count == n_rows && n_rows > 0;
            for &rhs in &attrs {
                if lhs.contains(rhs) {
                    continue;
                }
                if !is_minimal(&found, lhs, rhs) {
                    continue;
                }
                result.checks += 1;
                let fd = Fd::new(lhs.clone(), AttrSet::single(rhs)).expect("non-empty rhs");
                let measures = Measures::compute(rel, &fd, &mut cache);
                if measures.confidence >= config.min_confidence {
                    found.push((lhs.clone(), rhs));
                    result.fds.push(DiscoveredFd { fd, measures });
                    if result.fds.len() >= config.max_results {
                        result.truncated = true;
                        break 'levels;
                    }
                }
            }
            // Key pruning: a superkey determines everything already.
            if !lhs_is_key {
                let max_attr = lhs.iter().last().map(|a| a.0).unwrap_or(0);
                for &a in &attrs {
                    if a.0 > max_attr {
                        next_level.push(lhs.with(a));
                    }
                }
            }
        }
        level = next_level;
        if level.is_empty() {
            break;
        }
    }

    result.elapsed = start.elapsed();
    result
}

/// The parallel miner: one fan-out per lattice level.
fn discover_fds_parallel(rel: &Relation, config: &DiscoveryConfig) -> DiscoveryResult {
    let start = Instant::now();
    let cache = SharedDistinctCache::new();
    let attrs: Vec<AttrId> = match &config.attributes {
        Some(set) => set.iter().collect(),
        None => rel.non_null_attrs().iter().collect(),
    };
    let n_rows = rel.row_count();

    let mut result = DiscoveryResult {
        fds: Vec::new(),
        nodes_visited: 0,
        checks: 0,
        truncated: false,
        elapsed: Duration::ZERO,
    };

    let mut found: Vec<(AttrSet, AttrId)> = Vec::new();
    let is_minimal = |found: &[(AttrSet, AttrId)], lhs: &AttrSet, rhs: AttrId| {
        !found.iter().any(|(l, r)| *r == rhs && l.is_subset_of(lhs))
    };

    /// What one lattice node contributes, computed off-thread.
    struct NodeEval {
        lhs_is_key: bool,
        checks: usize,
        passing: Vec<(AttrId, Fd, Measures)>,
    }

    let mut level: Vec<AttrSet> = attrs.iter().map(|&a| AttrSet::single(a)).collect();

    'levels: for _size in 1..=config.max_lhs {
        // Score every node of this level concurrently against the
        // pre-level `found` set. Equal-size antecedents are never strict
        // subsets of each other, so in-level discoveries cannot prune
        // in-level candidates — the snapshot is equivalent to the
        // sequential walk's incremental updates.
        let found_snapshot = &found;
        let evals: Vec<NodeEval> = mintpool::par_map(&level, |lhs| {
            let lhs_count = cache.count(rel, lhs);
            let lhs_is_key = lhs_count == n_rows && n_rows > 0;
            let mut checks = 0;
            let mut passing = Vec::new();
            for &rhs in &attrs {
                if lhs.contains(rhs) {
                    continue;
                }
                if !is_minimal(found_snapshot, lhs, rhs) {
                    continue;
                }
                checks += 1;
                let fd = Fd::new(lhs.clone(), AttrSet::single(rhs)).expect("non-empty rhs");
                let measures = Measures::compute_shared(rel, &fd, &cache);
                if measures.confidence >= config.min_confidence {
                    passing.push((rhs, fd, measures));
                }
            }
            NodeEval { lhs_is_key, checks, passing }
        });

        // Merge in levelwise order: same FD list and pruning frontier as
        // the sequential miner. (`checks` may exceed the sequential count
        // when `max_results` truncates mid-level — the level's nodes were
        // genuinely all evaluated.)
        let mut next_level: Vec<AttrSet> = Vec::new();
        for (lhs, eval) in level.iter().zip(&evals) {
            result.nodes_visited += 1;
            result.checks += eval.checks;
            for (rhs, fd, measures) in &eval.passing {
                // Re-checked against in-level updates: provably a no-op
                // (see above), kept as a guard on that argument.
                if !is_minimal(&found, lhs, *rhs) {
                    continue;
                }
                found.push((lhs.clone(), *rhs));
                result.fds.push(DiscoveredFd { fd: fd.clone(), measures: *measures });
                if result.fds.len() >= config.max_results {
                    result.truncated = true;
                    break 'levels;
                }
            }
            if !eval.lhs_is_key {
                let max_attr = lhs.iter().last().map(|a| a.0).unwrap_or(0);
                for &a in &attrs {
                    if a.0 > max_attr {
                        next_level.push(lhs.with(a));
                    }
                }
            }
        }
        level = next_level;
        if level.is_empty() {
            break;
        }
    }

    result.elapsed = start.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        // B -> C holds; A -> C holds only with B; D is a key.
        relation_of_strs(
            "t",
            &["A", "B", "C", "D"],
            &[
                &["a1", "b1", "c1", "d1"],
                &["a1", "b2", "c2", "d2"],
                &["a2", "b1", "c1", "d3"],
                &["a2", "b2", "c2", "d4"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn mines_exact_fds() {
        let r = rel();
        let result = discover_fds(&r, &DiscoveryConfig::default());
        let texts: Vec<String> = result.fds.iter().map(|d| d.fd.display(r.schema())).collect();
        assert!(texts.contains(&"[B] -> [C]".to_string()), "{texts:?}");
        assert!(texts.contains(&"[C] -> [B]".to_string()), "{texts:?}");
        // D is unique: it determines everything at level 1.
        assert!(texts.contains(&"[D] -> [A]".to_string()), "{texts:?}");
        assert!(!result.truncated);
        assert!(result.checks > 0 && result.nodes_visited > 0);
    }

    #[test]
    fn minimality_pruning() {
        let r = rel();
        let result = discover_fds(&r, &DiscoveryConfig::default());
        // [A, B] -> [C] must NOT be reported: [B] -> [C] is minimal.
        let ab_c = Fd::parse(r.schema(), "A, B -> C").unwrap();
        assert!(!result.fds.iter().any(|d| d.fd == ab_c), "non-minimal FD reported");
        // But the result still *covers* the designer FD A,B -> C.
        assert!(result.covers(&ab_c));
    }

    #[test]
    fn every_mined_fd_is_exact_and_minimal() {
        let r = rel();
        let result = discover_fds(&r, &DiscoveryConfig::default());
        for d in &result.fds {
            assert!(d.measures.is_exact(), "{}", d.fd.display(r.schema()));
            assert!(d.fd.satisfied_naive(&r));
            // Minimal: no reported generalisation.
            let generalisations = result
                .fds
                .iter()
                .filter(|other| {
                    other.fd.rhs() == d.fd.rhs()
                        && other.fd.lhs().is_subset_of(d.fd.lhs())
                        && other.fd != d.fd
                })
                .count();
            assert_eq!(generalisations, 0);
        }
    }

    #[test]
    fn approximate_mining_lowers_the_bar() {
        let r = relation_of_strs(
            "t",
            &["X", "Y"],
            &[&["x", "1"], &["x", "1"], &["x", "2"], &["z", "3"]],
        )
        .unwrap();
        let exact = discover_fds(&r, &DiscoveryConfig::default());
        assert!(!exact.fds.iter().any(|d| d.fd == Fd::parse(r.schema(), "X -> Y").unwrap()));
        let approx = discover_fds(
            &r,
            &DiscoveryConfig { min_confidence: 0.6, ..DiscoveryConfig::default() },
        );
        let xy = Fd::parse(r.schema(), "X -> Y").unwrap();
        assert!(approx.fds.iter().any(|d| d.fd == xy), "c = 2/3 ≥ 0.6");
    }

    #[test]
    fn max_lhs_bounds_levels() {
        let r = rel();
        let shallow =
            discover_fds(&r, &DiscoveryConfig { max_lhs: 1, ..DiscoveryConfig::default() });
        for d in &shallow.fds {
            assert_eq!(d.fd.lhs().len(), 1);
        }
    }

    #[test]
    fn max_results_truncates() {
        let r = rel();
        let tiny =
            discover_fds(&r, &DiscoveryConfig { max_results: 1, ..DiscoveryConfig::default() });
        assert_eq!(tiny.fds.len(), 1);
        assert!(tiny.truncated);
    }

    #[test]
    fn attribute_restriction() {
        let r = rel();
        let only_bc = r.schema().attr_set(&["B", "C"]).unwrap();
        let result = discover_fds(
            &r,
            &DiscoveryConfig { attributes: Some(only_bc.clone()), ..DiscoveryConfig::default() },
        );
        for d in &result.fds {
            assert!(d.fd.attrs().is_subset_of(&only_bc));
        }
        assert_eq!(result.fds.len(), 2, "B <-> C");
    }

    #[test]
    fn extensions_of_declared_fd() {
        // X -> Y is violated; mining must surface extensions XZ -> Y that
        // the repair engine would also find.
        let r = relation_of_strs(
            "t",
            &["X", "Z", "Y"],
            &[&["x", "z1", "y1"], &["x", "z2", "y2"], &["w", "z1", "y3"], &["w", "z2", "y4"]],
        )
        .unwrap();
        let declared = Fd::parse(r.schema(), "X -> Y").unwrap();
        let result = discover_fds(&r, &DiscoveryConfig::default());
        let exts = result.extensions_of(&declared);
        assert!(
            exts.iter().any(|d| d.fd == Fd::parse(r.schema(), "X, Z -> Y").unwrap()),
            "mined: {:?}",
            result.fds.iter().map(|d| d.fd.display(r.schema())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_miner_matches_sequential() {
        let r = rel();
        for config in [
            DiscoveryConfig::default(),
            DiscoveryConfig { min_confidence: 0.6, ..DiscoveryConfig::default() },
            DiscoveryConfig { max_lhs: 1, ..DiscoveryConfig::default() },
            DiscoveryConfig { max_results: 3, ..DiscoveryConfig::default() },
        ] {
            let seq = discover_fds_sequential(&r, &config);
            let par = discover_fds_parallel(&r, &config);
            assert_eq!(seq.fds.len(), par.fds.len(), "{config:?}");
            for (a, b) in seq.fds.iter().zip(&par.fds) {
                assert_eq!(a.fd, b.fd);
                assert_eq!(a.measures, b.measures);
            }
            assert_eq!(seq.truncated, par.truncated);
        }
    }

    #[test]
    fn empty_relation_mines_nothing_interesting() {
        let r = relation_of_strs("t", &["A", "B"], &[]).unwrap();
        let result = discover_fds(&r, &DiscoveryConfig::default());
        // All counts are 0; confidence is vacuously 1 — every FD "holds".
        // The miner reports the minimal level-1 dependencies only.
        for d in &result.fds {
            assert_eq!(d.fd.lhs().len(), 1);
        }
    }
}
