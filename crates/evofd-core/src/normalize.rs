//! Schema normalisation: superkey tests, BCNF violation detection and
//! lossless BCNF decomposition.
//!
//! Section 3 of the paper notes that in a schema in "a higher normal
//! form" the only non-trivial FDs determine candidate keys — and argues
//! that real (NoSQL-era) schemas are rarely normalised, which is what
//! makes FD evolution interesting. This module supplies the classical
//! machinery: after a designer evolves FDs, they can check what the new
//! dependency set means for the schema's normal form.

use evofd_storage::AttrSet;

use crate::closure::closure;
use crate::fd::Fd;

/// True iff `attrs` is a superkey of a schema with `arity` attributes
/// under `fds` (its closure covers every attribute).
pub fn is_superkey(attrs: &AttrSet, arity: usize, fds: &[Fd]) -> bool {
    closure(attrs, fds) == AttrSet::full(arity)
}

/// The FDs that violate BCNF: non-trivial `X → Y` where `X` is not a
/// superkey.
pub fn bcnf_violations(arity: usize, fds: &[Fd]) -> Vec<&Fd> {
    fds.iter().filter(|fd| !fd.is_trivial() && !is_superkey(fd.lhs(), arity, fds)).collect()
}

/// True iff the schema is in BCNF under `fds`.
pub fn is_bcnf(arity: usize, fds: &[Fd]) -> bool {
    bcnf_violations(arity, fds).is_empty()
}

/// One fragment of a decomposition: a subset of the original attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Attributes of the fragment (positions in the original schema).
    pub attrs: AttrSet,
}

/// Lossless BCNF decomposition (the classical analysis algorithm):
/// repeatedly split a fragment on a BCNF-violating FD `X → Y` into
/// `X ∪ Y` and `X ∪ (rest)`. Dependency preservation is *not* guaranteed
/// (it cannot be, in general).
///
/// `fds` are interpreted over the full original schema; FDs are projected
/// onto fragments via attribute closure.
pub fn bcnf_decompose(arity: usize, fds: &[Fd]) -> Vec<Fragment> {
    let mut fragments = vec![Fragment { attrs: AttrSet::full(arity) }];
    let mut result: Vec<Fragment> = Vec::new();

    while let Some(fragment) = fragments.pop() {
        match find_violation(&fragment.attrs, fds) {
            None => result.push(fragment),
            Some((lhs, rhs)) => {
                // Split into (X ∪ Y) and (fragment \ Y) — X stays in both.
                let first = lhs.union(&rhs);
                let second = fragment.attrs.difference(&rhs);
                debug_assert!(first.len() < fragment.attrs.len());
                debug_assert!(second.len() < fragment.attrs.len());
                fragments.push(Fragment { attrs: first });
                fragments.push(Fragment { attrs: second });
            }
        }
    }
    result.sort_by(|a, b| a.attrs.cmp(&b.attrs));
    result.dedup();
    // Drop fragments subsumed by others.
    let subsumed: Vec<bool> = result
        .iter()
        .map(|f| result.iter().any(|other| other != f && f.attrs.is_subset_of(&other.attrs)))
        .collect();
    result.into_iter().zip(subsumed).filter_map(|(f, s)| (!s).then_some(f)).collect()
}

/// Find a BCNF violation *within a fragment*: attributes `X ⊂ fragment`
/// with `X⁺ ∩ fragment ⊋ X` but `X⁺ ⊉ fragment`. Returns the violating
/// `(X, Y)` with `Y = (X⁺ ∩ fragment) \ X`.
fn find_violation(fragment: &AttrSet, fds: &[Fd]) -> Option<(AttrSet, AttrSet)> {
    // Check the antecedents of the given FDs restricted to the fragment —
    // sufficient for decomposition driven by a declared FD set.
    for fd in fds {
        if !fd.lhs().is_subset_of(fragment) {
            continue;
        }
        let closed = closure(fd.lhs(), fds);
        let inside = closed.intersection(fragment);
        let gained = inside.difference(fd.lhs());
        if gained.is_empty() {
            continue; // trivial within the fragment
        }
        if !fragment.is_subset_of(&closed) {
            return Some((fd.lhs().clone(), gained));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::Schema;

    fn schema() -> Schema {
        Schema::uniform("t", &["A", "B", "C", "D"], evofd_storage::DataType::Str).unwrap()
    }

    fn fd(s: &Schema, text: &str) -> Fd {
        Fd::parse(s, text).unwrap()
    }

    #[test]
    fn superkey_detection() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C"), fd(&s, "C -> D")];
        assert!(is_superkey(&s.attr_set(&["A"]).unwrap(), 4, &fds));
        assert!(!is_superkey(&s.attr_set(&["B"]).unwrap(), 4, &fds));
        assert!(is_superkey(&s.attr_set(&["A", "D"]).unwrap(), 4, &fds));
    }

    #[test]
    fn bcnf_violation_detection() {
        let s = schema();
        // A is the key; B -> C violates BCNF.
        let fds = vec![fd(&s, "A -> B, C, D"), fd(&s, "B -> C")];
        let violations = bcnf_violations(4, &fds);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0], &fds[1]);
        assert!(!is_bcnf(4, &fds));
    }

    #[test]
    fn bcnf_holds_for_key_based_fds() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B, C, D")];
        assert!(is_bcnf(4, &fds));
        assert!(bcnf_violations(4, &fds).is_empty());
    }

    #[test]
    fn trivial_fds_never_violate() {
        let s = schema();
        let fds = vec![fd(&s, "A, B -> B")];
        assert!(is_bcnf(4, &fds));
    }

    #[test]
    fn decompose_splits_on_violation() {
        let s = schema();
        // Key A; B -> C violates. Expect fragments {B, C} and {A, B, D}.
        let fds = vec![fd(&s, "A -> B, C, D"), fd(&s, "B -> C")];
        let fragments = bcnf_decompose(4, &fds);
        let sets: Vec<AttrSet> = fragments.iter().map(|f| f.attrs.clone()).collect();
        assert!(sets.contains(&s.attr_set(&["B", "C"]).unwrap()), "{sets:?}");
        assert!(sets.contains(&s.attr_set(&["A", "B", "D"]).unwrap()), "{sets:?}");
        // Every fragment is now in BCNF w.r.t. the projected dependencies.
        for f in &fragments {
            assert!(find_violation(&f.attrs, &fds).is_none());
        }
        // Lossless: the fragments cover all attributes.
        let mut union = AttrSet::empty();
        for f in &fragments {
            union = union.union(&f.attrs);
        }
        assert_eq!(union, AttrSet::full(4));
    }

    #[test]
    fn decompose_noop_for_bcnf_schema() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B, C, D")];
        let fragments = bcnf_decompose(4, &fds);
        assert_eq!(fragments.len(), 1);
        assert_eq!(fragments[0].attrs, AttrSet::full(4));
    }

    #[test]
    fn decompose_chain() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C"), fd(&s, "C -> D")];
        let fragments = bcnf_decompose(4, &fds);
        assert!(fragments.len() >= 2);
        for f in &fragments {
            assert!(find_violation(&f.attrs, &fds).is_none(), "{:?}", f.attrs);
        }
    }
}
