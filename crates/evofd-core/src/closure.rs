//! Armstrong-axiom reasoning over FD sets: attribute closure, implication,
//! minimal cover and candidate-key discovery.
//!
//! The paper treats the designer's FD set as given, but a production FD
//! toolkit needs schema-level reasoning: detecting redundant repairs,
//! checking whether an evolved FD is already implied, and finding keys
//! (UNIQUE attribute combinations the goodness criterion warns about).

use evofd_storage::{AttrId, AttrSet};

use crate::fd::Fd;

/// Compute the attribute closure `X⁺` of `attrs` under `fds`.
///
/// Standard fixpoint: repeatedly add the consequent of any FD whose
/// antecedent is contained in the current set. `O(|fds|²)` worst case,
/// plenty for schema-sized inputs.
pub fn closure(attrs: &AttrSet, fds: &[Fd]) -> AttrSet {
    let mut closed = attrs.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs().is_subset_of(&closed) && !fd.rhs().is_subset_of(&closed) {
                closed = closed.union(fd.rhs());
                changed = true;
            }
        }
    }
    closed
}

/// True iff `fds ⊨ fd` (the FD is logically implied): `Y ⊆ X⁺`.
pub fn implies(fds: &[Fd], fd: &Fd) -> bool {
    fd.rhs().is_subset_of(&closure(fd.lhs(), fds))
}

/// True iff `attrs ⊆ base⁺` under `fds` — `base` functionally determines
/// every attribute of `attrs`.
pub fn determines(fds: &[Fd], base: &AttrSet, attrs: &AttrSet) -> bool {
    attrs.is_subset_of(&closure(base, fds))
}

/// Greedy redundancy elimination for a grouping/dedup key: drop each
/// attribute (in the given order) that the *remaining* attributes still
/// determine under `fds`. The survivors determine every dropped
/// attribute, so grouping (or deduplicating) by the reduced list
/// partitions the relation identically — the planner's `GROUP BY X, Y →
/// GROUP BY X` rewrite when `X → Y` holds exactly.
///
/// Order-sensitive on purpose: earlier attributes win ties (mutually
/// determining pairs keep the first), matching the stable leftmost-key
/// choice a SQL planner wants.
pub fn reduce_determined(attrs: &[AttrId], fds: &[Fd]) -> Vec<AttrId> {
    let mut kept: Vec<AttrId> = attrs.to_vec();
    // Dedup first: a repeated attribute is trivially determined.
    let mut seen = AttrSet::empty();
    kept.retain(|&a| seen.insert(a));
    let mut i = kept.len();
    // Right-to-left so the leftmost of a mutually-determining pair is
    // examined last and therefore survives.
    while i > 0 {
        i -= 1;
        let rest =
            AttrSet::from_attrs(kept.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &a)| a));
        if !rest.is_empty() && closure(&rest, fds).contains(kept[i]) {
            kept.remove(i);
        }
    }
    kept
}

/// True iff two FD sets are logically equivalent (each implies the other).
pub fn equivalent(a: &[Fd], b: &[Fd]) -> bool {
    a.iter().all(|fd| implies(b, fd)) && b.iter().all(|fd| implies(a, fd))
}

/// Compute a minimal cover: singleton consequents, no redundant FDs, no
/// extraneous antecedent attributes. The result is equivalent to the
/// input.
pub fn minimal_cover(fds: &[Fd]) -> Vec<Fd> {
    // 1. Split consequents.
    let mut cover: Vec<Fd> = fds.iter().flat_map(Fd::decompose).collect();
    cover.sort();
    cover.dedup();

    // 2. Remove extraneous antecedent attributes: A ∈ X is extraneous in
    //    X → Y if (X \ A)⁺ under the current cover still contains Y.
    let mut i = 0;
    while i < cover.len() {
        let fd = cover[i].clone();
        let mut lhs = fd.lhs().clone();
        for a in fd.lhs().iter() {
            if lhs.len() <= 1 {
                break;
            }
            let reduced = lhs.without(a);
            let candidate = Fd::new(reduced.clone(), fd.rhs().clone()).expect("rhs non-empty");
            if implies(&cover, &candidate) {
                lhs = reduced;
            }
        }
        if &lhs != fd.lhs() {
            cover[i] = Fd::new(lhs, fd.rhs().clone()).expect("rhs non-empty");
        }
        i += 1;
    }
    cover.sort();
    cover.dedup();

    // 3. Remove redundant FDs: F is redundant if cover \ {F} ⊨ F.
    let mut i = 0;
    while i < cover.len() {
        let fd = cover[i].clone();
        let rest: Vec<Fd> =
            cover.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, f)| f.clone()).collect();
        if implies(&rest, &fd) {
            cover.remove(i);
        } else {
            i += 1;
        }
    }
    cover
}

/// Find all candidate keys of a schema with `arity` attributes under `fds`.
///
/// Breadth-first over attribute-set size so only minimal keys are emitted.
/// Exponential in the worst case — intended for schema-sized arities; the
/// search is capped at `max_results` keys.
pub fn candidate_keys(arity: usize, fds: &[Fd], max_results: usize) -> Vec<AttrSet> {
    let all = AttrSet::full(arity);
    let mut keys: Vec<AttrSet> = Vec::new();

    // Attributes never appearing in any consequent must be in every key.
    let mut in_rhs = AttrSet::empty();
    for fd in fds {
        in_rhs = in_rhs.union(fd.rhs());
    }
    let mandatory = all.difference(&in_rhs);

    if closure(&mandatory, fds) == all {
        return vec![mandatory];
    }

    let optional: Vec<_> = all.difference(&mandatory).iter().collect();
    // BFS over subsets of `optional` by increasing size.
    for size in 1..=optional.len() {
        if keys.len() >= max_results {
            break;
        }
        let mut combo = (0..size).collect::<Vec<usize>>();
        loop {
            let mut cand = mandatory.clone();
            for &i in &combo {
                cand.insert(optional[i]);
            }
            let minimal = !keys.iter().any(|k| k.is_subset_of(&cand));
            if minimal && closure(&cand, fds) == all {
                keys.push(cand);
                if keys.len() >= max_results {
                    break;
                }
            }
            // next combination
            let mut i = size;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if combo[i] != i + optional.len() - size {
                    combo[i] += 1;
                    for j in i + 1..size {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    combo.clear();
                    break;
                }
            }
            if combo.is_empty() {
                break;
            }
        }
        if !keys.is_empty() {
            // All keys of the minimum size found; larger supersets are not
            // minimal unless they avoid every found key, which the
            // `minimal` check above handles — keep scanning one more size
            // only if below cap. For simplicity scan all sizes; the
            // `minimal` filter keeps output correct.
        }
    }
    keys.sort();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::Schema;

    fn schema() -> Schema {
        Schema::uniform("t", &["A", "B", "C", "D"], evofd_storage::DataType::Str).unwrap()
    }

    fn fd(s: &Schema, text: &str) -> Fd {
        Fd::parse(s, text).unwrap()
    }

    #[test]
    fn closure_fixpoint() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C")];
        let c = closure(&s.attr_set(&["A"]).unwrap(), &fds);
        assert_eq!(c, s.attr_set(&["A", "B", "C"]).unwrap());
    }

    #[test]
    fn closure_monotone_in_input() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B")];
        let small = closure(&s.attr_set(&["A"]).unwrap(), &fds);
        let big = closure(&s.attr_set(&["A", "D"]).unwrap(), &fds);
        assert!(small.is_subset_of(&big));
    }

    #[test]
    fn closure_idempotent() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B, C -> D")];
        let once = closure(&s.attr_set(&["A", "C"]).unwrap(), &fds);
        assert_eq!(closure(&once, &fds), once);
    }

    #[test]
    fn implication() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C")];
        assert!(implies(&fds, &fd(&s, "A -> C")), "transitivity");
        assert!(implies(&fds, &fd(&s, "A, D -> B")), "augmentation");
        assert!(!implies(&fds, &fd(&s, "C -> A")));
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C"), fd(&s, "A -> C")];
        let cover = minimal_cover(&fds);
        assert_eq!(cover.len(), 2, "A->C is implied: {cover:?}");
        assert!(equivalent(&cover, &fds));
    }

    #[test]
    fn minimal_cover_trims_antecedents() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "A, B -> C")];
        let cover = minimal_cover(&fds);
        assert!(equivalent(&cover, &fds));
        assert!(cover.contains(&fd(&s, "A -> C")), "B is extraneous in A,B -> C: {cover:?}");
    }

    #[test]
    fn minimal_cover_splits_consequents() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B, C")];
        let cover = minimal_cover(&fds);
        assert_eq!(cover.len(), 2);
        assert!(cover.iter().all(|f| f.rhs().len() == 1));
    }

    #[test]
    fn keys_simple_chain() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C"), fd(&s, "C -> D")];
        let keys = candidate_keys(4, &fds, 10);
        assert_eq!(keys, vec![s.attr_set(&["A"]).unwrap()]);
    }

    #[test]
    fn keys_multiple() {
        let s = schema();
        // A<->B, each with C determines all.
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> A"), fd(&s, "A, C -> D")];
        let keys = candidate_keys(4, &fds, 10);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&s.attr_set(&["A", "C"]).unwrap()));
        assert!(keys.contains(&s.attr_set(&["B", "C"]).unwrap()));
    }

    #[test]
    fn keys_no_fds_whole_schema() {
        let keys = candidate_keys(3, &[], 10);
        assert_eq!(keys, vec![AttrSet::full(3)]);
    }

    #[test]
    fn equivalence_detects_difference() {
        let s = schema();
        let a = vec![fd(&s, "A -> B")];
        let b = vec![fd(&s, "B -> A")];
        assert!(!equivalent(&a, &b));
        assert!(equivalent(&a, &a.clone()));
    }

    #[test]
    fn determines_uses_transitive_closure() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C")];
        let a = s.attr_set(&["A"]).unwrap();
        assert!(determines(&fds, &a, &s.attr_set(&["B", "C"]).unwrap()));
        assert!(!determines(&fds, &s.attr_set(&["B"]).unwrap(), &a));
    }

    #[test]
    fn reduce_determined_drops_implied_and_keeps_leftmost() {
        let s = schema();
        let id = |n: &str| s.resolve(n).unwrap();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> A"), fd(&s, "A -> C")];
        // B and C are implied by A; the mutually-determining pair keeps
        // the leftmost member.
        assert_eq!(reduce_determined(&[id("A"), id("B"), id("C")], &fds), vec![id("A")]);
        assert_eq!(reduce_determined(&[id("B"), id("A"), id("C")], &fds), vec![id("B")]);
        // No FDs: everything survives (minus duplicates), order kept.
        assert_eq!(reduce_determined(&[id("C"), id("A"), id("C")], &[]), vec![id("C"), id("A")]);
        // A lone attribute is never dropped against an empty rest.
        assert_eq!(reduce_determined(&[id("A")], &fds), vec![id("A")]);
    }
}
