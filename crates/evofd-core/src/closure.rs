//! Armstrong-axiom reasoning over FD sets: attribute closure, implication,
//! minimal cover and candidate-key discovery.
//!
//! The paper treats the designer's FD set as given, but a production FD
//! toolkit needs schema-level reasoning: detecting redundant repairs,
//! checking whether an evolved FD is already implied, and finding keys
//! (UNIQUE attribute combinations the goodness criterion warns about).

use evofd_storage::AttrSet;

use crate::fd::Fd;

/// Compute the attribute closure `X⁺` of `attrs` under `fds`.
///
/// Standard fixpoint: repeatedly add the consequent of any FD whose
/// antecedent is contained in the current set. `O(|fds|²)` worst case,
/// plenty for schema-sized inputs.
pub fn closure(attrs: &AttrSet, fds: &[Fd]) -> AttrSet {
    let mut closed = attrs.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs().is_subset_of(&closed) && !fd.rhs().is_subset_of(&closed) {
                closed = closed.union(fd.rhs());
                changed = true;
            }
        }
    }
    closed
}

/// True iff `fds ⊨ fd` (the FD is logically implied): `Y ⊆ X⁺`.
pub fn implies(fds: &[Fd], fd: &Fd) -> bool {
    fd.rhs().is_subset_of(&closure(fd.lhs(), fds))
}

/// True iff two FD sets are logically equivalent (each implies the other).
pub fn equivalent(a: &[Fd], b: &[Fd]) -> bool {
    a.iter().all(|fd| implies(b, fd)) && b.iter().all(|fd| implies(a, fd))
}

/// Compute a minimal cover: singleton consequents, no redundant FDs, no
/// extraneous antecedent attributes. The result is equivalent to the
/// input.
pub fn minimal_cover(fds: &[Fd]) -> Vec<Fd> {
    // 1. Split consequents.
    let mut cover: Vec<Fd> = fds.iter().flat_map(Fd::decompose).collect();
    cover.sort();
    cover.dedup();

    // 2. Remove extraneous antecedent attributes: A ∈ X is extraneous in
    //    X → Y if (X \ A)⁺ under the current cover still contains Y.
    let mut i = 0;
    while i < cover.len() {
        let fd = cover[i].clone();
        let mut lhs = fd.lhs().clone();
        for a in fd.lhs().iter() {
            if lhs.len() <= 1 {
                break;
            }
            let reduced = lhs.without(a);
            let candidate = Fd::new(reduced.clone(), fd.rhs().clone()).expect("rhs non-empty");
            if implies(&cover, &candidate) {
                lhs = reduced;
            }
        }
        if &lhs != fd.lhs() {
            cover[i] = Fd::new(lhs, fd.rhs().clone()).expect("rhs non-empty");
        }
        i += 1;
    }
    cover.sort();
    cover.dedup();

    // 3. Remove redundant FDs: F is redundant if cover \ {F} ⊨ F.
    let mut i = 0;
    while i < cover.len() {
        let fd = cover[i].clone();
        let rest: Vec<Fd> =
            cover.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, f)| f.clone()).collect();
        if implies(&rest, &fd) {
            cover.remove(i);
        } else {
            i += 1;
        }
    }
    cover
}

/// Find all candidate keys of a schema with `arity` attributes under `fds`.
///
/// Breadth-first over attribute-set size so only minimal keys are emitted.
/// Exponential in the worst case — intended for schema-sized arities; the
/// search is capped at `max_results` keys.
pub fn candidate_keys(arity: usize, fds: &[Fd], max_results: usize) -> Vec<AttrSet> {
    let all = AttrSet::full(arity);
    let mut keys: Vec<AttrSet> = Vec::new();

    // Attributes never appearing in any consequent must be in every key.
    let mut in_rhs = AttrSet::empty();
    for fd in fds {
        in_rhs = in_rhs.union(fd.rhs());
    }
    let mandatory = all.difference(&in_rhs);

    if closure(&mandatory, fds) == all {
        return vec![mandatory];
    }

    let optional: Vec<_> = all.difference(&mandatory).iter().collect();
    // BFS over subsets of `optional` by increasing size.
    for size in 1..=optional.len() {
        if keys.len() >= max_results {
            break;
        }
        let mut combo = (0..size).collect::<Vec<usize>>();
        loop {
            let mut cand = mandatory.clone();
            for &i in &combo {
                cand.insert(optional[i]);
            }
            let minimal = !keys.iter().any(|k| k.is_subset_of(&cand));
            if minimal && closure(&cand, fds) == all {
                keys.push(cand);
                if keys.len() >= max_results {
                    break;
                }
            }
            // next combination
            let mut i = size;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if combo[i] != i + optional.len() - size {
                    combo[i] += 1;
                    for j in i + 1..size {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    combo.clear();
                    break;
                }
            }
            if combo.is_empty() {
                break;
            }
        }
        if !keys.is_empty() {
            // All keys of the minimum size found; larger supersets are not
            // minimal unless they avoid every found key, which the
            // `minimal` check above handles — keep scanning one more size
            // only if below cap. For simplicity scan all sizes; the
            // `minimal` filter keeps output correct.
        }
    }
    keys.sort();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::Schema;

    fn schema() -> Schema {
        Schema::uniform("t", &["A", "B", "C", "D"], evofd_storage::DataType::Str).unwrap()
    }

    fn fd(s: &Schema, text: &str) -> Fd {
        Fd::parse(s, text).unwrap()
    }

    #[test]
    fn closure_fixpoint() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C")];
        let c = closure(&s.attr_set(&["A"]).unwrap(), &fds);
        assert_eq!(c, s.attr_set(&["A", "B", "C"]).unwrap());
    }

    #[test]
    fn closure_monotone_in_input() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B")];
        let small = closure(&s.attr_set(&["A"]).unwrap(), &fds);
        let big = closure(&s.attr_set(&["A", "D"]).unwrap(), &fds);
        assert!(small.is_subset_of(&big));
    }

    #[test]
    fn closure_idempotent() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B, C -> D")];
        let once = closure(&s.attr_set(&["A", "C"]).unwrap(), &fds);
        assert_eq!(closure(&once, &fds), once);
    }

    #[test]
    fn implication() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C")];
        assert!(implies(&fds, &fd(&s, "A -> C")), "transitivity");
        assert!(implies(&fds, &fd(&s, "A, D -> B")), "augmentation");
        assert!(!implies(&fds, &fd(&s, "C -> A")));
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C"), fd(&s, "A -> C")];
        let cover = minimal_cover(&fds);
        assert_eq!(cover.len(), 2, "A->C is implied: {cover:?}");
        assert!(equivalent(&cover, &fds));
    }

    #[test]
    fn minimal_cover_trims_antecedents() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "A, B -> C")];
        let cover = minimal_cover(&fds);
        assert!(equivalent(&cover, &fds));
        assert!(cover.contains(&fd(&s, "A -> C")), "B is extraneous in A,B -> C: {cover:?}");
    }

    #[test]
    fn minimal_cover_splits_consequents() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B, C")];
        let cover = minimal_cover(&fds);
        assert_eq!(cover.len(), 2);
        assert!(cover.iter().all(|f| f.rhs().len() == 1));
    }

    #[test]
    fn keys_simple_chain() {
        let s = schema();
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> C"), fd(&s, "C -> D")];
        let keys = candidate_keys(4, &fds, 10);
        assert_eq!(keys, vec![s.attr_set(&["A"]).unwrap()]);
    }

    #[test]
    fn keys_multiple() {
        let s = schema();
        // A<->B, each with C determines all.
        let fds = vec![fd(&s, "A -> B"), fd(&s, "B -> A"), fd(&s, "A, C -> D")];
        let keys = candidate_keys(4, &fds, 10);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&s.attr_set(&["A", "C"]).unwrap()));
        assert!(keys.contains(&s.attr_set(&["B", "C"]).unwrap()));
    }

    #[test]
    fn keys_no_fds_whole_schema() {
        let keys = candidate_keys(3, &[], 10);
        assert_eq!(keys, vec![AttrSet::full(3)]);
    }

    #[test]
    fn equivalence_detects_difference() {
        let s = schema();
        let a = vec![fd(&s, "A -> B")];
        let b = vec![fd(&s, "B -> A")];
        assert!(!equivalent(&a, &b));
        assert!(equivalent(&a, &a.clone()));
    }
}
