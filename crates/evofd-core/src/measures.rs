//! Confidence, goodness and the ε_CB measure (Definition 3, §4.1, §5).
//!
//! All measures reduce to distinct-projection counts:
//!
//! * confidence  `c(F) = |π_X(r)| / |π_XY(r)|` — 1 iff the FD is exact
//!   (Definition 4);
//! * goodness    `g(F) = |π_X(r)| − |π_Y(r)|` — 0 iff the induced function
//!   between clusterings is bijective-ready;
//! * degree of inconsistency `ic(F) = 1 − c(F)` (§4.1);
//! * `ε_CB(F) = ic(F) + |g(F)|` (§5) — the measure proved equivalent to the
//!   entropy-based ε_VI.
//!
//! Counts are compared as integers wherever semantics matter (`c = 1` is
//! checked via `|π_X| == |π_XY|`, never via floating point).

use evofd_storage::{DistinctCache, Relation, SharedDistinctCache};

use crate::fd::Fd;

/// The full set of CB measures for one FD over one instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measures {
    /// `|π_X(r)|`.
    pub distinct_lhs: usize,
    /// `|π_XY(r)|`.
    pub distinct_lhs_rhs: usize,
    /// `|π_Y(r)|`.
    pub distinct_rhs: usize,
    /// Confidence `c ∈ (0, 1]` (1 for the empty relation).
    pub confidence: f64,
    /// Goodness `g = |π_X| − |π_Y|` (may be negative).
    pub goodness: i64,
}

impl Measures {
    /// Compute all measures for `fd` over `rel`, memoising counts in
    /// `cache`.
    pub fn compute(rel: &Relation, fd: &Fd, cache: &mut DistinctCache) -> Measures {
        Measures::from_counts(
            cache.count(rel, fd.lhs()),
            cache.count(rel, &fd.attrs()),
            cache.count(rel, fd.rhs()),
        )
    }

    /// [`Measures::compute`] against a concurrent cache — the form every
    /// `mintpool` fan-out (validation, discovery, repair scoring) uses,
    /// since it only needs `&SharedDistinctCache`.
    pub fn compute_shared(rel: &Relation, fd: &Fd, cache: &SharedDistinctCache) -> Measures {
        Measures::from_counts(
            cache.count(rel, fd.lhs()),
            cache.count(rel, &fd.attrs()),
            cache.count(rel, fd.rhs()),
        )
    }

    /// Assemble measures from the three distinct-projection counts.
    fn from_counts(distinct_lhs: usize, distinct_lhs_rhs: usize, distinct_rhs: usize) -> Measures {
        let confidence = if distinct_lhs_rhs == 0 {
            1.0 // empty relation: vacuously exact
        } else {
            distinct_lhs as f64 / distinct_lhs_rhs as f64
        };
        Measures {
            distinct_lhs,
            distinct_lhs_rhs,
            distinct_rhs,
            confidence,
            goodness: distinct_lhs as i64 - distinct_rhs as i64,
        }
    }

    /// Exactness (Definition 4) via integer counts: `|π_X| = |π_XY|`.
    pub fn is_exact(&self) -> bool {
        self.distinct_lhs == self.distinct_lhs_rhs
    }

    /// Degree of inconsistency `ic = 1 − c` (§4.1).
    pub fn inconsistency(&self) -> f64 {
        1.0 - self.confidence
    }

    /// Absolute goodness `ĝ = |g|` (§5).
    pub fn abs_goodness(&self) -> u64 {
        self.goodness.unsigned_abs()
    }

    /// `ε_CB = ic + ĝ` (§5). Zero iff the FD induces a bijection between
    /// `C_X` and `C_Y`.
    pub fn epsilon_cb(&self) -> f64 {
        self.inconsistency() + self.abs_goodness() as f64
    }
}

/// Confidence of `fd` over `rel` (no caching). See [`Measures`].
pub fn confidence(rel: &Relation, fd: &Fd) -> f64 {
    let mut cache = DistinctCache::disabled();
    Measures::compute(rel, fd, &mut cache).confidence
}

/// Goodness of `fd` over `rel` (no caching). See [`Measures`].
pub fn goodness(rel: &Relation, fd: &Fd) -> i64 {
    let mut cache = DistinctCache::disabled();
    Measures::compute(rel, fd, &mut cache).goodness
}

/// True iff `fd` is exact on `rel` (Definition 4), computed via counts.
pub fn is_satisfied(rel: &Relation, fd: &Fd) -> bool {
    let mut cache = DistinctCache::disabled();
    Measures::compute(rel, fd, &mut cache).is_exact()
}

/// `ε_CB(fd)` over `rel` (no caching). See [`Measures::epsilon_cb`].
pub fn epsilon_cb(rel: &Relation, fd: &Fd) -> f64 {
    let mut cache = DistinctCache::disabled();
    Measures::compute(rel, fd, &mut cache).epsilon_cb()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    // A 6-row relation where X -> Y has two violating X-groups.
    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["X", "Y", "Z"],
            &[
                &["a", "1", "p"],
                &["a", "2", "q"], // violates with row 0
                &["b", "1", "p"],
                &["b", "1", "q"],
                &["c", "3", "r"],
                &["c", "3", "r"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn confidence_and_exactness() {
        let r = rel();
        let f = Fd::parse(r.schema(), "X -> Y").unwrap();
        let m = Measures::compute(&r, &f, &mut DistinctCache::new());
        // |π_X| = 3 (a,b,c); |π_XY| = 4 (a1,a2,b1,c3).
        assert_eq!(m.distinct_lhs, 3);
        assert_eq!(m.distinct_lhs_rhs, 4);
        assert!((m.confidence - 0.75).abs() < 1e-12);
        assert!(!m.is_exact());
        assert_eq!(is_satisfied(&r, &f), f.satisfied_naive(&r));
    }

    #[test]
    fn satisfied_fd_has_confidence_one() {
        let r = rel();
        let f = Fd::parse(r.schema(), "X, Y -> Z").unwrap();
        // (a,1)->p, (a,2)->q, (b,1)->{p,q} — actually violated. Use Y,Z->Y.
        let g = Fd::parse(r.schema(), "Y, Z -> Y").unwrap();
        assert!(is_satisfied(&r, &g));
        assert_eq!(confidence(&r, &g), 1.0);
        assert_eq!(is_satisfied(&r, &f), f.satisfied_naive(&r));
    }

    #[test]
    fn goodness_sign() {
        let r = rel();
        // X -> Y: |π_X| = 3, |π_Y| = 3 → g = 0.
        assert_eq!(goodness(&r, &Fd::parse(r.schema(), "X -> Y").unwrap()), 0);
        // X,Y -> Z: |π_XY| = 4, |π_Z| = 3 → g = 1.
        assert_eq!(goodness(&r, &Fd::parse(r.schema(), "X, Y -> Z").unwrap()), 1);
        // Y -> X,Z? g = |π_Y| - |π_XZ| = 3 - 5 = -2.
        assert_eq!(goodness(&r, &Fd::parse(r.schema(), "Y -> X, Z").unwrap()), -2);
    }

    #[test]
    fn epsilon_cb_zero_iff_bijective() {
        let r = relation_of_strs(
            "t",
            &["X", "Y"],
            &[&["a", "1"], &["b", "2"], &["c", "3"], &["a", "1"]],
        )
        .unwrap();
        let f = Fd::parse(r.schema(), "X -> Y").unwrap();
        let m = Measures::compute(&r, &f, &mut DistinctCache::new());
        assert!(m.is_exact());
        assert_eq!(m.goodness, 0);
        assert_eq!(m.epsilon_cb(), 0.0);
    }

    #[test]
    fn epsilon_cb_positive_when_violated_or_skewed() {
        let r = rel();
        let f = Fd::parse(r.schema(), "X -> Y").unwrap();
        assert!(epsilon_cb(&r, &f) > 0.0);
        // Exact but not bijective: X,Y,Z determines Y, |π_XYZ| = 5 ≠ |π_Y| = 3.
        let g = Fd::parse(r.schema(), "X, Y, Z -> Y").unwrap();
        assert!(is_satisfied(&r, &g));
        assert!(epsilon_cb(&r, &g) > 0.0);
    }

    #[test]
    fn empty_relation_vacuously_exact() {
        let r = relation_of_strs("t", &["X", "Y"], &[]).unwrap();
        let f = Fd::parse(r.schema(), "X -> Y").unwrap();
        let m = Measures::compute(&r, &f, &mut DistinctCache::new());
        assert_eq!(m.confidence, 1.0);
        assert!(m.is_exact());
        assert_eq!(m.goodness, 0);
    }

    #[test]
    fn inconsistency_complements_confidence() {
        let r = rel();
        let f = Fd::parse(r.schema(), "X -> Y").unwrap();
        let m = Measures::compute(&r, &f, &mut DistinctCache::new());
        assert!((m.inconsistency() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cache_is_reused_across_fds() {
        let r = rel();
        let mut cache = DistinctCache::new();
        let f1 = Fd::parse(r.schema(), "X -> Y").unwrap();
        let f2 = Fd::parse(r.schema(), "X -> Z").unwrap();
        Measures::compute(&r, &f1, &mut cache);
        let before = cache.stats().hits;
        Measures::compute(&r, &f2, &mut cache); // |π_X| shared
        assert!(cache.stats().hits > before);
    }
}
