//! The semi-automatic designer loop ("support for evolving FDs").
//!
//! The paper's tool presents violated FDs to the database designer with a
//! ranked list of candidate repairs; the designer decides which (if any)
//! evolution to adopt — constraints change, not data. [`AdvisorSession`]
//! is that workflow as an API:
//!
//! 1. [`AdvisorSession::analyze`] validates every FD and computes ranked
//!    repair proposals for the violated ones (in §4.1 rank order);
//! 2. the designer inspects [`AdvisorSession::pending`] /
//!    [`AdvisorSession::proposals`] and calls
//!    [`accept`](AdvisorSession::accept), [`keep`](AdvisorSession::keep)
//!    or [`drop_fd`](AdvisorSession::drop_fd) per FD;
//! 3. [`AdvisorSession::evolved_fds`] yields the resulting FD set and
//!    [`AdvisorSession::verify`] re-validates it against the instance.
//!
//! Every decision is recorded in an audit log.

use std::fmt;

use evofd_storage::Relation;

use crate::error::{FdError, Result};
use crate::fd::Fd;
use crate::repair::{find_fd_repairs, Repair, RepairConfig, SearchMode};
use crate::validate::validate;

/// Designer decision state for one FD.
#[derive(Debug, Clone)]
pub enum FdState {
    /// Not yet analyzed.
    Pending,
    /// Exact on the instance; no action needed.
    Satisfied,
    /// Violated, awaiting a designer decision.
    Violated {
        /// Ranked repair proposals (may be empty if nothing repairs it).
        proposals: Vec<Repair>,
        /// True if the proposal search was truncated.
        truncated: bool,
    },
    /// Designer accepted a proposal; the FD evolved.
    Evolved {
        /// The adopted repair.
        chosen: Repair,
    },
    /// Designer chose to keep the FD unchanged (treat violations as data
    /// errors to be fixed elsewhere).
    Kept,
    /// Designer dropped the FD from the schema.
    Dropped,
}

impl FdState {
    /// True iff this FD still needs a designer decision.
    pub fn needs_decision(&self) -> bool {
        matches!(self, FdState::Violated { .. })
    }
}

/// One entry of the session audit log.
#[derive(Debug, Clone)]
pub enum AuditEvent {
    /// `analyze` ran: how many FDs were violated.
    Analyzed {
        /// Number of violated FDs found.
        violated: usize,
        /// Number of FDs checked.
        total: usize,
    },
    /// A proposal was accepted for an FD.
    Accepted {
        /// Index of the FD in the session.
        fd_index: usize,
        /// Rendered original FD.
        original: String,
        /// Rendered evolved FD.
        evolved: String,
    },
    /// An FD was kept despite violations.
    Kept {
        /// Index of the FD in the session.
        fd_index: usize,
        /// Rendered FD.
        fd: String,
    },
    /// An FD was dropped.
    Dropped {
        /// Index of the FD in the session.
        fd_index: usize,
        /// Rendered FD.
        fd: String,
    },
    /// An accepted evolution replaced the original FD in the tracked set.
    Replaced {
        /// Rendered original FD (no longer tracked).
        original: String,
        /// Rendered evolved FD now tracked in its place.
        evolved: String,
    },
    /// An accepted repair's evolved FD drifted back into violation: the
    /// decision was retired and the FD re-opened for a fresh ruling.
    Reopened {
        /// Index of the FD in the session.
        fd_index: usize,
        /// Rendered original FD (re-opened for decision).
        original: String,
        /// Rendered evolved FD that drifted violated.
        evolved: String,
    },
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEvent::Analyzed { violated, total } => {
                write!(f, "analyzed {total} FDs: {violated} violated")
            }
            AuditEvent::Accepted { fd_index, original, evolved } => {
                write!(f, "FD #{fd_index}: evolved {original} into {evolved}")
            }
            AuditEvent::Kept { fd_index, fd } => {
                write!(f, "FD #{fd_index}: kept {fd} despite violations")
            }
            AuditEvent::Dropped { fd_index, fd } => write!(f, "FD #{fd_index}: dropped {fd}"),
            AuditEvent::Replaced { original, evolved } => {
                write!(f, "replaced {original} with {evolved} in the tracked set")
            }
            AuditEvent::Reopened { fd_index, original, evolved } => {
                write!(f, "FD #{fd_index}: {evolved} drifted violated — re-opened {original}")
            }
        }
    }
}

/// A semi-automatic FD-evolution session over one relation instance.
#[derive(Debug)]
pub struct AdvisorSession<'r> {
    rel: &'r Relation,
    fds: Vec<Fd>,
    states: Vec<FdState>,
    config: RepairConfig,
    log: Vec<AuditEvent>,
    analyzed: bool,
}

impl<'r> AdvisorSession<'r> {
    /// Start a session for `fds` over `rel`. Proposal search runs in
    /// find-all mode by default so the designer sees every minimal option;
    /// pass a custom `config` to bound it.
    pub fn new(rel: &'r Relation, fds: Vec<Fd>) -> AdvisorSession<'r> {
        let config = RepairConfig { mode: SearchMode::FindAll, ..RepairConfig::default() };
        AdvisorSession::with_config(rel, fds, config)
    }

    /// Start a session with an explicit repair configuration.
    pub fn with_config(
        rel: &'r Relation,
        fds: Vec<Fd>,
        config: RepairConfig,
    ) -> AdvisorSession<'r> {
        let states = vec![FdState::Pending; fds.len()];
        AdvisorSession { rel, fds, states, config, log: Vec::new(), analyzed: false }
    }

    /// The FDs the session manages, in input order.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// The state of FD `i`.
    pub fn state(&self, i: usize) -> Result<&FdState> {
        self.states.get(i).ok_or_else(|| FdError::UnknownProposal { what: format!("FD #{i}") })
    }

    /// Step 1: validate all FDs and compute proposals for the violated
    /// ones. Violated FDs are processed in §4.1 rank order (the order the
    /// paper prescribes), though states are stored per input index.
    pub fn analyze(&mut self) -> Result<()> {
        if self.analyzed {
            return Err(FdError::InvalidState { message: "analyze already ran".into() });
        }
        let outcomes = find_fd_repairs(self.rel, &self.fds, &self.config);
        let mut violated = 0usize;
        for outcome in outcomes {
            let idx = self
                .fds
                .iter()
                .position(|f| *f == outcome.ranked.fd)
                .expect("outcome FD came from session set");
            match outcome.search {
                None => self.states[idx] = FdState::Satisfied,
                Some(search) => {
                    violated += 1;
                    self.states[idx] = FdState::Violated {
                        proposals: search.repairs,
                        truncated: search.truncated,
                    };
                }
            }
        }
        self.log.push(AuditEvent::Analyzed { violated, total: self.fds.len() });
        self.analyzed = true;
        Ok(())
    }

    fn require_analyzed(&self) -> Result<()> {
        if !self.analyzed {
            return Err(FdError::InvalidState { message: "call analyze() first".into() });
        }
        Ok(())
    }

    /// Indices of FDs still awaiting a decision.
    pub fn pending(&self) -> Vec<usize> {
        self.states.iter().enumerate().filter(|(_, s)| s.needs_decision()).map(|(i, _)| i).collect()
    }

    /// Ranked proposals for FD `i` (empty slice if none were found).
    pub fn proposals(&self, i: usize) -> Result<&[Repair]> {
        self.require_analyzed()?;
        match self.state(i)? {
            FdState::Violated { proposals, .. } => Ok(proposals),
            _ => Err(FdError::InvalidState {
                message: format!("FD #{i} is not awaiting a decision"),
            }),
        }
    }

    /// Accept proposal `proposal_idx` for FD `i`: the FD evolves.
    pub fn accept(&mut self, i: usize, proposal_idx: usize) -> Result<&Repair> {
        self.require_analyzed()?;
        let (proposals, _) = match self.state(i)? {
            FdState::Violated { proposals, truncated } => (proposals.clone(), *truncated),
            _ => {
                return Err(FdError::InvalidState {
                    message: format!("FD #{i} is not awaiting a decision"),
                })
            }
        };
        let chosen = proposals.get(proposal_idx).cloned().ok_or_else(|| {
            FdError::UnknownProposal { what: format!("proposal #{proposal_idx} of FD #{i}") }
        })?;
        self.log.push(AuditEvent::Accepted {
            fd_index: i,
            original: self.fds[i].display(self.rel.schema()),
            evolved: chosen.fd.display(self.rel.schema()),
        });
        self.states[i] = FdState::Evolved { chosen };
        match &self.states[i] {
            FdState::Evolved { chosen } => Ok(chosen),
            _ => unreachable!("just assigned"),
        }
    }

    /// Keep FD `i` unchanged despite violations (the designer judges the
    /// data, not the constraint, to be wrong).
    pub fn keep(&mut self, i: usize) -> Result<()> {
        self.require_analyzed()?;
        if !self.state(i)?.needs_decision() {
            return Err(FdError::InvalidState {
                message: format!("FD #{i} is not awaiting a decision"),
            });
        }
        self.log.push(AuditEvent::Kept { fd_index: i, fd: self.fds[i].display(self.rel.schema()) });
        self.states[i] = FdState::Kept;
        Ok(())
    }

    /// Drop FD `i` from the schema.
    pub fn drop_fd(&mut self, i: usize) -> Result<()> {
        self.require_analyzed()?;
        if !self.state(i)?.needs_decision() {
            return Err(FdError::InvalidState {
                message: format!("FD #{i} is not awaiting a decision"),
            });
        }
        self.log
            .push(AuditEvent::Dropped { fd_index: i, fd: self.fds[i].display(self.rel.schema()) });
        self.states[i] = FdState::Dropped;
        Ok(())
    }

    /// True iff no FD awaits a decision.
    pub fn is_complete(&self) -> bool {
        self.analyzed && self.pending().is_empty()
    }

    /// The evolved FD set: satisfied and kept FDs unchanged, evolved FDs
    /// replaced by their accepted repair, dropped FDs removed.
    pub fn evolved_fds(&self) -> Vec<Fd> {
        self.fds
            .iter()
            .zip(self.states.iter())
            .filter_map(|(fd, state)| match state {
                FdState::Dropped => None,
                FdState::Evolved { chosen } => Some(chosen.fd.clone()),
                _ => Some(fd.clone()),
            })
            .collect()
    }

    /// Re-validate the evolved FD set against the instance. Evolved FDs
    /// are exact by construction; kept FDs may still be violated (the
    /// designer said so deliberately), which the report shows.
    pub fn verify(&self) -> crate::validate::ValidationReport {
        validate(self.rel, &self.evolved_fds())
    }

    /// The audit log, oldest first.
    pub fn log(&self) -> &[AuditEvent] {
        &self.log
    }

    /// One-paragraph session summary for UIs.
    pub fn summary(&self) -> String {
        let mut satisfied = 0;
        let mut violated = 0;
        let mut evolved = 0;
        let mut kept = 0;
        let mut dropped = 0;
        for s in &self.states {
            match s {
                FdState::Pending => {}
                FdState::Satisfied => satisfied += 1,
                FdState::Violated { .. } => violated += 1,
                FdState::Evolved { .. } => evolved += 1,
                FdState::Kept => kept += 1,
                FdState::Dropped => dropped += 1,
            }
        }
        format!(
            "{} FDs: {satisfied} satisfied, {violated} awaiting decision, \
             {evolved} evolved, {kept} kept, {dropped} dropped",
            self.fds.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::relation_of_strs;

    fn rel() -> Relation {
        relation_of_strs(
            "t",
            &["D", "M", "P", "A"],
            &[
                &["d1", "m1", "p1", "a1"],
                &["d1", "m1", "p2", "a1"],
                &["d1", "m2", "p3", "a2"],
                &["d2", "m3", "p4", "a3"],
            ],
        )
        .unwrap()
    }

    fn session(r: &Relation) -> AdvisorSession<'_> {
        let fds = vec![
            Fd::parse(r.schema(), "D -> A").unwrap(), // violated
            Fd::parse(r.schema(), "M -> A").unwrap(), // satisfied
        ];
        AdvisorSession::new(r, fds)
    }

    #[test]
    fn full_accept_flow() {
        let r = rel();
        let mut s = session(&r);
        assert!(!s.is_complete());
        s.analyze().unwrap();
        assert_eq!(s.pending(), vec![0]);
        let proposals = s.proposals(0).unwrap();
        assert!(!proposals.is_empty());
        let chosen = s.accept(0, 0).unwrap().fd.clone();
        assert!(s.is_complete());
        let evolved = s.evolved_fds();
        assert_eq!(evolved.len(), 2);
        assert!(evolved.contains(&chosen));
        assert!(s.verify().all_satisfied());
        assert_eq!(s.log().len(), 2); // Analyzed + Accepted
        assert!(s.summary().contains("1 evolved"));
    }

    #[test]
    fn keep_flow_leaves_violation() {
        let r = rel();
        let mut s = session(&r);
        s.analyze().unwrap();
        s.keep(0).unwrap();
        assert!(s.is_complete());
        let report = s.verify();
        assert_eq!(report.violation_count(), 1, "kept FD still violated");
    }

    #[test]
    fn drop_flow_removes_fd() {
        let r = rel();
        let mut s = session(&r);
        s.analyze().unwrap();
        s.drop_fd(0).unwrap();
        assert_eq!(s.evolved_fds().len(), 1);
        assert!(s.verify().all_satisfied());
    }

    #[test]
    fn protocol_violations_error() {
        let r = rel();
        let mut s = session(&r);
        assert!(matches!(s.proposals(0), Err(FdError::InvalidState { .. })));
        assert!(matches!(s.accept(0, 0), Err(FdError::InvalidState { .. })));
        s.analyze().unwrap();
        assert!(matches!(s.analyze(), Err(FdError::InvalidState { .. })));
        // FD 1 is satisfied: no decisions allowed.
        assert!(matches!(s.keep(1), Err(FdError::InvalidState { .. })));
        assert!(matches!(s.proposals(1), Err(FdError::InvalidState { .. })));
        // Bad indices.
        assert!(matches!(s.accept(9, 0), Err(FdError::UnknownProposal { .. })));
        s.accept(0, 0).unwrap();
        // Deciding twice fails.
        assert!(matches!(s.accept(0, 0), Err(FdError::InvalidState { .. })));
    }

    #[test]
    fn bad_proposal_index() {
        let r = rel();
        let mut s = session(&r);
        s.analyze().unwrap();
        assert!(matches!(s.accept(0, 99), Err(FdError::UnknownProposal { .. })));
        // Still pending after the failed accept.
        assert_eq!(s.pending(), vec![0]);
    }

    #[test]
    fn audit_log_narrates() {
        let r = rel();
        let mut s = session(&r);
        s.analyze().unwrap();
        s.accept(0, 0).unwrap();
        let log: Vec<String> = s.log().iter().map(|e| e.to_string()).collect();
        assert!(log[0].contains("analyzed 2 FDs: 1 violated"));
        assert!(log[1].contains("evolved [D] -> [A]"), "{}", log[1]);
    }
}
