//! FD repair ordering (Section 4.1).
//!
//! When several FDs are violated the paper repairs them in decreasing
//! order of the rank
//!
//! ```text
//! O_F = (ic_F + cf_F) / 2
//! ```
//!
//! where `ic_F = 1 − c_F` is the degree of inconsistency and `cf_F` the
//! instance-independent *conflict score*: the average, over the other FDs
//! `F'` in the set, of `|F ∩ F'| / max(|F|, |F'|)`.
//!
//! ## Conflict-score modes
//!
//! The formula in the paper counts attributes shared between the `XY` sets
//! of the two FDs. However, the running example's reported ranks
//! (`F1 = 0.25, F2 = 0.167, F3 = 0.056`) only follow if every conflict
//! score is zero — even though `F2` and `F3` share the attribute `Zip` —
//! which matches counting *consequent* overlap only. We implement the
//! formula as printed ([`ConflictMode::SharedAttrs`], the default) and the
//! variant that reproduces the paper's example numbers
//! ([`ConflictMode::SharedConsequents`]). The repair *order* of the
//! running example is identical under both.

use evofd_storage::{DistinctCache, Relation};

use crate::fd::Fd;
use crate::measures::Measures;

/// How `|F ∩ F'|` is counted in the conflict score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictMode {
    /// Count attributes shared between the full `XY` sets (the formula as
    /// printed in §4.1).
    #[default]
    SharedAttrs,
    /// Count attributes shared between the consequents only (reproduces
    /// the paper's running-example rank values exactly).
    SharedConsequents,
}

/// Conflict score `cf_F` of `fd` against the other FDs in `all`
/// (instance-independent). `fd` itself is skipped; a singleton set scores 0.
pub fn conflict_score(fd: &Fd, all: &[Fd], mode: ConflictMode) -> f64 {
    if all.len() <= 1 {
        return 0.0;
    }
    let mut sum = 0.0;
    for other in all {
        if other == fd {
            continue;
        }
        let shared = match mode {
            ConflictMode::SharedAttrs => fd.shared_attrs(other),
            ConflictMode::SharedConsequents => fd.rhs().intersection_len(other.rhs()),
        };
        let denom = fd.num_attrs().max(other.num_attrs());
        sum += shared as f64 / denom as f64;
    }
    sum / all.len() as f64
}

/// A ranked FD: measures plus the §4.1 rank.
#[derive(Debug, Clone)]
pub struct RankedFd {
    /// The FD.
    pub fd: Fd,
    /// Its measures on the instance.
    pub measures: Measures,
    /// Conflict score `cf_F`.
    pub conflict: f64,
    /// Rank `O_F = (ic + cf) / 2`.
    pub rank: f64,
}

/// Rank a set of FDs on an instance and sort by decreasing rank — the
/// paper's `OrderFDs` (Algorithm 1, line 2). Ties break on the FD's
/// attribute sets for determinism.
pub fn order_fds(
    rel: &Relation,
    fds: &[Fd],
    mode: ConflictMode,
    cache: &mut DistinctCache,
) -> Vec<RankedFd> {
    let mut ranked: Vec<RankedFd> = fds
        .iter()
        .map(|fd| {
            let measures = Measures::compute(rel, fd, cache);
            let conflict = conflict_score(fd, fds, mode);
            let rank = (measures.inconsistency() + conflict) / 2.0;
            RankedFd { fd: fd.clone(), measures, conflict, rank }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.rank.partial_cmp(&a.rank).expect("ranks are finite").then_with(|| a.fd.cmp(&b.fd))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use evofd_storage::Schema;

    fn schema() -> Schema {
        Schema::uniform(
            "Places",
            &[
                "District",
                "Region",
                "Municipal",
                "AreaCode",
                "PhNo",
                "Street",
                "Zip",
                "City",
                "State",
            ],
            evofd_storage::DataType::Str,
        )
        .unwrap()
    }

    fn running_example_fds(s: &Schema) -> Vec<Fd> {
        vec![
            Fd::parse(s, "District, Region -> AreaCode").unwrap(),
            Fd::parse(s, "Zip -> City, State").unwrap(),
            Fd::parse(s, "PhNo, Zip -> Street").unwrap(),
        ]
    }

    #[test]
    fn conflict_score_shared_attrs() {
        let s = schema();
        let fds = running_example_fds(&s);
        // F1 shares nothing with F2/F3.
        assert_eq!(conflict_score(&fds[0], &fds, ConflictMode::SharedAttrs), 0.0);
        // F2 = {Zip, City, State}, F3 = {PhNo, Zip, Street}: share {Zip}.
        let cf2 = conflict_score(&fds[1], &fds, ConflictMode::SharedAttrs);
        assert!((cf2 - (1.0 / 3.0) / 3.0).abs() < 1e-12, "cf2 = {cf2}");
    }

    #[test]
    fn conflict_score_consequent_mode_matches_paper_example() {
        let s = schema();
        let fds = running_example_fds(&s);
        for fd in &fds {
            assert_eq!(conflict_score(fd, &fds, ConflictMode::SharedConsequents), 0.0);
        }
    }

    #[test]
    fn conflict_score_singleton_is_zero() {
        let s = schema();
        let fds = vec![Fd::parse(&s, "Zip -> City").unwrap()];
        assert_eq!(conflict_score(&fds[0], &fds, ConflictMode::SharedAttrs), 0.0);
    }

    #[test]
    fn conflict_score_overlapping_consequents() {
        let s = schema();
        let fds =
            vec![Fd::parse(&s, "Zip -> City").unwrap(), Fd::parse(&s, "District -> City").unwrap()];
        let cf = conflict_score(&fds[0], &fds, ConflictMode::SharedConsequents);
        // shared consequent {City} = 1, denom max(2,2) = 2, / |F|=2.
        assert!((cf - 0.25).abs() < 1e-12);
    }

    // Full running-example rank values are exercised in the integration
    // tests against the real Places relation (needs evofd-datagen).
}
