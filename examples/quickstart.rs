//! Quickstart: detect and repair a violated functional dependency.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use evofd::prelude::*;

fn main() {
    // Load the paper's running-example relation (Figure 1). In a real
    // application you would use `read_csv_path` or build a `Relation`.
    let places = evofd::datagen::places();
    println!("{}\n", places.render(11));

    // Declare the FDs the designer believes should hold.
    let fds = vec![
        Fd::parse(places.schema(), "District, Region -> AreaCode").unwrap(),
        Fd::parse(places.schema(), "Zip -> City, State").unwrap(),
        Fd::parse(places.schema(), "PhNo, Zip -> Street").unwrap(),
    ];

    // 1. Validate: confidence < 1 means the data violates the FD.
    let report = validate(&places, &fds);
    for status in &report.statuses {
        println!(
            "{:<42} confidence {:<6.3} goodness {:>3}  {}",
            status.fd.display(places.schema()),
            status.measures.confidence,
            status.measures.goodness,
            if status.satisfied() { "ok" } else { "VIOLATED" },
        );
    }

    // 2. Repair the first FD: find the minimal, best-ranked evolution.
    let fd = &fds[0];
    let search = repair_fd(&places, fd, &RepairConfig::find_first()).unwrap();
    let best = search.best().expect("a repair exists");
    println!(
        "\nevolved {}  into  {}   (added {}, goodness {})",
        fd.display(places.schema()),
        best.fd.display(places.schema()),
        places.schema().render_attrs(&best.added),
        best.measures.goodness,
    );

    // 3. The evolved FD is exact on the data.
    assert!(is_satisfied(&places, &best.fd));
    println!("the evolved FD is exact: the constraint now matches the data.");
}
