//! Audit a whole database: generate TPC-H, declare one FD per table
//! (Table 5's set), and run `FindFDRepairs` across the catalog — the
//! periodic-check scenario the paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example tpch_audit [scale]
//! ```

use evofd::core::{find_fd_repairs, format_confidence, format_duration, RepairConfig, TextTable};
use evofd::datagen::{generate_catalog, table5_fds, TpchSpec};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.002);
    println!("generating TPC-H at scale factor {scale}…");
    let spec = TpchSpec::new(scale);
    let catalog = generate_catalog(&spec);
    let fds = table5_fds(&catalog);

    let cfg = RepairConfig::find_first();
    let mut t = TextTable::new(["table", "FD", "confidence", "status", "first repair", "time"]);
    for (table, fd) in &fds {
        let rel = catalog.get(table.name()).expect("generated");
        let start = std::time::Instant::now();
        let outcomes = find_fd_repairs(rel, std::slice::from_ref(fd), &cfg);
        let took = start.elapsed();
        let outcome = &outcomes[0];
        let (status, repair) = match &outcome.search {
            None => ("satisfied".to_string(), "-".to_string()),
            Some(search) => match search.best() {
                Some(best) => (
                    "violated".to_string(),
                    format!("add {}", rel.schema().render_attrs(&best.added)),
                ),
                None => ("violated".to_string(), "no repair".to_string()),
            },
        };
        t.row([
            table.name().to_string(),
            fd.display(rel.schema()),
            format_confidence(outcome.ranked.measures.confidence),
            status,
            repair,
            format_duration(took),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nThe violated FDs mirror the paper's Table 5 workload: lineitem's\n\
         partkey→suppkey (four suppliers per part), orders' custkey→orderstatus\n\
         and partsupp's suppkey→availqty; the key-named FDs hold."
    );
}
