//! The advisor loop driven by a **stream** instead of a snapshot.
//!
//! The paper's workflow is: the designer notices that an FD no longer
//! matches the data, inspects the evidence, and evolves the constraint.
//! With `evofd-incremental`, "noticing" is automated: a [`LiveRelation`]
//! absorbs write batches, an [`IncrementalValidator`] keeps every FD's
//! confidence current in O(changed rows), and a drift feed wakes the
//! designer loop only when something actually changed.
//!
//! The scenario below replays the Places story as a stream: the relation
//! starts in the old world where `[District, Region] → [AreaCode]` holds;
//! municipality-level area-code splits then arrive as live traffic, the
//! feed reports the drift, and an [`AdvisorSession`] over a snapshot
//! proposes the paper's evolution (`+ Municipal`).
//!
//! ```text
//! cargo run --release --example streaming_evolution
//! ```

use evofd::prelude::*;
use evofd::storage::relation_of_strs;

fn main() {
    // The old world: one area code per (District, Region).
    let rel = relation_of_strs(
        "Places",
        &["District", "Region", "Municipal", "AreaCode"],
        &[
            &["Brookside", "Granville", "Glendale", "613"],
            &["Brookside", "Granville", "Guildwood", "613"],
            &["Alexandria", "Moore Park", "NapaHill", "415"],
        ],
    )
    .unwrap();
    let fd = Fd::parse(rel.schema(), "District, Region -> AreaCode").unwrap();
    println!(
        "declared: {}  (holds on the initial {} rows)\n",
        fd.display(rel.schema()),
        rel.row_count()
    );

    let mut live = LiveRelation::new(rel);
    let config =
        ValidatorConfig { confidence_thresholds: vec![0.9, 0.75], ..ValidatorConfig::default() };
    let mut validator = IncrementalValidator::with_config(&live, vec![fd.clone()], config);
    let feed = validator.subscribe();
    assert!(validator.is_exact(0));

    // Live traffic: area codes split below the district level — the
    // real-world change the paper's §1 narrates, arriving as deltas.
    let batches: Vec<Delta> = vec![
        // Benign growth first: a new district, FD still exact.
        Delta::inserting(vec![vec![
            Value::str("Riverdale"),
            Value::str("Granville"),
            Value::str("Oakmount"),
            Value::str("718"),
        ]]),
        // The split: Guildwood moves to 515 while Glendale keeps 613 —
        // one batch replacing the stale tuple with the new-world one.
        Delta::inserting(vec![vec![
            Value::str("Brookside"),
            Value::str("Granville"),
            Value::str("Guildwood"),
            Value::str("515"),
        ]])
        .delete(1), // the old (Guildwood, 613) tuple
        // More of the new world: QueenAnne splits off NapaHill's code.
        Delta::inserting(vec![vec![
            Value::str("Alexandria"),
            Value::str("Moore Park"),
            Value::str("QueenAnne"),
            Value::str("517"),
        ]]),
    ];

    for (i, delta) in batches.iter().enumerate() {
        let applied = live.apply(delta).expect("valid delta");
        validator.apply(&live, &applied);
        println!(
            "batch {}: {} change(s) -> {} rows, confidence {:.3}",
            i + 1,
            applied.len(),
            live.row_count(),
            validator.measures(0).confidence
        );
        for event in validator.poll(feed) {
            println!("  drift: {event}");
        }
    }

    // The feed said the FD drifted; now — and only now — run the
    // designer loop over a canonical snapshot.
    let summary = validator.summary(0);
    println!(
        "\n{} violating group(s) over {} of {} rows — invoking the advisor…\n",
        summary.violating_groups, summary.violating_rows, summary.total_rows
    );
    let snapshot = live.snapshot();
    let mut session = AdvisorSession::new(&snapshot, vec![fd]);
    session.analyze().expect("fresh session");
    for idx in session.pending() {
        let proposal = session.proposals(idx).expect("violated")[0].clone();
        println!(
            "advisor proposes: {}  (goodness {})",
            proposal.fd.display(snapshot.schema()),
            proposal.measures.goodness
        );
        session.accept(idx, 0).expect("valid proposal");
    }
    assert!(session.verify().all_satisfied());
    println!("\nevolved FD set verified against the live snapshot:");
    for fd in session.evolved_fds() {
        println!("  {}", fd.display(snapshot.schema()));
    }
    let stats = validator.stats();
    println!(
        "\nmaintenance: {} delta(s), {} incremental update(s), {} full recompute(s), {} drift event(s)",
        stats.deltas, stats.incremental, stats.full_recomputes, stats.events
    );
}
