//! Beyond antecedent extension: the three other ways a constraint set can
//! evolve, using the toolkit the paper's §7 sketches as future work.
//!
//! 1. **Conditioning** (CFDs): instead of widening `X → Y`, retreat to
//!    the scopes where it still holds — `(X → Y, Era = old)`.
//! 2. **Discovery**: mine what actually holds now and diff it against
//!    the declared set (§2's alternative, usable as a designer aid).
//! 3. **Normalisation impact**: after FDs evolve, check what the new set
//!    means for the schema's normal form.
//!
//! ```text
//! cargo run --release --example constraint_evolution
//! ```

use evofd::core::{
    bcnf_decompose, bcnf_violations, condition_repairs, discover_fds, minimal_cover,
    DiscoveryConfig, Fd, TextTable,
};
use evofd::prelude::*;
use evofd::storage::relation_of_strs;

fn main() {
    // A tax table whose rate rule changed in 2024: before, Bracket
    // determined Rate; after the reform, the rate also depends on Zone.
    let taxes = relation_of_strs(
        "Taxes",
        &["Bracket", "Zone", "Year", "Rate"],
        &[
            &["low", "north", "2023", "10"],
            &["low", "south", "2023", "10"],
            &["high", "north", "2023", "25"],
            &["high", "south", "2023", "25"],
            &["low", "north", "2024", "10"],
            &["low", "south", "2024", "12"],
            &["high", "north", "2024", "25"],
            &["high", "south", "2024", "28"],
        ],
    )
    .unwrap();
    let declared = Fd::parse(taxes.schema(), "Bracket -> Rate").unwrap();
    assert!(!is_satisfied(&taxes, &declared));
    println!("declared {} is violated.\n", declared.display(taxes.schema()));

    // --- Option A: the paper's repair (extend the antecedent). ---
    let search = repair_fd(&taxes, &declared, &RepairConfig::find_all()).unwrap();
    println!("A. extension repairs (the paper's method):");
    for r in search.repairs.iter().filter(|r| r.added.len() <= 2) {
        println!("   {}   (goodness {})", r.fd.display(taxes.schema()), r.measures.goodness);
    }

    // --- Option B: conditioning — where does the old rule still hold? ---
    println!("\nB. conditioning repairs (CFD evolution):");
    let mut t = TextTable::new(["condition on", "coverage", "clean scopes", "dirty scopes"]);
    for c in condition_repairs(&taxes, &declared) {
        t.row([
            taxes.schema().attr_name(c.attr).to_string(),
            format!("{:.0}%", c.coverage * 100.0),
            c.clean_cfds.len().to_string(),
            c.dirty_values.to_string(),
        ]);
    }
    print!("{}", t.render());
    let best = &condition_repairs(&taxes, &declared)[0];
    for cfd in &best.clean_cfds {
        println!("   e.g. {}", cfd.display(taxes.schema()));
        assert!(cfd.is_satisfied(&taxes));
    }

    // --- Option C: discovery — what does the data say now? ---
    let evolved = Fd::parse(taxes.schema(), "Bracket, Zone, Year -> Rate").unwrap();
    println!("\nC. mined minimal FDs:");
    let shallow = discover_fds(&taxes, &DiscoveryConfig { max_lhs: 2, ..Default::default() });
    println!(
        "   depth 2: {} FDs, covers the evolved constraint: {}",
        shallow.fds.len(),
        shallow.covers(&evolved)
    );
    let deep = discover_fds(&taxes, &DiscoveryConfig { max_lhs: 3, ..Default::default() });
    for d in &deep.fds {
        println!("   {}   (goodness {})", d.fd.display(taxes.schema()), d.measures.goodness);
    }
    println!(
        "   depth 3 covers the evolved constraint: {} — but only after mining\n   the whole lattice (see the discovery_vs_repair bench)",
        deep.covers(&evolved)
    );

    // --- Normal-form impact of the evolution. ---
    println!("\nschema impact of adopting the evolved FD set:");
    let adopted = vec![
        evolved.clone(),
        Fd::parse(taxes.schema(), "Zone, Year -> Rate").unwrap(), // hypothetical designer add
    ];
    let cover = minimal_cover(&adopted);
    println!("   minimal cover: {} FD(s)", cover.len());
    for fd in &cover {
        println!("     {}", fd.display(taxes.schema()));
    }
    let violations = bcnf_violations(taxes.arity(), &cover);
    if violations.is_empty() {
        println!("   schema stays in BCNF");
    } else {
        println!("   BCNF violations appear; lossless decomposition:");
        for fragment in bcnf_decompose(taxes.arity(), &cover) {
            println!("     {}", taxes.schema().render_attrs(&fragment.attrs));
        }
    }
}
