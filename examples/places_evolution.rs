//! The full Section 3–4 walkthrough on the `Places` relation: FD
//! ordering (§4.1), candidate ranking for F1 (Table 1), the iterative
//! two-attribute repair of F4 (§4.3, Tables 2 and 3), and the UNIQUE-
//! attribute discussion.
//!
//! ```text
//! cargo run --release --example places_evolution
//! ```

use evofd::core::{
    candidate_pool, extend_by_one, format_confidence, order_fds, repair_fd, ConflictMode, Fd,
    RepairConfig, TextTable,
};
use evofd::prelude::*;

fn candidate_table(rel: &Relation, fd: &Fd) -> TextTable {
    let pool = candidate_pool(rel, fd);
    let mut cache = DistinctCache::new();
    let mut t = TextTable::new(["A", "confidence", "goodness"]);
    for cand in extend_by_one(rel, fd, &pool, &mut cache) {
        t.row([
            rel.schema().attr_name(cand.attr).to_string(),
            format_confidence(cand.measures.confidence),
            cand.measures.goodness.to_string(),
        ]);
    }
    t
}

fn main() {
    let places = evofd::datagen::places();
    let schema = places.schema();
    let fds = evofd::datagen::places_fds(&places);

    // ---- §4.1: in which order should violated FDs be repaired? ----
    println!("§4.1 FD ordering (rank = (inconsistency + conflict)/2):");
    let mut cache = DistinctCache::new();
    for ranked in order_fds(&places, &fds, ConflictMode::SharedConsequents, &mut cache) {
        println!(
            "  {:<40} c = {:<5} rank = {:.3}",
            ranked.fd.display(schema),
            format_confidence(ranked.measures.confidence),
            ranked.rank,
        );
    }
    println!("  (paper: F1 0.25, F2 0.167, F3 0.056 — same order)\n");

    // ---- Table 1: evolving F1 ----
    let f1 = &fds[0];
    println!("Table 1 — candidates for F1: {}", f1.display(schema));
    print!("{}", candidate_table(&places, f1).render());
    println!("Municipal and PhNo both yield exact FDs; Municipal wins with goodness 0.\n");

    // ---- §4.3 / Tables 2-3: F4 needs two attributes ----
    let f4 = Fd::parse(schema, "District -> PhNo").unwrap();
    println!("Table 2 — candidates for F4: {}", f4.display(schema));
    print!("{}", candidate_table(&places, &f4).render());
    println!("No candidate reaches confidence 1 — iterate with the best (Street).\n");

    let f4_street = f4.with_lhs_attr(schema.resolve("Street").unwrap());
    println!("Table 3 — candidates for {}:", f4_street.display(schema));
    print!("{}", candidate_table(&places, &f4_street).render());

    // The engine automates the same exploration (Algorithm 3):
    let search = repair_fd(&places, &f4, &RepairConfig::find_all()).unwrap();
    println!("\nAlgorithm 3 finds {} total repairs; the minimal ones:", search.repairs.len());
    let min_len = search.repairs.iter().map(|r| r.added.len()).min().unwrap();
    for r in search.repairs.iter().filter(|r| r.added.len() == min_len) {
        println!("  {}  (added {})", r.fd.display(schema), schema.render_attrs(&r.added));
    }
    println!(
        "\nThe paper reaches the same pair of minimal repairs — Street+Municipal and\n\
         Street+AreaCode — and leaves the final choice to the designer."
    );
}
