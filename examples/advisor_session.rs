//! The semi-automatic designer loop: analyze → inspect proposals →
//! accept / keep / drop → verify, with a full audit trail.
//!
//! The "semi-automatic" in the paper's title is exactly this workflow:
//! the system finds violations and ranks candidate evolutions; the
//! *designer* decides, because only a human knows whether violations mean
//! dirty data or a changed reality.
//!
//! ```text
//! cargo run --release --example advisor_session
//! ```

use evofd::prelude::*;

fn main() {
    let places = evofd::datagen::places();
    let schema = places.schema().clone();
    let fds = vec![
        Fd::parse(&schema, "District, Region -> AreaCode").unwrap(), // will evolve
        Fd::parse(&schema, "Zip -> City, State").unwrap(),           // will be kept
        Fd::parse(&schema, "PhNo, Zip -> Street").unwrap(),          // will be dropped
        Fd::parse(&schema, "Municipal -> AreaCode").unwrap(),        // already satisfied
    ];

    let mut session = AdvisorSession::new(&places, fds);
    session.analyze().unwrap();
    println!("after analysis: {}\n", session.summary());

    // The designer reviews each pending FD in turn.
    for idx in session.pending() {
        let fd = session.fds()[idx].clone();
        println!("FD #{idx}: {} is violated; proposals:", fd.display(&schema));
        for (i, p) in session.proposals(idx).unwrap().iter().enumerate() {
            println!(
                "   {}) {}   (adds {}, goodness {})",
                i + 1,
                p.fd.display(&schema),
                schema.render_attrs(&p.added),
                p.measures.goodness
            );
        }
        println!();
    }

    // Scripted decisions (a UI or the CLI's `advise` command would ask):
    // F0: the area-code split is a real change — accept the top proposal.
    let accepted = session.accept(0, 0).unwrap().fd.clone();
    // F1: the Zip violations are data-entry errors — keep the constraint.
    session.keep(1).unwrap();
    // F2: the designer decides this FD never made sense — drop it.
    session.drop_fd(2).unwrap();

    assert!(session.is_complete());
    println!("decisions made: {}\n", session.summary());

    println!("audit log:");
    for event in session.log() {
        println!("  - {event}");
    }

    // Verify the evolved FD set against the instance.
    let verification = session.verify();
    println!("\nevolved FD set ({} FDs):", session.evolved_fds().len());
    for status in &verification.statuses {
        println!(
            "  {:<50} {}",
            status.fd.display(&schema),
            if status.satisfied() { "exact" } else { "still violated (kept on purpose)" }
        );
    }
    assert!(is_satisfied(&places, &accepted));
}
