//! Compute the paper's measures through SQL — exactly how the original
//! Java/MySQL prototype worked (§4.4: confidence = Q1 / Q2) — and
//! cross-check against the native engine.
//!
//! ```text
//! cargo run --release --example sql_profiler
//! ```

use evofd::core::{confidence, goodness, Fd};
use evofd::sql::Engine;
use evofd::storage::Catalog;

fn scalar(engine: &mut Engine, sql: &str) -> i64 {
    engine.query_scalar(sql).expect("query runs").as_int().expect("COUNT returns an integer")
}

fn main() {
    // Register the Places relation with the SQL engine.
    let places = evofd::datagen::places();
    let fd = Fd::parse(places.schema(), "District, Region -> AreaCode").unwrap();
    let mut catalog = Catalog::new();
    catalog.insert(places.clone()).unwrap();
    let mut engine = Engine::with_catalog(catalog);

    // The paper's Q1 and Q2 for F1 (§4.4), verbatim.
    let q1 = "select count(distinct District, Region) from Places";
    let q2 = "select count(distinct District, Region, AreaCode) from Places";
    let x = scalar(&mut engine, q1);
    let xy = scalar(&mut engine, q2);
    println!("Q1: {q1:<60} -> {x}");
    println!("Q2: {q2:<60} -> {xy}");
    let sql_confidence = x as f64 / xy as f64;
    println!("confidence via SQL   = {x}/{xy} = {sql_confidence}");

    let native = confidence(&places, &fd);
    println!("confidence natively  = {native}");
    assert_eq!(sql_confidence, native);

    // Goodness the same way.
    let y = scalar(&mut engine, "select count(distinct AreaCode) from Places");
    println!("goodness via SQL     = {x} - {y} = {}", x - y);
    assert_eq!(x - y, goodness(&places, &fd));

    // The engine does more than COUNT DISTINCT — explore the violations:
    println!("\nwhich (District, Region) groups map to several area codes?");
    let rel = engine
        .query(
            "SELECT District, Region, COUNT(DISTINCT AreaCode) AS codes \
             FROM Places GROUP BY District, Region ORDER BY District",
        )
        .unwrap();
    print!("{}", rel.render(10));

    println!("\ntuples behind the Zip -> City, State violation:");
    let rel = engine
        .query("SELECT Zip, City, State FROM Places WHERE Zip = '10211' ORDER BY State")
        .unwrap();
    print!("{}", rel.render(10));
    println!("\nSQL and native measures agree — the substrate swap (MySQL → evofd-sql)\npreserves the paper's computations exactly.");
}
