//! Live-advisor equivalence: the delta-maintained designer loop must be
//! indistinguishable from the paper's batch loop at **every epoch**.
//!
//! For seeded 200-step delta streams (and proptest-generated random
//! ones), after every single applied delta the [`LiveAdvisor`]'s visible
//! state — which FDs are satisfied or violated, and the full ranked
//! proposal list per violated FD (order, added sets, measures) — must
//! equal a fresh [`AdvisorSession::analyze`] over a canonical snapshot.
//! The durable variant replays the same stream through a
//! [`DurableRelation`], kills and reopens the table twice mid-stream, and
//! tails a replica over the shipped WAL — the advisor session (including
//! designer decisions) must survive both, byte-for-byte in the snapshot
//! image and state-for-state in the advisor.

use evofd::core::{AdvisorSession, Fd, FdState, Repair};
use evofd::incremental::{
    Delta, IncrementalValidator, LiveAdvisor, LiveFdState, LiveRelation, ValidatorConfig,
};
use evofd::persist::{DirTransport, DurableRelation, PersistOptions, ReplicaState};
use evofd::storage::{DataType, Field, Relation, Schema, Value};
use proptest::prelude::*;

/// Deterministic xorshift step for the seeded streams.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn schema() -> std::sync::Arc<Schema> {
    let mut fields: Vec<Field> =
        (0..4).map(|i| Field::not_null(format!("a{i}"), DataType::Int)).collect();
    // A near-unique attribute (the paper's UNIQUE-like column): it can
    // repair almost any violated FD, so proposal lists are non-trivial.
    fields.push(Field::not_null("u", DataType::Int));
    Schema::new("live", fields).expect("unique names").into_shared()
}

fn row(state: &mut u64, span: u64) -> Vec<Value> {
    let mut vals: Vec<Value> = (0..4).map(|_| Value::Int((next(state) % span) as i64)).collect();
    vals.push(Value::Int((next(state) % (1 << 30)) as i64));
    vals
}

fn base_relation(seed: u64) -> (Relation, Vec<Fd>) {
    let mut state = seed | 1;
    let rows: Vec<Vec<Value>> = (0..12).map(|_| row(&mut state, 4)).collect();
    let rel = Relation::from_rows(schema(), rows).expect("typed rows");
    let fds = vec![
        Fd::parse(rel.schema(), "a0 -> a1").unwrap(),
        Fd::parse(rel.schema(), "a1, a2 -> a3").unwrap(),
    ];
    (rel, fds)
}

/// One random delta against the current live rows.
fn random_delta(live: &LiveRelation, state: &mut u64) -> Delta {
    let kind = next(state) % 6;
    let mut delta = Delta::new();
    if kind <= 2 || live.row_count() == 0 {
        // Insert 1–3 rows; a narrow value span keeps FDs drifting in and
        // out of violation instead of diluting into near-uniqueness.
        for _ in 0..=(next(state) % 3) {
            delta.inserts.push(row(state, 4));
        }
    } else if kind <= 4 {
        // Delete 1–2 live rows.
        let live_rows: Vec<usize> = live.live_rows().collect();
        let n = 1 + (next(state) % 2) as usize;
        for i in 0..n.min(live_rows.len()) {
            let pick = live_rows[(next(state) as usize) % live_rows.len()];
            if !delta.deletes.contains(&pick) {
                delta.deletes.push(pick);
            }
            let _ = i;
        }
    } else {
        // Mixed batch.
        delta.inserts.push(row(state, 4));
        let live_rows: Vec<usize> = live.live_rows().collect();
        if !live_rows.is_empty() {
            delta.deletes.push(live_rows[(next(state) as usize) % live_rows.len()]);
        }
    }
    delta
}

/// The oracle: every undecided FD's live state and proposal list must
/// equal a fresh batch analysis over a canonical snapshot.
fn assert_matches_batch(snapshot: &Relation, fds: &[Fd], advisor: &LiveAdvisor, context: &str) {
    let mut session = AdvisorSession::new(snapshot, fds.to_vec());
    session.analyze().unwrap_or_else(|e| panic!("{context}: batch analyze failed: {e}"));
    for i in 0..fds.len() {
        let live_state = advisor.state(i).expect("tracked FD");
        if live_state.decided() {
            continue;
        }
        match (live_state, session.state(i).expect("tracked FD")) {
            (LiveFdState::Satisfied, FdState::Satisfied) => {}
            (LiveFdState::Violated { index }, FdState::Violated { proposals, truncated }) => {
                assert!(!truncated, "{context}: oracle truncated");
                let ours: &[Repair] = index.proposals();
                assert_eq!(ours.len(), proposals.len(), "{context}: FD #{i} proposal count");
                for (j, (a, b)) in ours.iter().zip(proposals.iter()).enumerate() {
                    assert_eq!(a.added, b.added, "{context}: FD #{i} proposal #{j} added");
                    assert_eq!(a.fd, b.fd, "{context}: FD #{i} proposal #{j} evolved FD");
                    assert_eq!(a.measures, b.measures, "{context}: FD #{i} proposal #{j} measures");
                }
            }
            (ours, theirs) => {
                panic!("{context}: FD #{i} live {} vs batch {theirs:?}", ours.label())
            }
        }
    }
}

#[test]
fn seeded_200_step_stream_matches_batch_at_every_epoch() {
    let (rel, fds) = base_relation(2016);
    let mut live = LiveRelation::new(rel);
    let mut validator = IncrementalValidator::new(&live, fds.clone());
    let mut advisor = LiveAdvisor::new(&live, &validator);
    let mut state = 0xE0FD_2016u64;

    let mut incremental_steps = 0;
    for step in 0..200 {
        let delta = random_delta(&live, &mut state);
        let applied = live.apply(&delta).expect("valid delta");
        validator.apply(&live, &applied);
        advisor.apply(&live, &validator, &applied);
        if live.maybe_compact() > 0 {
            validator.resync(&live);
            advisor.resync(&live, &validator);
        }
        assert_matches_batch(&live.snapshot(), &fds, &advisor, &format!("step {step}"));
        incremental_steps += 1;
    }
    assert_eq!(incremental_steps, 200);
    assert!(
        advisor.stats().incremental > 150,
        "most steps absorbed incrementally: {:?}",
        advisor.stats()
    );
}

#[test]
fn seeded_stream_with_decisions_keeps_them_sticky() {
    let (rel, fds) = base_relation(77);
    let mut live = LiveRelation::new(rel);
    let mut validator = IncrementalValidator::new(&live, fds.clone());
    let mut advisor = LiveAdvisor::new(&live, &validator);
    let mut state = 0xDEC1_5105u64;

    let mut decided: Option<usize> = None;
    for step in 0..120 {
        let delta = random_delta(&live, &mut state);
        let applied = live.apply(&delta).expect("valid delta");
        validator.apply(&live, &applied);
        advisor.apply(&live, &validator, &applied);

        // First time any FD has a proposal, accept it; it must stay
        // decided for the rest of the stream whatever the data does.
        if decided.is_none() {
            for i in advisor.pending() {
                if !advisor.proposals(i).unwrap().is_empty() {
                    advisor.accept(i, 0).unwrap();
                    decided = Some(i);
                    break;
                }
            }
        }
        if let Some(i) = decided {
            assert!(
                matches!(advisor.state(i).unwrap(), LiveFdState::Evolved { .. }),
                "step {step}: decision must stick"
            );
        }
        assert_matches_batch(&live.snapshot(), &fds, &advisor, &format!("step {step}"));
    }
    assert!(decided.is_some(), "the stream produced at least one proposal");
    assert_eq!(advisor.decisions().len(), 1);
}

#[test]
fn durable_200_step_stream_survives_kill_reopen_and_replica() {
    let dir = std::env::temp_dir().join("evofd_live_advisor_equiv").join("leader");
    let replica_dir = std::env::temp_dir().join("evofd_live_advisor_equiv").join("replica");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&replica_dir);

    let (rel, mut fds) = base_relation(4242);
    let mut leader = DurableRelation::create(
        &dir,
        rel,
        fds.clone(),
        ValidatorConfig::default(),
        PersistOptions::default(),
    )
    .unwrap();
    leader.ensure_advisor().unwrap();
    // The follower bootstraps from the shipped snapshot and tails the
    // leader's WAL file lock-free, exactly like `evofd follow`.
    let mut transport = DirTransport::new(&dir);
    let mut replica =
        ReplicaState::open_or_bootstrap(&replica_dir, &mut transport, PersistOptions::default())
            .unwrap();
    // Materialize the replica's advisor session up front: it must stay
    // current under ingested deltas, compactions and decisions.
    replica.table_mut().ensure_advisor().unwrap();

    let mut state = 0x5EED_4242u64;
    let mut decided = false;
    for step in 0..200 {
        // Build the delta against the leader's live view.
        let delta = random_delta(leader.live(), &mut state);
        leader.apply(&delta).expect("valid delta");

        // The designer rules once, mid-stream, as soon as a proposal is up.
        // Accepting REPLACES the original FD with the evolved one in the
        // tracked set, so the oracle's FD list follows the swap.
        if !decided && step >= 60 {
            let advisor = leader.ensure_advisor().unwrap();
            let candidate =
                advisor.pending().into_iter().find(|&i| !advisor.proposals(i).unwrap().is_empty());
            if let Some(i) = candidate {
                let chosen = leader.accept_repair(i, 0).unwrap();
                fds[i] = chosen.fd.clone();
                decided = true;
            }
        }

        // Kill and reopen the leader twice mid-stream.
        if step == 67 || step == 133 {
            drop(leader);
            leader = DurableRelation::open(&dir, PersistOptions::default()).unwrap();
            leader.ensure_advisor().unwrap();
        }

        // The replica tails whatever the leader has journaled so far.
        replica.sync(&mut transport).unwrap();

        // Equivalence at every epoch: the leader's advisor vs a fresh
        // batch session, the replica's maintained advisor vs the same
        // oracle, and the replica byte-identical to the leader.
        let snapshot = leader.live().snapshot();
        let advisor = leader.ensure_advisor().unwrap();
        assert_matches_batch(&snapshot, &fds, advisor, &format!("durable step {step}"));
        let replica_advisor = replica.table_mut().ensure_advisor().unwrap();
        assert_matches_batch(&snapshot, &fds, replica_advisor, &format!("replica step {step}"));
        assert_eq!(
            leader.encode_current_snapshot(),
            replica.table().encode_current_snapshot(),
            "durable step {step}: replica image diverged"
        );
        assert_eq!(leader.decisions(), replica.table().decisions(), "durable step {step}");
    }
    assert!(decided, "the stream produced at least one accepted repair");
    // The replica's advisor session restores the leader's decision state.
    let leader_evolved = leader.ensure_advisor().unwrap().evolved_fds();
    let follower_advisor = replica.table_mut().ensure_advisor().unwrap();
    assert_eq!(follower_advisor.decisions(), leader.decisions());
    assert_eq!(follower_advisor.evolved_fds(), leader_evolved);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random relations, FDs and delta streams: the live advisor equals
    /// the batch session at every epoch.
    #[test]
    fn random_streams_match_batch(
        seed in 1u64..1_000_000,
        steps in 10usize..40,
        lhs in 0usize..4,
        rhs in 0usize..4,
    ) {
        let (rel, mut fds) = base_relation(seed);
        // A third random FD stresses shapes the seeded tests never pick.
        let rhs_attr = evofd::storage::AttrId::from(rhs);
        let lhs_set = evofd::storage::AttrSet::single(evofd::storage::AttrId::from(lhs))
            .without(rhs_attr);
        let extra = Fd::new(lhs_set, evofd::storage::AttrSet::single(rhs_attr)).expect("non-empty");
        if !fds.contains(&extra) {
            fds.push(extra);
        }

        let mut live = LiveRelation::new(rel);
        let mut validator = IncrementalValidator::new(&live, fds.clone());
        let mut advisor = LiveAdvisor::new(&live, &validator);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;

        for step in 0..steps {
            let delta = random_delta(&live, &mut state);
            let applied = live.apply(&delta).expect("valid delta");
            validator.apply(&live, &applied);
            advisor.apply(&live, &validator, &applied);
            if live.maybe_compact() > 0 {
                validator.resync(&live);
                advisor.resync(&live, &validator);
            }
            assert_matches_batch(&live.snapshot(), &fds, &advisor, &format!("case step {step}"));
        }
    }
}
