//! Chaos driver for WAL-shipping replication: seeded kill/restart and
//! torn-write injection on the follower, proving leader ≡ follower
//! convergence with **no duplicate or skipped deltas** from every
//! possible failure point.
//!
//! For a generated leader stream (inserts, value deletes, deterministic
//! rejections with rollbacks, journaled tombstone compactions, cursor
//! moves) the driver:
//!
//! * kills the follower at **every frame boundary** of the stream and
//!   restarts it (recovery + resync must converge to the leader bytes);
//! * additionally truncates the follower's local WAL **mid-frame**
//!   before each restart (the torn tail must be amputated, the lost
//!   frame re-shipped exactly once);
//! * runs the whole sweep under all three fsync policies.
//!
//! Convergence is asserted on the full encoded state image — physical
//! relation (codes, dictionaries, tombstone mask), epoch, per-FD tracker
//! counts, cursor and acked seq — so a duplicated or skipped delta
//! cannot hide: it would shift row ids, epochs or group counts.

use std::path::{Path, PathBuf};

use evofd::core::Fd;
use evofd::incremental::{Delta, ValidatorConfig};
use evofd::persist::wal::WAL_HEADER_LEN;
use evofd::persist::{
    Database, DirTransport, DurableRelation, FrameTransport, PersistOptions, ReplicaState,
    Shipment, SyncPolicy, WalRecord, WAL_FILE,
};
use evofd::storage::{relation_of_strs, Relation, Value};
use proptest::prelude::*;
use proptest::TestRng;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("evofd_replication_chaos").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn srow(x: u64, y: u64) -> Vec<Value> {
    vec![Value::str(format!("x{x}")), Value::str(format!("y{y}"))]
}

fn base_rel() -> Relation {
    relation_of_strs("t", &["X", "Y"], &[&["x0", "y0"], &["x1", "y1"], &["x2", "y2"]]).unwrap()
}

/// Build a leader with a seeded delta stream that exercises every WAL
/// record kind: plain deltas, a deterministic rejection (rollback pair),
/// tombstone compactions (low threshold) and cursor moves.
fn build_leader(dir: &Path, sync: SyncPolicy, seed: u64, steps: u64) -> Database {
    let opts = PersistOptions {
        sync,
        wal_compact_bytes: u64::MAX, // never checkpoint: keep every frame
        compact_threshold: 0.25,     // deletes trigger journaled compactions
        history_stride: 1,
    };
    let rel = base_rel();
    let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
    let mut db = Database::open(dir, opts).unwrap();
    db.create_table(rel, fds, ValidatorConfig::default()).unwrap();

    let mut rng = TestRng::new(seed);
    for step in 0..steps {
        let t = db.get_mut("t").unwrap();
        match rng.below(8) {
            0..=3 => {
                let n = 1 + rng.below(2);
                let rows: Vec<Vec<Value>> =
                    (0..n).map(|_| srow(rng.below(6), rng.below(4))).collect();
                t.apply(&Delta::inserting(rows)).unwrap();
            }
            4..=5 => {
                let count = t.live().row_count();
                if count > 0 {
                    let nth = rng.below(count as u64) as usize;
                    let row = t.live().live_rows().nth(nth).expect("counted");
                    t.apply(&Delta::deleting([row])).unwrap();
                }
            }
            6 => {
                // Arity violation: journaled, rejected deterministically,
                // cancelled by a rollback record.
                assert!(t.apply(&Delta::inserting(vec![vec![Value::str("one")]])).is_err());
            }
            _ => t.set_cursor(step * 10 + 7).unwrap(),
        }
    }
    db.get_mut("t").unwrap().sync().unwrap();
    db
}

fn state_image(t: &DurableRelation) -> Vec<u8> {
    // Includes physical relation, epoch, tracker counts, last_seq, cursor.
    t.encode_current_snapshot()
}

/// Fetch every currently shipped frame of a leader table directory.
fn all_frames(leader_table_dir: &Path) -> Vec<Vec<u8>> {
    let mut transport = DirTransport::new(leader_table_dir);
    match transport.fetch(0).unwrap() {
        Shipment::Frames(frames) => frames,
        Shipment::Bootstrap { .. } => panic!("leader never checkpointed"),
    }
}

/// Everything the chaos driver needs to know about a built leader.
struct LeaderRef<'a> {
    table_dir: &'a Path,
    frames: &'a [Vec<u8>],
    image: &'a [u8],
    seq: u64,
}

/// Kill the follower after `kill_at` frames (optionally tearing its local
/// WAL mid-frame), reopen and fully resync; assert convergence.
fn kill_restart_converge(
    leader: &LeaderRef<'_>,
    opts: &PersistOptions,
    kill_at: usize,
    tear: bool,
    scratch: &Path,
) {
    let rdir = scratch.join(format!("k{kill_at}_{}", if tear { "torn" } else { "clean" }));
    let _ = std::fs::remove_dir_all(&rdir);
    let mut transport = DirTransport::new(leader.table_dir);
    let mut replica = ReplicaState::open_or_bootstrap(&rdir, &mut transport, opts.clone()).unwrap();
    for frame in &leader.frames[..kill_at] {
        replica.apply_frame(frame).unwrap();
    }
    drop(replica); // kill at the frame boundary

    if tear {
        // Rip bytes off the follower's local WAL mid-frame: recovery must
        // amputate the torn tail and the lost frames must be re-shipped.
        let wal_path = rdir.join(WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let cut = len.saturating_sub(3).max(WAL_HEADER_LEN.min(len));
        let file = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        file.set_len(cut).unwrap();
        file.sync_all().unwrap();
    }

    let mut replica = ReplicaState::open(&rdir, opts.clone()).unwrap();
    let report = replica.sync(&mut transport).unwrap();
    assert!(!report.bootstrapped, "the WAL still holds the whole tail");
    assert_eq!(
        replica.last_seq(),
        leader.seq,
        "kill at {kill_at} (tear={tear}): follower did not reach the leader seq"
    );
    assert_eq!(
        state_image(replica.table()),
        leader.image,
        "kill at {kill_at} (tear={tear}): state diverged"
    );
}

fn chaos_sweep(sync: SyncPolicy, seed: u64) {
    let label = format!("sweep_{sync}_{seed}");
    let ldir = tmpdir(&format!("{label}_leader"));
    let scratch = tmpdir(&format!("{label}_replicas"));
    let db = build_leader(&ldir, sync, seed, 18);
    let leader = db.get("t").unwrap();
    let leader_image = state_image(leader);
    let leader_seq = leader.last_seq();
    let opts = PersistOptions {
        sync,
        wal_compact_bytes: u64::MAX,
        compact_threshold: 0.25,
        history_stride: 1,
    };

    let table_dir = ldir.join("t");
    let frames = all_frames(&table_dir);
    assert!(!frames.is_empty());
    // The pinned seeds must exercise every record kind in one stream.
    let kinds: Vec<WalRecord> =
        frames.iter().map(|f| WalRecord::decode_frame(f).expect("valid frame")).collect();
    assert!(kinds.iter().any(|r| matches!(r, WalRecord::Delta { .. })));
    assert!(
        kinds.iter().any(|r| matches!(r, WalRecord::Rollback { .. })),
        "seed {seed} produced no rollback — adjust the seed"
    );
    assert!(
        kinds.iter().any(|r| matches!(r, WalRecord::Compact { .. })),
        "seed {seed} produced no compaction — adjust the seed"
    );
    assert!(kinds.iter().any(|r| matches!(r, WalRecord::Cursor { .. })));

    // Kill at EVERY frame boundary, clean and torn.
    let leader_ref =
        LeaderRef { table_dir: &table_dir, frames: &frames, image: &leader_image, seq: leader_seq };
    for kill_at in 0..=frames.len() {
        for tear in [false, true] {
            kill_restart_converge(&leader_ref, &opts, kill_at, tear, &scratch);
        }
    }
}

#[test]
fn chaos_kill_every_frame_boundary_per_commit() {
    chaos_sweep(SyncPolicy::PerCommit, 2016);
}

#[test]
fn chaos_kill_every_frame_boundary_group_commit() {
    chaos_sweep(SyncPolicy::GroupCommit(4), 2016);
}

#[test]
fn chaos_kill_every_frame_boundary_no_sync() {
    chaos_sweep(SyncPolicy::NoSync, 2016);
}

/// A follower killed mid-stream while the LEADER checkpoints away the
/// WAL it still needs: on restart it must re-bootstrap from the shipped
/// snapshot and still converge.
#[test]
fn chaos_leader_checkpoint_while_follower_down() {
    let ldir = tmpdir("ckpt_leader");
    let rdir = tmpdir("ckpt_replica");
    let mut db = build_leader(&ldir, SyncPolicy::PerCommit, 7, 10);
    let table_dir = ldir.join("t");
    let opts = PersistOptions {
        sync: SyncPolicy::PerCommit,
        wal_compact_bytes: u64::MAX,
        compact_threshold: 0.25,
        history_stride: 1,
    };

    // Follower applies a strict prefix, then dies.
    let mut transport = DirTransport::new(&table_dir);
    let frames = all_frames(&table_dir);
    let mut replica = ReplicaState::open_or_bootstrap(&rdir, &mut transport, opts.clone()).unwrap();
    replica.apply_frame(&frames[0]).unwrap();
    drop(replica);

    // While it is down the leader checkpoints (WAL reset, horizon moves)
    // and takes more traffic.
    {
        let t = db.get_mut("t").unwrap();
        t.checkpoint().unwrap();
        t.apply(&Delta::inserting(vec![srow(9, 9)])).unwrap();
        t.sync().unwrap();
    }

    let mut replica = ReplicaState::open(&rdir, opts).unwrap();
    let report = replica.sync(&mut transport).unwrap();
    assert!(report.bootstrapped, "the needed WAL records are gone: must re-bootstrap");
    let leader = db.get("t").unwrap();
    assert_eq!(replica.last_seq(), leader.last_seq());
    assert_eq!(state_image(replica.table()), state_image(leader));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seeds and kill points (clean and torn) under random fsync
    /// policies: convergence is not an artifact of the pinned streams.
    #[test]
    fn chaos_random_seed_and_kill_point(
        seed in 0u64..1_000_000,
        kill_frac in 0u64..100,
        policy_pick in 0u64..3,
        tear in 0u64..2,
    ) {
        let sync = match policy_pick {
            0 => SyncPolicy::PerCommit,
            1 => SyncPolicy::GroupCommit(4),
            _ => SyncPolicy::NoSync,
        };
        let label = format!("prop_{seed}_{kill_frac}_{policy_pick}_{tear}");
        let ldir = tmpdir(&format!("{label}_leader"));
        let scratch = tmpdir(&format!("{label}_replicas"));
        let db = build_leader(&ldir, sync, seed, 14);
        let leader = db.get("t").unwrap();
        let opts = PersistOptions {
            sync,
            wal_compact_bytes: u64::MAX,
            compact_threshold: 0.25,
            history_stride: 1,
        };
        let table_dir = ldir.join("t");
        let frames = all_frames(&table_dir);
        let image = state_image(leader);
        let kill_at = (kill_frac as usize * (frames.len() + 1)) / 100;
        let leader_ref = LeaderRef {
            table_dir: &table_dir,
            frames: &frames,
            image: &image,
            seq: leader.last_seq(),
        };
        kill_restart_converge(&leader_ref, &opts, kill_at.min(frames.len()), tear == 1, &scratch);
    }
}
