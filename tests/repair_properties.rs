//! Property-based tests (proptest) for the core invariants:
//!
//! * confidence characterises satisfaction: `c = 1 ⇔` Definition 2 holds;
//! * confidence bounds and the goodness identity;
//! * partition refinement ≡ naive grouping;
//! * the first repair found is minimal (no proper subset of its added
//!   attributes yields an exact FD);
//! * every reported repair is exact; adding a UNIQUE column always
//!   repairs; find-first agrees with find-all's best.

use evofd::core::{confidence, is_satisfied, repair_fd, Fd, Measures, RepairConfig};
use evofd::storage::{
    count_distinct, count_distinct_naive, AttrSet, DataType, DistinctCache, Field, Relation,
    Schema, Value,
};
use proptest::prelude::*;

/// A random small relation: up to 6 attributes × up to 40 rows over tiny
/// domains (tiny domains make FD violations and repairs likely).
fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..=6, 1usize..=40).prop_flat_map(|(arity, rows)| {
        let row = proptest::collection::vec(0u8..4, arity);
        proptest::collection::vec(row, rows).prop_map(move |data| {
            let fields: Vec<Field> =
                (0..arity).map(|i| Field::not_null(format!("a{i}"), DataType::Int)).collect();
            let schema = Schema::new("prop", fields).expect("unique names").into_shared();
            Relation::from_rows(
                schema,
                data.into_iter().map(|r| r.into_iter().map(|v| Value::Int(v as i64)).collect()),
            )
            .expect("types match")
        })
    })
}

/// A relation plus a random single-attribute-consequent FD over it.
fn arb_relation_fd() -> impl Strategy<Value = (Relation, Fd)> {
    arb_relation().prop_flat_map(|rel| {
        let arity = rel.arity();
        (Just(rel), 0usize..arity, 0usize..arity, proptest::bits::u8::masked(0b11)).prop_map(
            |(rel, lhs0, rhs, extra_mask)| {
                let mut lhs = AttrSet::single(evofd::storage::AttrId::from(lhs0));
                // Possibly widen the antecedent with up to 2 more attrs.
                for bit in 0..2usize {
                    if extra_mask & (1 << bit) != 0 {
                        lhs.insert(evofd::storage::AttrId::from((lhs0 + bit + 1) % rel.arity()));
                    }
                }
                let rhs_attr = evofd::storage::AttrId::from(rhs);
                let lhs = lhs.without(rhs_attr);
                let fd = Fd::new(lhs, AttrSet::single(rhs_attr)).expect("non-empty rhs");
                (rel, fd)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn confidence_characterises_satisfaction((rel, fd) in arb_relation_fd()) {
        let sat_counts = is_satisfied(&rel, &fd);
        let sat_naive = fd.satisfied_naive(&rel);
        prop_assert_eq!(sat_counts, sat_naive, "Definition 2 vs count equality");
        let c = confidence(&rel, &fd);
        prop_assert!(c > 0.0 && c <= 1.0, "confidence in (0,1]: {}", c);
        prop_assert_eq!(c == 1.0, sat_naive, "c = 1 iff satisfied");
    }

    #[test]
    fn goodness_identity((rel, fd) in arb_relation_fd()) {
        let m = Measures::compute(&rel, &fd, &mut DistinctCache::new());
        let lhs = count_distinct(&rel, fd.lhs()) as i64;
        let rhs = count_distinct(&rel, fd.rhs()) as i64;
        prop_assert_eq!(m.goodness, lhs - rhs);
        // Exact FDs always have non-negative goodness.
        if m.is_exact() {
            prop_assert!(m.goodness >= 0);
        }
    }

    #[test]
    fn distinct_counting_strategies_agree(rel in arb_relation(), mask in 1u8..63) {
        let attrs = AttrSet::from_indices(
            (0..rel.arity()).filter(|i| mask & (1 << i) != 0),
        );
        prop_assume!(!attrs.is_empty());
        prop_assert_eq!(count_distinct(&rel, &attrs), count_distinct_naive(&rel, &attrs));
    }

    #[test]
    fn monotone_counts((rel, fd) in arb_relation_fd()) {
        // |π_XY| >= |π_X| and |π_XY| >= |π_Y| — projections only merge.
        let x = count_distinct(&rel, fd.lhs());
        let y = count_distinct(&rel, fd.rhs());
        let xy = count_distinct(&rel, &fd.attrs());
        prop_assert!(xy >= x && xy >= y);
        prop_assert!(xy <= rel.row_count().max(1));
    }

    #[test]
    fn repairs_are_exact_and_first_is_minimal((rel, fd) in arb_relation_fd()) {
        prop_assume!(!is_satisfied(&rel, &fd));
        let search = repair_fd(&rel, &fd, &RepairConfig::find_all()).unwrap();
        for repair in &search.repairs {
            prop_assert!(repair.measures.is_exact(), "every reported repair is exact");
            prop_assert!(is_satisfied(&rel, &repair.fd));
            prop_assert!(repair.added.is_disjoint(&fd.attrs()));
        }
        if let Some(best) = search.best() {
            // Minimality: no strict subset of the added attributes works.
            let added: Vec<_> = best.added.iter().collect();
            for skip in 0..added.len() {
                let subset = AttrSet::from_attrs(
                    added.iter().enumerate().filter(|&(i, _)| i != skip).map(|(_, &a)| a),
                );
                let weaker = fd.with_lhs_attrs(&subset);
                prop_assert!(
                    !is_satisfied(&rel, &weaker),
                    "strict subset {} already repairs — not minimal",
                    subset
                );
            }
        }
    }

    #[test]
    fn find_first_matches_find_all_best((rel, fd) in arb_relation_fd()) {
        prop_assume!(!is_satisfied(&rel, &fd));
        let first = repair_fd(&rel, &fd, &RepairConfig::find_first()).unwrap();
        let all = repair_fd(&rel, &fd, &RepairConfig::find_all()).unwrap();
        match (first.best(), all.best()) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.fd, &b.fd, "same best repair in both modes");
            }
            (a, b) => prop_assert!(false, "modes disagree: {:?} vs {:?}", a.is_some(), b.is_some()),
        }
        // find-first never finds more than one repair.
        prop_assert!(first.repairs.len() <= 1);
        prop_assert!(all.repairs.len() >= first.repairs.len());
    }

    #[test]
    fn unique_column_always_repairs(rel in arb_relation()) {
        // Append a unique column; any violated FD must then be repairable.
        let mut fields: Vec<Field> = rel.schema().fields().to_vec();
        fields.push(Field::not_null("uid", DataType::Int));
        let schema = Schema::new("prop_u", fields).expect("unique").into_shared();
        let rows = (0..rel.row_count()).map(|i| {
            let mut row = rel.row(i);
            row.push(Value::Int(i as i64));
            row
        });
        let rel2 = Relation::from_rows(schema, rows).expect("consistent");
        let fd = Fd::parse(rel2.schema(), "a0 -> a1").expect("exists");
        prop_assume!(!is_satisfied(&rel2, &fd));
        let search = repair_fd(&rel2, &fd, &RepairConfig::find_all()).unwrap();
        prop_assert!(search.best().is_some(), "the unique column guarantees a repair");
        // And a goodness threshold of 0 rejects pure-key repairs unless
        // they are genuinely bijective.
        let strict = RepairConfig { goodness_threshold: Some(0), ..RepairConfig::find_all() };
        let strict_search = repair_fd(&rel2, &fd, &strict).unwrap();
        for r in &strict_search.repairs {
            prop_assert_eq!(r.measures.abs_goodness(), 0);
        }
    }

    #[test]
    fn epsilon_cb_zero_iff_exact_and_bijective((rel, fd) in arb_relation_fd()) {
        let m = Measures::compute(&rel, &fd, &mut DistinctCache::new());
        let zero = m.epsilon_cb() == 0.0;
        prop_assert_eq!(zero, m.is_exact() && m.goodness == 0);
    }
}
