//! Cross-check: the paper computes every measure via SQL
//! `COUNT(DISTINCT …)`; our engine computes them natively. Both paths
//! must agree — on the running example and on random NULL-free relations
//! (property test). Also covers CSV round-trips feeding the SQL engine.

use evofd::core::{confidence, goodness, Fd};
use evofd::sql::Engine;
use evofd::storage::{
    read_csv_str, write_csv_str, Catalog, DataType, Field, Relation, Schema, Value,
};
use proptest::prelude::*;

fn engine_for(rel: &Relation) -> Engine {
    let mut cat = Catalog::new();
    cat.insert(rel.clone()).expect("fresh catalog");
    Engine::with_catalog(cat)
}

fn count_distinct_sql(engine: &mut Engine, table: &str, attrs: &[&str]) -> i64 {
    let cols = attrs.join(", ");
    engine
        .query_scalar(&format!("SELECT COUNT(DISTINCT {cols}) FROM {table}"))
        .expect("valid query")
        .as_int()
        .expect("integer count")
}

#[test]
fn places_confidence_via_sql_matches_native() {
    let rel = evofd::datagen::places();
    let mut engine = engine_for(&rel);
    // F1 (the paper's Q1/Q2).
    let x = count_distinct_sql(&mut engine, "Places", &["District", "Region"]);
    let xy = count_distinct_sql(&mut engine, "Places", &["District", "Region", "AreaCode"]);
    let fd = Fd::parse(rel.schema(), "District, Region -> AreaCode").unwrap();
    assert_eq!(x as f64 / xy as f64, confidence(&rel, &fd));
    // Goodness via SQL.
    let y = count_distinct_sql(&mut engine, "Places", &["AreaCode"]);
    assert_eq!(x - y, goodness(&rel, &fd));
}

#[test]
fn csv_round_trip_preserves_measures() {
    let rel = evofd::datagen::places();
    let csv = write_csv_str(&rel);
    let back = read_csv_str("Places", &csv, &Default::default()).unwrap();
    assert_eq!(back.row_count(), rel.row_count());
    for fd_text in ["District, Region -> AreaCode", "Zip -> City, State", "District -> PhNo"] {
        let fd_a = Fd::parse(rel.schema(), fd_text).unwrap();
        let fd_b = Fd::parse(back.schema(), fd_text).unwrap();
        assert_eq!(confidence(&rel, &fd_a), confidence(&back, &fd_b), "{fd_text}");
        assert_eq!(goodness(&rel, &fd_a), goodness(&back, &fd_b), "{fd_text}");
    }
}

#[test]
fn group_by_exposes_violating_groups() {
    let rel = evofd::datagen::places();
    let mut engine = engine_for(&rel);
    // A group with COUNT(DISTINCT AreaCode) > 1 is exactly a violation of
    // District,Region -> AreaCode.
    let out = engine
        .query(
            "SELECT District, Region, COUNT(DISTINCT AreaCode) AS n \
             FROM Places GROUP BY District, Region ORDER BY District",
        )
        .unwrap();
    assert_eq!(out.row_count(), 2);
    for i in 0..out.row_count() {
        let n = out.row(i)[2].as_int().unwrap();
        assert_eq!(n, 2, "each district/region pair spans two area codes");
    }
}

fn arb_rel() -> impl Strategy<Value = Relation> {
    (2usize..=5, 1usize..=25).prop_flat_map(|(arity, rows)| {
        let row = proptest::collection::vec(0u8..4, arity);
        proptest::collection::vec(row, rows).prop_map(move |data| {
            let fields: Vec<Field> =
                (0..arity).map(|i| Field::not_null(format!("a{i}"), DataType::Int)).collect();
            let schema = Schema::new("t", fields).expect("unique").into_shared();
            Relation::from_rows(
                schema,
                data.into_iter().map(|r| r.into_iter().map(|v| Value::Int(v as i64)).collect()),
            )
            .expect("typed")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sql_count_distinct_agrees_with_native(rel in arb_rel(), mask in 1u8..31) {
        let attrs: Vec<String> = (0..rel.arity())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| format!("a{i}"))
            .collect();
        prop_assume!(!attrs.is_empty());
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let set = rel.schema().attr_set(&attr_refs).unwrap();
        let native = evofd::storage::count_distinct(&rel, &set);
        let mut engine = engine_for(&rel);
        let sql = count_distinct_sql(&mut engine, "t", &attr_refs);
        // NULL-free relations: SQL and native semantics coincide.
        prop_assert_eq!(native as i64, sql);
    }

    #[test]
    fn sql_where_partitions_rows(rel in arb_rel(), pivot in 0u8..4) {
        let mut engine = engine_for(&rel);
        let lo = engine
            .query_scalar(&format!("SELECT COUNT(*) FROM t WHERE a0 < {pivot}"))
            .unwrap()
            .as_int()
            .unwrap();
        let hi = engine
            .query_scalar(&format!("SELECT COUNT(*) FROM t WHERE a0 >= {pivot}"))
            .unwrap()
            .as_int()
            .unwrap();
        prop_assert_eq!(lo + hi, rel.row_count() as i64);
    }

    #[test]
    fn csv_round_trip_random(rel in arb_rel()) {
        let csv = write_csv_str(&rel);
        let back = read_csv_str("t", &csv, &Default::default()).unwrap();
        prop_assert_eq!(back.row_count(), rel.row_count());
        for i in 0..rel.row_count() {
            prop_assert_eq!(back.row(i), rel.row(i));
        }
    }
}
