//! Acceptance tests for the durable FD-health monitor
//! (`evofd-persist::history` + alert rules + `evofd-obs::serve`):
//!
//! * a seeded workload's HISTORY file is **byte-identical** whether the
//!   engine runs uninterrupted, is killed and reopened mid-stream, or is
//!   tailed by a WAL-shipping replica;
//! * `SHOW DRIFT HISTORY` names the **exact WAL seq** of the delta that
//!   first violated a drifted FD — including from a cold reopen;
//! * `/metrics` and `/health` are served over a real TCP socket backed by
//!   a live durable database;
//! * with `history_stride = 0` the monitor is pure observation: no
//!   HISTORY file is written and query results are identical.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use evofd::core::Fd;
use evofd::incremental::ValidatorConfig;
use evofd::persist::snapshot::encode_snapshot;
use evofd::persist::{
    ChannelTransport, Database, DbMonitorSource, DurableEngine, PersistOptions, ReplicaState,
    HISTORY_FILE,
};
use evofd::storage::{DataType, Field, Relation, Schema, Value};
use proptest::prelude::*;
use proptest::TestRng;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("evofd_monitor_equivalence").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `t(a INT, b TEXT)` with two tracked FDs, a confidence threshold and
/// an alert rule — the workload drives samples, drifts and alert
/// transitions into the HISTORY file.
fn seeded_engine(dir: &std::path::Path, opts: PersistOptions) -> DurableEngine {
    let mut engine = seeded_engine_bare(dir, opts);
    engine.execute("ALERT ON t FD 'a -> b' WHEN confidence < 0.9 FOR 2 EPOCHS").unwrap();
    engine
}

/// Like [`seeded_engine`] but with no alert rule installed: alert
/// evaluation rides the sampling path, so the stride-0 equivalence
/// below compares engines without it.
fn seeded_engine_bare(dir: &std::path::Path, opts: PersistOptions) -> DurableEngine {
    let schema =
        Schema::new("t", vec![Field::new("a", DataType::Int), Field::new("b", DataType::Str)])
            .unwrap()
            .into_shared();
    let rows =
        (0..8).map(|i| vec![Value::Int(i), Value::str(format!("v{}", i % 4))]).collect::<Vec<_>>();
    let rel = Relation::from_rows(schema, rows).unwrap();
    let fds = vec![
        Fd::parse(rel.schema(), "a -> b").unwrap(),
        Fd::parse(rel.schema(), "b -> a").unwrap(),
    ];
    let config =
        ValidatorConfig { confidence_thresholds: vec![0.75], ..ValidatorConfig::default() };
    let mut db = Database::open(dir, opts).unwrap();
    db.create_table(rel, fds, config).unwrap();
    DurableEngine::from_database(db).unwrap()
}

/// Same INSERT-heavy mix as the replication equivalence suite, so the
/// history picks up violations, repairs and alert flaps.
fn gen_statement(rng: &mut TestRng, step: usize) -> String {
    match rng.below(10) {
        0..=4 => {
            let n = 1 + rng.below(3);
            let rows: Vec<String> =
                (0..n).map(|_| format!("({}, 'v{}')", rng.below(30), rng.below(6))).collect();
            format!("INSERT INTO t VALUES {}", rows.join(", "))
        }
        5..=6 => {
            format!("UPDATE t SET b = 'u{step}' WHERE a % {} = {}", 2 + rng.below(4), rng.below(3))
        }
        7..=8 => format!("DELETE FROM t WHERE a = {}", rng.below(30)),
        _ => format!("SET compact_threshold = 0.{}", 1 + rng.below(9)),
    }
}

fn history_of(db: &Arc<Mutex<Database>>) -> Vec<u8> {
    db.lock().unwrap().get("t").unwrap().history_bytes()
}

fn state_of(db: &Arc<Mutex<Database>>) -> Vec<u8> {
    let db = db.lock().unwrap();
    let t = db.get("t").unwrap();
    encode_snapshot(t.live(), t.validator(), t.decisions(), t.indexed_columns(), t.alerts(), 0, 0)
}

/// Criterion 1: the HISTORY file is byte-identical across (a) an
/// uninterrupted run, (b) a run killed and reopened mid-stream, and
/// (c) a WAL-shipped replica tailing the uninterrupted leader.
#[test]
fn history_survives_kill_reopen_and_ships_to_replicas_byte_identical() {
    let seed = 2016u64;
    let steps = 120usize;
    let opts = PersistOptions::default();

    let adir = tmpdir("hist_uninterrupted");
    let bdir = tmpdir("hist_killed");
    let rdir = tmpdir("hist_replica");

    let mut a = seeded_engine(&adir, opts.clone());
    let mut b = seeded_engine(&bdir, opts.clone());
    let adb = a.database_handle();

    let mut transport = ChannelTransport::new(Arc::clone(&adb), "t");
    let mut replica = ReplicaState::open_or_bootstrap(&rdir, &mut transport, opts.clone()).unwrap();

    let kill_at = steps / 2 + (seed as usize % 10);
    let mut rng_a = TestRng::new(seed);
    let mut rng_b = TestRng::new(seed);
    for step in 0..steps {
        let sql = gen_statement(&mut rng_a, step);
        assert_eq!(sql, gen_statement(&mut rng_b, step), "rng streams must agree");
        let _ = a.execute(&sql);
        let _ = b.execute(&sql);
        replica.sync(&mut transport).unwrap();

        if step == kill_at {
            // Kill engine B mid-stream; recovery must land on the exact
            // same history file, frame for frame and byte for byte.
            let bdb = b.database_handle();
            let at_kill = history_of(&bdb);
            drop(b);
            drop(bdb);
            b = DurableEngine::open(&bdir, opts.clone()).unwrap();
            assert_eq!(
                history_of(&b.database_handle()),
                at_kill,
                "reopen rewrote or lost history frames at step {step}"
            );
        }
    }

    let bdb = b.database_handle();
    let uninterrupted = history_of(&adb);
    assert!(!uninterrupted.is_empty(), "the workload should have produced history frames");
    assert_eq!(state_of(&adb), state_of(&bdb), "engine state diverged");
    assert_eq!(uninterrupted, history_of(&bdb), "kill/reopen history diverged");
    assert_eq!(
        uninterrupted,
        replica.table().history_bytes(),
        "replica history diverged from the leader's"
    );

    // One more cold reopen of the killed lineage: still byte-identical.
    drop(b);
    drop(bdb);
    let b = DurableEngine::open(&bdir, opts).unwrap();
    assert_eq!(uninterrupted, history_of(&b.database_handle()));
}

/// Criterion 2: `SHOW DRIFT HISTORY` pinpoints the exact WAL seq of the
/// delta that first violated the FD — from the live engine and again
/// after a cold restart.
#[test]
fn drift_history_names_the_breaking_wal_seq() {
    let dir = tmpdir("drift_pinpoint");
    let mut e = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
    e.run_script(
        "CREATE TABLE t (zip TEXT, city TEXT);
         INSERT INTO t VALUES ('10', 'a'), ('20', 'b');",
    )
    .unwrap();
    e.execute("ALTER TABLE t ADD CONSTRAINT FD 'zip -> city'").unwrap();
    // A run of conforming deltas first, so the breaking seq is not
    // trivially the first write.
    for i in 0..5 {
        e.execute(&format!("INSERT INTO t VALUES ('3{i}', 'c{i}')")).unwrap();
    }
    let before = {
        let db = e.database_handle();
        let seq = db.lock().unwrap().get("t").unwrap().last_seq();
        seq
    };
    // This is the delta that breaks zip -> city.
    e.execute("INSERT INTO t VALUES ('10', 'z')").unwrap();
    let breaking_seq = before + 1;

    let drift = e.query("SHOW DRIFT HISTORY FOR t FD 'zip -> city'").unwrap();
    assert!(drift.row_count() >= 1, "violation recorded");
    assert_eq!(drift.row(0)[3], Value::str("violated"));
    assert_eq!(drift.row(0)[1], Value::Int(breaking_seq as i64), "wrong originating seq");
    let groups = format!("{:?}", drift.row(0)[6]);
    assert!(groups.contains("10"), "violating group key named: {groups}");

    // Cold start answers the same question from the durable file alone.
    drop(e);
    let mut r = DurableEngine::open(&dir, PersistOptions::default()).unwrap();
    let drift = r.query("SHOW DRIFT HISTORY FOR t FD 'zip -> city'").unwrap();
    assert!(drift.row_count() >= 1, "drift history survives reopen");
    assert_eq!(drift.row(0)[1], Value::Int(breaking_seq as i64), "seq lost across restart");
}

fn http_get(addr: SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
    (head.to_string(), body.to_string())
}

/// Criterion 3: `/metrics` and `/health` are served over a real TCP
/// socket, backed by a live durable database.
#[test]
fn metrics_and_health_are_served_over_tcp_from_a_live_database() {
    let dir = tmpdir("served");
    let mut e = seeded_engine(&dir, PersistOptions::default());
    e.execute("INSERT INTO t VALUES (100, 'x')").unwrap();

    evofd_obs::enable();
    let source = Arc::new(DbMonitorSource::new(e.database_handle()));
    let mut server = evofd_obs::serve("127.0.0.1:0", source).unwrap();
    let addr = server.addr();

    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    assert!(body.contains("# TYPE evofd_wal_appends_total counter"), "{body}");

    let (head, body) = http_get(addr, "/health");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains("\"status\":"), "{body}");
    assert!(body.contains("\"table\":\"t\""), "{body}");
    assert!(body.contains("\"tracked_fds\":2"), "{body}");
    assert!(body.contains("\"alerts\":"), "{body}");

    let (head, body) = http_get(addr, "/history?table=t");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains("\"epoch\":"), "{body}");
    assert!(body.contains("[a] -> [b]"), "{body}");

    let (head, _) = http_get(addr, "/history?table=missing");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");

    server.shutdown();
}

/// Criterion 4: with `history_stride = 0` the monitor is switched off
/// completely — no HISTORY file appears on disk, and the engine's state
/// and query results are identical to a monitored twin's.
fn run_stride_zero_equivalence(seed: u64, steps: usize) {
    let on_dir = tmpdir(&format!("stride_on_{seed}"));
    let off_dir = tmpdir(&format!("stride_off_{seed}"));
    let on_opts = PersistOptions { history_stride: 1, ..PersistOptions::default() };
    let off_opts = PersistOptions { history_stride: 0, ..PersistOptions::default() };

    let mut on = seeded_engine_bare(&on_dir, on_opts);
    let mut off = seeded_engine_bare(&off_dir, off_opts);

    let mut rng_on = TestRng::new(seed);
    let mut rng_off = TestRng::new(seed);
    for step in 0..steps {
        let sql = gen_statement(&mut rng_on, step);
        assert_eq!(sql, gen_statement(&mut rng_off, step));
        let on_result = on.execute(&sql).map(|r| format!("{r:?}"));
        let off_result = off.execute(&sql).map(|r| format!("{r:?}"));
        assert_eq!(on_result.is_ok(), off_result.is_ok(), "step {step} ({sql})");
    }

    let on_db = on.database_handle();
    let off_db = off.database_handle();
    assert!(!history_of(&on_db).is_empty(), "monitored run keeps frames (seed {seed})");
    assert!(history_of(&off_db).is_empty(), "stride 0 kept frames (seed {seed})");
    {
        let db = off_db.lock().unwrap();
        let path = db.get("t").unwrap().dir().join(HISTORY_FILE);
        assert!(!path.exists(), "stride 0 wrote {path:?}");
    }
    assert_eq!(state_of(&on_db), state_of(&off_db), "instrumentation changed engine state");

    for q in [
        "SELECT a, b FROM t ORDER BY a, b",
        "SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b",
        "SELECT COUNT(DISTINCT a, b) FROM t",
    ] {
        let lhs = on.query(q).unwrap();
        let rhs = off.query(q).unwrap();
        let rows =
            |r: &evofd::storage::Relation| (0..r.row_count()).map(|i| r.row(i)).collect::<Vec<_>>();
        assert_eq!(rows(&lhs), rows(&rhs), "query diverged: {q}");
    }
}

#[test]
fn history_stride_zero_is_pure_observation_seeded() {
    run_stride_zero_equivalence(4242, 80);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random seeds: turning the monitor off never changes behaviour.
    #[test]
    fn history_stride_zero_is_pure_observation(seed in 0u64..1_000_000) {
        run_stride_zero_equivalence(seed, 40);
    }
}
