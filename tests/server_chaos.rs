//! Chaos driver for `evofd-server`: socket-level failure injection over
//! the multi-client SQL + replication service.
//!
//! * two concurrent sessions keep **independent** session state
//!   (read-only flag, render limit) over one shared engine;
//! * a follower tails a served leader over TCP and reaches
//!   **byte-identical** state, surviving a server kill/restart mid-tail;
//! * a leader checkpoint forces **re-bootstrap over the socket** when
//!   the follower predates the shipping horizon;
//! * requests fragmented at **every byte boundary** still execute (the
//!   server reassembles frames across arbitrarily small reads);
//! * connections cut **mid-frame** — a client killed mid-request, a
//!   follower killed mid-bootstrap — leave the engine consistent;
//! * a subscriber receives pushed drift events, including events that
//!   interleave with its own request/response traffic.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use evofd::core::Fd;
use evofd::incremental::ValidatorConfig;
use evofd::persist::{Database, DurableEngine, PersistOptions, ReplicaState, SyncPolicy};
use evofd::server::proto::{read_frame, write_frame, Request, Response};
use evofd::server::{Client, ClientError, EvofdServer, ServerOptions, SocketTransport};
use evofd::storage::relation_of_strs;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("evofd_server_chaos").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> PersistOptions {
    PersistOptions { sync: SyncPolicy::PerCommit, ..PersistOptions::default() }
}

/// A durable engine over one table `t (X, Y TEXT)` tracking `X -> Y`.
fn engine_with_table(dir: &Path) -> DurableEngine {
    let rel =
        relation_of_strs("t", &["X", "Y"], &[&["x0", "y0"], &["x1", "y1"], &["x2", "y2"]]).unwrap();
    let fds = vec![Fd::parse(rel.schema(), "X -> Y").unwrap()];
    let mut db = Database::open(dir, opts()).unwrap();
    db.create_table(rel, fds, ValidatorConfig::default()).unwrap();
    DurableEngine::from_database(db).unwrap()
}

fn start_server(dir: &Path) -> EvofdServer {
    let engine = if dir.join("t").exists() {
        DurableEngine::open(dir, opts()).unwrap()
    } else {
        engine_with_table(dir)
    };
    EvofdServer::start(engine, "127.0.0.1:0", ServerOptions { read_only: false, poll_ms: 5 })
        .unwrap()
}

fn leader_image(server: &EvofdServer) -> Vec<u8> {
    server.with_engine(|e| e.with_database(|db| db.get("t").unwrap().encode_current_snapshot()))
}

#[test]
fn concurrent_sessions_keep_independent_state() {
    let dir = tmpdir("sessions");
    let server = start_server(&dir);
    let addr = server.addr().to_string();

    let mut a = Client::connect(&addr, "session-a").unwrap();
    let mut b = Client::connect(&addr, "session-b").unwrap();

    // A turns itself read-only; B stays writable on the SAME engine.
    a.set_session(true, 2).unwrap();
    let err = a.sql("INSERT INTO t VALUES ('x9', 'y9')").unwrap_err();
    assert!(
        matches!(&err, ClientError::Server(m) if m.to_lowercase().contains("read-only")),
        "read-only session must reject DML: {err}"
    );
    b.sql("INSERT INTO t VALUES ('x9', 'y9')").unwrap();

    // Render limits are per session too: A capped at 2 rows, B at 50.
    let rows_a = a.sql("SELECT X, Y FROM t").unwrap();
    let rows_b = b.sql("SELECT X, Y FROM t").unwrap();
    assert!(rows_b.lines().count() > rows_a.lines().count(), "a={rows_a}\nb={rows_b}");
    assert!(rows_b.contains("x9"), "B sees its own committed write: {rows_b}");

    // A flips back to writable without touching B's session.
    a.set_session(false, 50).unwrap();
    a.sql("INSERT INTO t VALUES ('x10', 'y10')").unwrap();

    // A `SET` in one session must not leak into the other or the base
    // engine (the swap-in/swap-out discipline around each statement).
    a.sql("SET compact_threshold = 0.9").unwrap();
    b.sql("INSERT INTO t VALUES ('x11', 'y11')").unwrap();
    server.with_engine(|e| {
        assert_ne!(
            e.engine().settings().compact_threshold,
            0.9,
            "a session SET leaked into the base engine settings"
        );
    });
}

#[test]
fn socket_follower_converges_and_survives_server_restart() {
    let ldir = tmpdir("restart_leader");
    let rdir = tmpdir("restart_replica");
    let mut server = start_server(&ldir);
    let addr = server.addr().to_string();

    let mut writer = Client::connect(&addr, "writer").unwrap();
    for i in 0..10 {
        writer.sql(&format!("INSERT INTO t VALUES ('a{i}', 'b{i}')")).unwrap();
    }

    // Cold bootstrap + tail over TCP.
    let mut transport = SocketTransport::new(&addr, "t", "chaos-follower");
    let mut replica =
        ReplicaState::open_or_bootstrap(&rdir.join("t"), &mut transport, opts()).unwrap();
    replica.sync(&mut transport).unwrap();
    assert_eq!(leader_image(&server), replica.table().encode_current_snapshot());

    // More writes land, then the server is killed mid-tail: the next
    // sync fails at the transport.
    for i in 10..16 {
        writer.sql(&format!("INSERT INTO t VALUES ('a{i}', 'b{i}')")).unwrap();
    }
    server.shutdown();
    let engine = server.try_into_engine().expect("all sessions severed");
    assert!(replica.sync(&mut transport).is_err(), "sync against a dead server must fail");

    // Restart on a fresh port (same durable engine), re-point the
    // transport, and the tail resumes exactly where it was acked.
    let server =
        EvofdServer::start(engine, "127.0.0.1:0", ServerOptions { read_only: false, poll_ms: 5 })
            .unwrap();
    transport.set_addr(&server.addr().to_string());
    let report = replica.sync(&mut transport).unwrap();
    assert!(!report.bootstrapped, "resume must tail frames, not re-bootstrap");
    assert_eq!(
        leader_image(&server),
        replica.table().encode_current_snapshot(),
        "replica must be byte-identical after the kill/restart"
    );

    // The resume fetch doubled as the follower's ack: the restarted
    // leader knows where this follower stands, by name.
    let acked = server
        .acks()
        .into_iter()
        .find(|(t, f, _)| t == "t" && f == "chaos-follower")
        .map(|(_, _, seq)| seq)
        .expect("leader tracks the follower's ack");
    assert!(acked >= 10, "acked {acked}");
}

#[test]
fn checkpoint_forces_rebootstrap_over_the_socket() {
    let ldir = tmpdir("rebootstrap_leader");
    let rdir = tmpdir("rebootstrap_replica");
    let server = start_server(&ldir);
    let addr = server.addr().to_string();

    let mut writer = Client::connect(&addr, "writer").unwrap();
    writer.sql("INSERT INTO t VALUES ('a0', 'b0')").unwrap();

    let mut transport = SocketTransport::new(&addr, "t", "reboot-follower");
    let mut replica =
        ReplicaState::open_or_bootstrap(&rdir.join("t"), &mut transport, opts()).unwrap();
    replica.sync(&mut transport).unwrap();

    // The leader keeps writing and then checkpoints (snapshot advances
    // PAST the follower's position, WAL resets): the follower now
    // predates the shipping horizon and must re-bootstrap over the
    // socket.
    writer.sql("INSERT INTO t VALUES ('a1', 'b1')").unwrap();
    writer.sql("INSERT INTO t VALUES ('a2', 'b2')").unwrap();
    server.with_engine(|e| e.checkpoint().unwrap());
    writer.sql("INSERT INTO t VALUES ('a3', 'b3')").unwrap();
    let report = replica.sync(&mut transport).unwrap();
    assert!(report.bootstrapped, "follower behind the snapshot horizon must re-bootstrap");
    assert_eq!(leader_image(&server), replica.table().encode_current_snapshot());
}

#[test]
fn requests_fragmented_at_every_split_point_still_execute() {
    let dir = tmpdir("fragment");
    let server = start_server(&dir);
    let addr = server.addr().to_string();

    let mut hello = Vec::new();
    write_frame(&mut hello, &Request::Hello { client: "frag".into() }.encode()).unwrap();
    let mut query = Vec::new();
    write_frame(&mut query, &Request::Sql { sql: "SELECT COUNT(*) FROM t".into() }.encode())
        .unwrap();
    let wire: Vec<u8> = hello.iter().chain(query.iter()).copied().collect();

    // Cut the two-request byte stream at every boundary — inside the
    // length header, the CRC, the payload, and across the frame border.
    for split in 1..wire.len() {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&wire[..split]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
        stream.write_all(&wire[split..]).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let first = read_frame(&mut reader).unwrap().expect("hello response");
        assert!(matches!(Response::decode(&first).unwrap(), Response::Hello { .. }));
        let second = read_frame(&mut reader).unwrap().expect("sql response");
        match Response::decode(&second).unwrap() {
            Response::Sql { text } => {
                assert!(text.contains('3'), "split {split}: wrong result: {text}")
            }
            other => panic!("split {split}: unexpected response {other:?}"),
        }
    }
}

#[test]
fn mid_frame_cuts_leave_the_engine_consistent() {
    let dir = tmpdir("midframe");
    let server = start_server(&dir);
    let addr = server.addr().to_string();

    // 1. A client dies mid-request: half an INSERT frame, then the
    //    connection drops. The statement never ran.
    let mut torn = Vec::new();
    write_frame(
        &mut torn,
        &Request::Sql { sql: "INSERT INTO t VALUES ('zz', 'zz')".into() }.encode(),
    )
    .unwrap();
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(&torn[..torn.len() / 2]).unwrap();
        stream.flush().unwrap();
    } // dropped mid-frame

    // 2. A follower dies mid-bootstrap: it requests the snapshot, reads
    //    a few bytes of the response and vanishes.
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        write_frame(&mut stream, &Request::Bootstrap { table: "t".into() }.encode()).unwrap();
        let mut partial = [0u8; 4];
        stream.read_exact(&mut partial).unwrap();
    } // dropped mid-response

    // The engine is untouched: same row count, and a fresh bootstrap is
    // byte-identical to the leader.
    let mut client = Client::connect(&addr, "verify").unwrap();
    let count = client.sql("SELECT COUNT(*) FROM t").unwrap();
    assert!(count.contains('3'), "torn frames must not execute: {count}");

    let rdir = tmpdir("midframe_replica");
    let mut transport = SocketTransport::new(&addr, "t", "midframe-follower");
    let mut replica =
        ReplicaState::open_or_bootstrap(&rdir.join("t"), &mut transport, opts()).unwrap();
    replica.sync(&mut transport).unwrap();
    assert_eq!(leader_image(&server), replica.table().encode_current_snapshot());
}

#[test]
fn subscribers_receive_pushed_drift_events() {
    let dir = tmpdir("subscribe");
    let server = start_server(&dir);
    let addr = server.addr().to_string();

    let mut watcher = Client::connect(&addr, "watcher").unwrap();
    watcher.subscribe("t").unwrap();

    // Another session violates X -> Y: x0 already maps to y0.
    let mut writer = Client::connect(&addr, "writer").unwrap();
    writer.sql("INSERT INTO t VALUES ('x0', 'CONFLICT')").unwrap();

    let (table, event) = watcher
        .next_event_timeout(Duration::from_secs(10))
        .unwrap()
        .expect("drift event must be pushed");
    assert_eq!(table, "t");
    assert!(event.contains("VIOLATED"), "event should describe the drift: {event}");

    // Events interleave with the subscriber's own requests: run a query
    // on the watcher connection while more drift lands; the pushed frame
    // is buffered, not lost.
    writer.sql("DELETE FROM t WHERE Y = 'CONFLICT'").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    watcher.sql("SELECT COUNT(*) FROM t").unwrap();
    let next = watcher.next_event_timeout(Duration::from_secs(10)).unwrap();
    assert!(next.is_some(), "repair-side drift event must arrive too");

    drop(server);
}
