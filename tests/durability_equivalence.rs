//! Kill-and-reopen equivalence for the durable storage engine
//! (`evofd-persist`): for any sequence of mutations, reopening from disk
//! (snapshot + WAL tail, including a torn final record) must produce a
//! `LiveRelation` and `IncrementalValidator` state identical to the
//! uninterrupted in-memory run.
//!
//! * `sql_seeded_replay_*` — a seeded stream of SQL INSERT/UPDATE/DELETE
//!   statements runs through a `DurableEngine` (killed and reopened midway
//!   and at the end) and an in-memory `Engine` twin; contents must match
//!   statement-for-statement.
//! * `torn_wal_recovery_is_prefix_consistent` — a proptest that truncates
//!   a generated WAL at **every byte offset** and asserts recovery yields
//!   exactly the state of replaying the surviving whole records.

use std::path::PathBuf;

use evofd::core::Fd;
use evofd::incremental::{Delta, IncrementalValidator, LiveRelation, ValidatorConfig};
use evofd::persist::{
    DurableEngine, DurableRelation, PersistOptions, SyncPolicy, WalRecord, SNAPSHOT_FILE, WAL_FILE,
};
use evofd::sql::Engine;
use evofd::storage::{relation_of_strs, Relation, Value};
use proptest::prelude::*;
use proptest::TestRng;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("evofd_durability_equivalence").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------
// Seeded SQL replay: durable engine (with kills) ≡ in-memory engine.
// ---------------------------------------------------------------------

/// One statement drawn from the seeded stream.
fn gen_statement(rng: &mut TestRng, step: usize) -> String {
    match rng.below(10) {
        0..=4 => {
            let n = 1 + rng.below(3);
            let rows: Vec<String> =
                (0..n).map(|_| format!("({}, 'v{}')", rng.below(50), rng.below(8))).collect();
            format!("INSERT INTO t VALUES {}", rows.join(", "))
        }
        5..=6 => {
            format!("UPDATE t SET b = 'u{step}' WHERE a % {} = {}", 2 + rng.below(4), rng.below(3))
        }
        7..=8 => format!("DELETE FROM t WHERE a = {}", rng.below(50)),
        _ => format!("SET compact_threshold = 0.{}", 1 + rng.below(9)),
    }
}

fn assert_tables_equal(durable: &mut DurableEngine, memory: &mut Engine, when: &str) {
    let d = durable.query("SELECT * FROM t").unwrap();
    let m = memory.query("SELECT * FROM t").unwrap();
    assert_eq!(d.row_count(), m.row_count(), "{when}: row counts diverged");
    for i in 0..d.row_count() {
        assert_eq!(d.row(i), m.row(i), "{when}: row {i} diverged");
    }
}

fn run_sql_replay(seed: u64, sync: SyncPolicy, wal_compact_bytes: u64) {
    let dir = tmpdir(&format!("sql_{seed}_{sync}"));
    let opts = PersistOptions { sync, wal_compact_bytes, ..PersistOptions::default() };
    let mut durable = DurableEngine::open(&dir, opts.clone()).unwrap();
    let mut memory = Engine::new();
    let ddl = "CREATE TABLE t (a INT, b TEXT)";
    durable.execute(ddl).unwrap();
    memory.execute(ddl).unwrap();

    let mut rng = TestRng::new(seed);
    let steps = 60;
    let kill_at = 20 + (seed as usize % 20);
    for step in 0..steps {
        let sql = gen_statement(&mut rng, step);
        let d = durable.execute(&sql);
        let m = memory.execute(&sql);
        assert_eq!(d.is_ok(), m.is_ok(), "step {step} `{sql}` disagreed: {d:?} vs {m:?}");
        if step == kill_at {
            // Kill the durable engine mid-stream and recover.
            drop(durable);
            durable = DurableEngine::open(&dir, opts.clone()).unwrap();
            assert_tables_equal(&mut durable, &mut memory, &format!("after kill at {step}"));
        }
    }
    assert_tables_equal(&mut durable, &mut memory, "before final kill");
    drop(durable);
    let mut recovered = DurableEngine::open(&dir, opts).unwrap();
    assert_tables_equal(&mut recovered, &mut memory, "after final reopen");
    // The recovered engine keeps working durably.
    recovered.execute("INSERT INTO t VALUES (999, 'post')").unwrap();
    memory.execute("INSERT INTO t VALUES (999, 'post')").unwrap();
    assert_tables_equal(&mut recovered, &mut memory, "post-recovery traffic");
}

#[test]
fn sql_seeded_replay_per_commit() {
    run_sql_replay(2016, SyncPolicy::PerCommit, 4 << 20);
}

#[test]
fn sql_seeded_replay_group_commit_with_tiny_wal_threshold() {
    // A 2 KiB threshold forces several snapshot-compactions mid-stream.
    run_sql_replay(77, SyncPolicy::GroupCommit(8), 2 << 10);
}

#[test]
fn sql_seeded_replay_no_sync() {
    run_sql_replay(40499, SyncPolicy::NoSync, 4 << 20);
}

// ---------------------------------------------------------------------
// Torn-write proptest: truncate the WAL at every byte offset.
// ---------------------------------------------------------------------

fn small_rel() -> Relation {
    relation_of_strs("t", &["X", "Y"], &[&["a", "1"], &["b", "2"], &["c", "3"]]).unwrap()
}

fn small_fds(rel: &Relation) -> Vec<Fd> {
    vec![Fd::parse(rel.schema(), "X -> Y").unwrap()]
}

/// A delta described independently of row ids: inserts carry values,
/// deletes pick "the k-th live row" and are resolved at apply time.
#[derive(Debug, Clone)]
struct DeltaSpec {
    inserts: Vec<(u8, u8)>,
    delete_nth: Option<u8>,
}

fn resolve(spec: &DeltaSpec, live: &LiveRelation) -> Delta {
    let mut delta = Delta::inserting(
        spec.inserts
            .iter()
            .map(|&(x, y)| vec![Value::str(format!("x{x}")), Value::str(format!("y{y}"))])
            .collect::<Vec<_>>(),
    );
    if let Some(k) = spec.delete_nth {
        let count = live.row_count();
        if count > 0 {
            let nth = (k as usize) % count;
            delta.deletes.push(live.live_rows().nth(nth).expect("counted"));
        }
    }
    delta
}

fn arb_delta_spec() -> impl Strategy<Value = DeltaSpec> {
    // The vendored proptest shim has no `option::of`; fold the None case
    // into the upper half of the range instead.
    (proptest::collection::vec((0u8..4, 0u8..4), 0..3), 0u8..16)
        .prop_map(|(inserts, d)| DeltaSpec { inserts, delete_nth: (d < 8).then_some(d) })
}

/// Replay `n` of the resolved deltas in memory, mirroring recovery.
fn twin_after(deltas: &[Delta], n: usize) -> (LiveRelation, IncrementalValidator) {
    let rel = small_rel();
    let fds = small_fds(&rel);
    let mut live = LiveRelation::new(rel).with_compact_threshold(1.0);
    let mut v = IncrementalValidator::new(&live, fds);
    for delta in &deltas[..n] {
        if delta.is_empty() {
            continue;
        }
        let applied = live.apply(delta).expect("twin replay");
        v.apply(&live, &applied);
    }
    (live, v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn torn_wal_recovery_is_prefix_consistent(specs in proptest::collection::vec(arb_delta_spec(), 1..6)) {
        let dir = tmpdir("torn_gen");
        let rel = small_rel();
        let opts = PersistOptions {
            sync: SyncPolicy::NoSync,
            wal_compact_bytes: u64::MAX,
            compact_threshold: 1.0, // never tombstone-compact: WAL is pure deltas
            history_stride: 1,
        };
        let mut table = DurableRelation::create(
            &dir, rel.clone(), small_fds(&rel), ValidatorConfig::default(), opts.clone(),
        ).unwrap();

        // Resolve and apply each spec, recording the concrete deltas.
        let mut deltas: Vec<Delta> = Vec::new();
        for spec in &specs {
            let delta = resolve(spec, table.live());
            table.apply(&delta).unwrap();
            deltas.push(delta);
        }
        table.sync().unwrap();
        drop(table);

        // Reconstruct the exact frame boundaries: the WAL holds one Delta
        // record per non-empty delta, seq/epoch counting from 1.
        let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let mut boundaries = vec![evofd::persist::wal::WAL_HEADER_LEN as usize];
        let mut epoch = 0u64;
        let mut seq = 0u64;
        let mut deltas_at: Vec<usize> = Vec::new(); // resolved-delta count per boundary
        for (i, delta) in deltas.iter().enumerate() {
            if delta.is_empty() {
                continue;
            }
            seq += 1;
            epoch += 1;
            let frame = WalRecord::Delta {
                seq,
                epoch_after: epoch,
                cursor: None,
                inserts: delta.inserts.clone(),
                deletes: delta.deletes.iter().map(|&d| d as u64).collect(),
            }
            .encode_frame();
            boundaries.push(boundaries.last().unwrap() + frame.len());
            deltas_at.push(i + 1);
        }
        prop_assert_eq!(*boundaries.last().unwrap(), wal_bytes.len(), "frame reconstruction");

        // Truncate at EVERY byte offset; recovery must equal replaying the
        // surviving whole records.
        let torn = tmpdir("torn_cut");
        std::fs::copy(dir.join(SNAPSHOT_FILE), torn.join(SNAPSHOT_FILE)).unwrap();
        for cut in 0..=wal_bytes.len() {
            std::fs::write(torn.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
            let recovered = DurableRelation::open(&torn, opts.clone()).unwrap();
            // How many whole records fit below the cut?
            let frames = boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
            let n = if frames == 0 { 0 } else { deltas_at[frames - 1] };
            let (live, v) = twin_after(&deltas, n);
            prop_assert_eq!(recovered.live().epoch(), live.epoch(), "epoch at cut {}", cut);
            prop_assert_eq!(
                recovered.live().live_mask(), live.live_mask(), "mask at cut {}", cut
            );
            for (ca, cb) in recovered
                .live()
                .relation()
                .columns()
                .iter()
                .zip(live.relation().columns())
            {
                prop_assert_eq!(ca.codes(), cb.codes(), "codes at cut {}", cut);
                prop_assert_eq!(ca.dict().values(), cb.dict().values(), "dict at cut {}", cut);
            }
            prop_assert_eq!(
                recovered.validator().measures(0),
                v.measures(0),
                "measures at cut {}", cut
            );
            prop_assert_eq!(
                recovered.validator().summary(0).violating_rows,
                v.summary(0).violating_rows,
                "violating rows at cut {}", cut
            );
        }
    }
}

// ---------------------------------------------------------------------
// Torn final record on the SQL path (the acceptance wording verbatim).
// ---------------------------------------------------------------------

#[test]
fn torn_final_record_on_sql_path() {
    let dir = tmpdir("sql_torn");
    let opts = PersistOptions::default();
    let mut e = DurableEngine::open(&dir, opts.clone()).unwrap();
    e.run_script(
        "CREATE TABLE t (a INT);
         INSERT INTO t VALUES (1), (2);
         INSERT INTO t VALUES (3);",
    )
    .unwrap();
    drop(e);

    // Tear the last WAL record in half.
    let wal_path = dir.join("t").join(WAL_FILE);
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

    let mut r = DurableEngine::open(&dir, opts).unwrap();
    // The torn third insert is gone; the first two survive whole.
    assert_eq!(r.query_scalar("SELECT COUNT(*) FROM t").unwrap(), Value::Int(2));
    r.with_database(|db| {
        let report = db.get("t").unwrap().recovery();
        assert!(report.torn_bytes > 0, "the tail was truncated: {report:?}");
        assert_eq!(report.replayed, 1, "only the whole record replayed");
    });
}
