//! Integration tests for the extension modules — violation inspection,
//! FD discovery, conditional FDs and normalisation — exercised against
//! the paper's datasets and the simulators.

use evofd::core::{
    bcnf_violations, candidate_keys, condition_repairs, discover_fds, is_bcnf, minimal_cover,
    violations, Cfd, DiscoveryConfig, Fd, Pattern, RepairConfig,
};
use evofd::datagen as dg;
use evofd::prelude::*;
use proptest::prelude::*;

#[test]
fn places_violation_evidence_matches_section1() {
    let rel = dg::places();
    let fds = dg::places_fds(&rel);
    // F1: every tuple is in some violating group ("all the tuples in
    // Places violate F1").
    let report = violations(&rel, &fds[0]);
    assert_eq!(report.violating_rows(), rel.row_count());
    assert_eq!(report.groups.len(), 2, "both (D,R) groups split");
    // F3: exactly the (888-5152, 60601) group, tuples t10 and t11.
    let report = violations(&rel, &fds[2]);
    assert_eq!(report.groups.len(), 1);
    assert_eq!(report.groups[0].rows, vec![9, 10], "t10 and t11 (0-based)");
    let text = report.render(&rel, 3);
    assert!(text.contains("Street = Main") && text.contains("Street = Bay"), "{text}");
}

#[test]
fn discovery_on_places_finds_the_paper_repairs() {
    let rel = dg::places();
    let mined = discover_fds(&rel, &DiscoveryConfig { max_lhs: 3, ..Default::default() });
    // The Table 1 winners appear as (generalisations of) mined FDs.
    let f1_municipal = Fd::parse(rel.schema(), "District, Region, Municipal -> AreaCode").unwrap();
    assert!(mined.covers(&f1_municipal));
    // Every mined FD is genuinely exact and minimal.
    for d in &mined.fds {
        assert!(d.fd.satisfied_naive(&rel), "{}", d.fd.display(rel.schema()));
    }
}

#[test]
fn discovery_agrees_with_repair_engine() {
    // On a mid-size simulator, every repair the engine reports must be a
    // superset of some mined determinant (mining sees all minimal FDs).
    let rel = dg::country(11);
    let fd = dg::country_fd(&rel);
    let search = repair_fd(&rel, &fd, &RepairConfig::find_all()).unwrap();
    let mined = discover_fds(&rel, &DiscoveryConfig { max_lhs: 3, ..Default::default() });
    for repair in search.repairs.iter().take(5) {
        assert!(
            mined.covers(&repair.fd),
            "repair {} not covered by mining",
            repair.fd.display(rel.schema())
        );
    }
}

#[test]
fn cfd_conditioning_on_rental() {
    // customer_id -> store_id is violated globally; conditioning on
    // staff_id gives full coverage (each staff serves one store).
    let rel = dg::rental(3);
    let fd = dg::rental_fd(&rel);
    let repairs = condition_repairs(&rel, &fd);
    let staff = rel.schema().resolve("staff_id").unwrap();
    let staff_repair = repairs.iter().find(|r| r.attr == staff).expect("staff is a candidate");
    assert_eq!(staff_repair.dirty_values, 0);
    assert!((staff_repair.coverage - 1.0).abs() < 1e-12);
    for cfd in staff_repair.clean_cfds.iter().take(2) {
        assert!(cfd.is_satisfied(&rel));
    }
}

#[test]
fn cfd_pattern_scope_and_support() {
    let rel = dg::places();
    let fd = Fd::parse(rel.schema(), "Zip -> City, State").unwrap();
    let state = rel.schema().resolve("State").unwrap();
    // Scope State = IL: zips 60415/60601 map to (Chicago|Chester, IL) —
    // 60415 is still dirty there (Chicago vs Chester).
    let il = Cfd::new(fd.clone(), Pattern::eq(state, Value::str("IL")));
    assert!(!il.is_satisfied(&rel));
    // Scope State = NY: one zip, one city — clean.
    let ny = Cfd::new(fd, Pattern::eq(state, Value::str("NY")));
    assert!(ny.is_satisfied(&rel));
    assert!(ny.support(&rel) > 0.0 && ny.support(&rel) < 1.0);
}

#[test]
fn normalisation_after_evolution() {
    let rel = dg::places();
    let schema = rel.schema();
    // Adopt the paper's evolved F1 plus the mined Municipal -> AreaCode.
    let adopted = vec![
        Fd::parse(schema, "District, Region, Municipal -> AreaCode").unwrap(),
        Fd::parse(schema, "Municipal -> AreaCode").unwrap(),
        Fd::parse(schema, "Zip, State -> City").unwrap(),
    ];
    let cover = minimal_cover(&adopted);
    assert!(cover.len() <= 2, "the evolved F1 is implied: {cover:?}");
    assert!(!is_bcnf(rel.arity(), &cover), "non-key FDs violate BCNF");
    assert!(!bcnf_violations(rel.arity(), &cover).is_empty());
    // Keys under these FDs exist and are minimal by construction.
    let keys = candidate_keys(rel.arity(), &cover, 8);
    assert!(!keys.is_empty());
    for key in &keys {
        for attr in key.iter() {
            let without = key.without(attr);
            assert!(
                !evofd::core::is_superkey(&without, rel.arity(), &cover),
                "key {key} is not minimal"
            );
        }
    }
}

#[test]
fn violations_shrink_after_repair() {
    let rel = dg::image_sized(6, 5_000);
    let fd = dg::image_fd(&rel);
    let before = violations(&rel, &fd);
    assert!(!before.is_clean());
    let search = repair_fd(&rel, &fd, &RepairConfig::find_first()).unwrap();
    let evolved = &search.best().unwrap().fd;
    let after = violations(&rel, evolved);
    assert!(after.is_clean(), "the evolved FD has no violating groups");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mining with min_confidence 1.0 and the naive Definition-2 check
    /// agree on every reported dependency; and mining covers every exact
    /// 1-attribute FD.
    #[test]
    fn discovery_soundness_and_level1_completeness(
        data in proptest::collection::vec(proptest::collection::vec(0u8..3, 4), 1..20)
    ) {
        let rel = evofd::storage::relation_of_strs(
            "p",
            &["a", "b", "c", "d"],
            &data
                .iter()
                .map(|row| {
                    // leak-free conversion: build owned strings per row
                    row.iter().map(|v| match v { 0 => "x", 1 => "y", _ => "z" }).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
                .iter()
                .map(|r| r.as_slice())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let mined = discover_fds(&rel, &DiscoveryConfig { max_lhs: 2, ..Default::default() });
        for d in &mined.fds {
            prop_assert!(d.fd.satisfied_naive(&rel), "unsound: {}", d.fd);
        }
        // Completeness at level 1: every exact single-attribute FD is
        // covered by something mined.
        for lhs in 0..4u16 {
            for rhs in 0..4u16 {
                if lhs == rhs { continue; }
                let fd = Fd::new(
                    evofd::storage::AttrSet::single(evofd::storage::AttrId(lhs)),
                    evofd::storage::AttrSet::single(evofd::storage::AttrId(rhs)),
                ).unwrap();
                if fd.satisfied_naive(&rel) {
                    prop_assert!(mined.covers(&fd), "missed {}", fd);
                }
            }
        }
    }

    /// Conditioning coverage is a valid probability and every proposed
    /// clean CFD is actually satisfied.
    #[test]
    fn conditioning_proposals_are_sound(
        data in proptest::collection::vec(proptest::collection::vec(0u8..3, 3), 1..25)
    ) {
        let rows: Vec<Vec<evofd::storage::Value>> = data
            .iter()
            .map(|r| r.iter().map(|&v| evofd::storage::Value::Int(v as i64)).collect())
            .collect();
        let schema = evofd::storage::Schema::uniform(
            "p", &["x", "y", "b"], evofd::storage::DataType::Int,
        ).unwrap().into_shared();
        let rel = evofd::storage::Relation::from_rows(schema, rows).unwrap();
        let fd = Fd::parse(rel.schema(), "x -> y").unwrap();
        for repair in condition_repairs(&rel, &fd) {
            prop_assert!((0.0..=1.0).contains(&repair.coverage));
            for cfd in &repair.clean_cfds {
                prop_assert!(cfd.is_satisfied(&rel), "{}", cfd.display(rel.schema()));
                prop_assert!(cfd.support(&rel) > 0.0);
            }
        }
    }
}
