//! Delta-equivalence property tests for `evofd-incremental`:
//!
//! for random insert/delete sequences over random relations, the
//! incrementally maintained [`Measures`] and violation aggregates must
//! **exactly** match a from-scratch recompute on a canonical snapshot
//! after every single delta — including across compactions (which force
//! the epoch-gap rebuild path) and oversized deltas (which force the
//! fraction-based full-recompute path). Drift events must fire exactly
//! when exactness flips.
//!
//! 128 proptest cases × multi-step sequences, plus a deterministic
//! 150-step replay seeded via `evofd-datagen`.

use evofd::core::{violations, Fd, Measures};
use evofd::incremental::{Delta, DriftKind, IncrementalValidator, LiveRelation, ValidatorConfig};
use evofd::storage::{AttrId, AttrSet, DataType, DistinctCache, Field, Relation, Schema, Value};
use proptest::prelude::*;

/// One scripted change: `kind` selects insert / delete / mixed, `values`
/// feeds inserts, `sel` picks the victim among live rows for deletes.
type Op = (u8, Vec<u8>, u8);

fn int_row(vals: &[u8]) -> Vec<Value> {
    vals.iter().map(|&v| Value::Int(v as i64)).collect()
}

fn schema(arity: usize) -> std::sync::Arc<Schema> {
    let fields: Vec<Field> =
        (0..arity).map(|i| Field::not_null(format!("a{i}"), DataType::Int)).collect();
    Schema::new("live", fields).expect("unique names").into_shared()
}

/// Relation + two FDs + an op script.
fn arb_case() -> impl Strategy<Value = (Relation, Vec<Fd>, Vec<Op>)> {
    (2usize..=5, 0usize..=12).prop_flat_map(|(arity, base_rows)| {
        let row = proptest::collection::vec(0u8..4, arity);
        let ops = proptest::collection::vec(
            (0u8..6, proptest::collection::vec(0u8..4, arity), 0u8..255),
            1..14,
        );
        (proptest::collection::vec(row, base_rows), ops, 0usize..arity, 0usize..arity).prop_map(
            move |(data, ops, lhs, rhs)| {
                let rel = Relation::from_rows(schema(arity), data.iter().map(|r| int_row(r)))
                    .expect("typed");
                let rhs_attr = AttrId::from(rhs);
                let lhs_set = AttrSet::single(AttrId::from(lhs)).without(rhs_attr);
                let fd1 = Fd::new(lhs_set, AttrSet::single(rhs_attr)).expect("rhs non-empty");
                // A second FD over the first two attributes keeps the
                // multi-FD bookkeeping honest.
                let fd2 = Fd::new(
                    AttrSet::single(AttrId(0)).without(AttrId(1)),
                    AttrSet::single(AttrId(1)),
                )
                .expect("rhs non-empty");
                (rel, vec![fd1, fd2], ops)
            },
        )
    })
}

/// Assert the maintained state equals a from-scratch recompute.
fn assert_equivalent(live: &LiveRelation, v: &IncrementalValidator) -> Result<(), TestCaseError> {
    let snap = live.snapshot();
    let mut cache = DistinctCache::new();
    for (i, fd) in v.fds().iter().enumerate() {
        let full = Measures::compute(&snap, fd, &mut cache);
        prop_assert_eq!(v.measures(i), full, "measures diverged for FD #{}", i);
        let report = violations(&snap, fd);
        let summary = v.summary(i);
        prop_assert_eq!(summary.violating_groups, report.groups.len());
        prop_assert_eq!(summary.violating_rows, report.violating_rows());
        prop_assert_eq!(summary.total_rows, snap.row_count());
        prop_assert_eq!(summary.is_clean(), report.is_clean());
    }
    Ok(())
}

/// Interpret one op against the live relation. Returns the delta (may be
/// empty when a delete finds no victim).
fn op_to_delta(live: &LiveRelation, op: &Op) -> Delta {
    let (kind, values, sel) = op;
    let mut delta = Delta::new();
    let wants_insert = matches!(kind % 3, 0 | 2);
    let wants_delete = matches!(kind % 3, 1 | 2);
    if wants_delete && live.row_count() > 0 {
        let victim = live
            .live_rows()
            .nth(*sel as usize % live.row_count())
            .expect("index within live count");
        delta.deletes.push(victim);
    }
    if wants_insert {
        delta.inserts.push(int_row(values));
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn incremental_matches_full_recompute_after_every_delta(
        (rel, fds, ops) in arb_case()
    ) {
        let mut live = LiveRelation::new(rel).with_compact_threshold(0.4);
        let mut v = IncrementalValidator::new(&live, fds);
        assert_equivalent(&live, &v)?;

        for (step, op) in ops.iter().enumerate() {
            let delta = op_to_delta(&live, op);
            let before: Vec<bool> = (0..v.fds().len()).map(|i| v.is_exact(i)).collect();
            let applied = live.apply(&delta).expect("script only builds valid deltas");
            let drift = v.apply(&live, &applied);

            // Exactness flips must be announced, and only real flips.
            for (i, was_exact) in before.iter().enumerate() {
                let now_exact = v.is_exact(i);
                let flipped_down = drift.iter().any(|d| {
                    d.fd_index == i && matches!(d.kind, DriftKind::BecameViolated)
                });
                let flipped_up = drift.iter().any(|d| {
                    d.fd_index == i && matches!(d.kind, DriftKind::BecameExact)
                });
                prop_assert_eq!(flipped_down, *was_exact && !now_exact, "step {}", step);
                prop_assert_eq!(flipped_up, !*was_exact && now_exact, "step {}", step);
            }

            assert_equivalent(&live, &v)?;

            // Every third step, give compaction a chance: if it fires, the
            // next delta exercises the epoch-gap rebuild; an immediate
            // resync must also agree.
            if step % 3 == 2 && live.maybe_compact() > 0 {
                v.resync(&live);
                assert_equivalent(&live, &v)?;
            }
        }
    }

    #[test]
    fn oversized_deltas_rebuild_to_the_same_state(
        (rel, fds, _) in arb_case(),
        bulk in proptest::collection::vec(proptest::collection::vec(0u8..4, 5), 30..50)
    ) {
        // Force both paths over the same traffic and compare their states.
        let arity = rel.arity();
        let mut live_a = LiveRelation::new(rel.clone());
        let mut live_b = LiveRelation::new(rel);
        // `a` may choose full recomputes (tiny fraction); `b` never does.
        let mut v_a = IncrementalValidator::with_config(
            &live_a,
            fds.clone(),
            ValidatorConfig { full_recompute_fraction: 0.0, ..ValidatorConfig::default() },
        );
        let mut v_b = IncrementalValidator::with_config(
            &live_b,
            fds,
            ValidatorConfig {
                full_recompute_fraction: f64::INFINITY,
                ..ValidatorConfig::default()
            },
        );
        let rows: Vec<Vec<Value>> = bulk.iter().map(|r| int_row(&r[..arity])).collect();
        let delta = Delta::inserting(rows);
        let applied = live_a.apply(&delta).expect("valid");
        v_a.apply(&live_a, &applied);
        let applied = live_b.apply(&delta).expect("valid");
        v_b.apply(&live_b, &applied);

        prop_assert!(v_a.stats().full_recomputes >= 1);
        prop_assert_eq!(v_b.stats().full_recomputes, 0);
        for i in 0..v_a.fds().len() {
            prop_assert_eq!(v_a.measures(i), v_b.measures(i));
            prop_assert_eq!(v_a.summary(i), v_b.summary(i));
        }
        assert_equivalent(&live_a, &v_a)?;
    }
}

/// Deterministic replay seeded via `evofd-datagen`: a planted-FD relation
/// under 150 scripted deltas, equivalence checked at every step. This is
/// the fixed regression complement to the random cases above.
#[test]
fn datagen_seeded_replay_stays_equivalent() {
    use evofd::datagen::SyntheticSpec;

    let rel = SyntheticSpec::planted_fd("seeded", 2, 1, 400, 8, 0.05, 2016).generate();
    let donor = SyntheticSpec::planted_fd("seeded", 2, 1, 400, 8, 0.5, 7).generate();
    let fds = vec![
        Fd::parse(rel.schema(), "a0, a1 -> a3").unwrap(),
        Fd::parse(rel.schema(), "a0 -> a2").unwrap(),
    ];
    let mut live = LiveRelation::new(rel).with_compact_threshold(0.35);
    let mut v = IncrementalValidator::new(&live, fds);
    let feed = v.subscribe();

    let check = |live: &LiveRelation, v: &IncrementalValidator| {
        let snap = live.snapshot();
        let mut cache = DistinctCache::new();
        for (i, fd) in v.fds().iter().enumerate() {
            assert_eq!(v.measures(i), Measures::compute(&snap, fd, &mut cache), "FD #{i}");
            let report = violations(&snap, fd);
            assert_eq!(v.summary(i).violating_groups, report.groups.len());
            assert_eq!(v.summary(i).violating_rows, report.violating_rows());
        }
    };

    // A little deterministic LCG drives the op mix.
    let mut state = 0x2016_edb7u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for step in 0..150 {
        let mut delta = Delta::new();
        match next() % 3 {
            0 => {
                // Batch insert of 1..8 donor rows.
                for _ in 0..(next() % 8 + 1) {
                    delta.inserts.push(donor.row(next() % donor.row_count()));
                }
            }
            1 => {
                // Delete up to 5 distinct live rows.
                let live_ids: Vec<usize> = live.live_rows().collect();
                let mut victims = std::collections::BTreeSet::new();
                for _ in 0..(next() % 5 + 1).min(live_ids.len()) {
                    victims.insert(live_ids[next() % live_ids.len()]);
                }
                delta.deletes.extend(victims);
            }
            _ => {
                // Mixed batch.
                delta.inserts.push(donor.row(next() % donor.row_count()));
                if let Some(victim) = live.live_rows().next() {
                    delta.deletes.push(victim);
                }
            }
        }
        let applied = live.apply(&delta).expect("scripted deltas are valid");
        v.apply(&live, &applied);
        check(&live, &v);
        if step % 10 == 9 && live.maybe_compact() > 0 {
            v.resync(&live);
            check(&live, &v);
        }
    }
    let stats = v.stats();
    assert_eq!(stats.deltas, 150);
    assert!(stats.incremental > 100, "most deltas took the fast path: {stats:?}");
    assert!(v.poll(feed).len() as u64 == stats.events, "feed carried every event");
}
