//! Property tests for Section 5: the CB/EB measure relationship
//! (Theorem 1), ranking agreement, and entropy identities.
//!
//! The direction ε_CB = 0 ⟹ ε_VI = 0 holds unconditionally. The printed
//! converse requires `|π_XY| = |π_Y|` (see `evofd_baseline::compare` and
//! EXPERIMENTS.md); we test the repaired statement plus the invariants
//! both methods must share: identical exact-repair sets, since EB's
//! homogeneity test `H(C_XY|C_XA) = 0` is equivalent to confidence 1.

use evofd::baseline::{
    eb_rank_candidates, epsilon_vi_candidate, theorem1_counterexample, theorem1_holds,
    variation_of_information, MeasurePair, RankingComparison,
};
use evofd::core::{candidate_pool, Fd};
use evofd::storage::{AttrSet, DataType, Field, Partition, Relation, Schema, Value};
use proptest::prelude::*;

fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..=5, 1usize..=30).prop_flat_map(|(arity, rows)| {
        let row = proptest::collection::vec(0u8..3, arity);
        proptest::collection::vec(row, rows).prop_map(move |data| {
            let fields: Vec<Field> =
                (0..arity).map(|i| Field::not_null(format!("a{i}"), DataType::Int)).collect();
            let schema = Schema::new("thm", fields).expect("unique").into_shared();
            Relation::from_rows(
                schema,
                data.into_iter().map(|r| r.into_iter().map(|v| Value::Int(v as i64)).collect()),
            )
            .expect("typed")
        })
    })
}

fn arb_labels() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (1usize..=24).prop_flat_map(|n| {
        (proptest::collection::vec(0u32..4, n), proptest::collection::vec(0u32..4, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn theorem1_with_precondition((rel, lhs, rhs, cand) in arb_relation().prop_flat_map(|rel| {
        let arity = rel.arity();
        (Just(rel), 0usize..arity, 0usize..arity, 0usize..arity)
    })) {
        prop_assume!(lhs != rhs && cand != rhs && cand != lhs);
        let fd = Fd::new(
            AttrSet::single(evofd::storage::AttrId::from(lhs)),
            AttrSet::single(evofd::storage::AttrId::from(rhs)),
        ).unwrap();
        let added = AttrSet::single(evofd::storage::AttrId::from(cand));
        prop_assert!(theorem1_holds(&rel, &fd, &added));
    }

    #[test]
    fn forward_direction_unconditional((rel, lhs, rhs, cand) in arb_relation().prop_flat_map(|rel| {
        let arity = rel.arity();
        (Just(rel), 0usize..arity, 0usize..arity, 0usize..arity)
    })) {
        prop_assume!(lhs != rhs && cand != rhs && cand != lhs);
        let fd = Fd::new(
            AttrSet::single(evofd::storage::AttrId::from(lhs)),
            AttrSet::single(evofd::storage::AttrId::from(rhs)),
        ).unwrap();
        let added = AttrSet::single(evofd::storage::AttrId::from(cand));
        let pair = MeasurePair::of_candidate(&rel, &fd, &added);
        prop_assert!(pair.cb_null_implies_vi_null(), "{:?}", pair);
        prop_assert!(pair.epsilon_vi >= -1e-12, "VI is non-negative");
        prop_assert!(pair.epsilon_cb >= 0.0);
    }

    #[test]
    fn eb_homogeneity_equals_cb_exactness(rel in arb_relation()) {
        let fd = Fd::parse(rel.schema(), "a0 -> a1").unwrap();
        let pool = candidate_pool(&rel, &fd);
        prop_assume!(!pool.is_empty());
        let (ranked, _) = eb_rank_candidates(&rel, &fd, &pool);
        for cand in &ranked {
            prop_assert_eq!(
                cand.is_exact(),
                cand.measures.is_exact(),
                "H(C_XY|C_XA) = 0 ⇔ confidence 1 for {:?}", cand.attr
            );
        }
        // Full comparison agrees on the exact-repair set.
        let cmp = RankingComparison::run(&rel, &fd);
        prop_assert!(cmp.agree_on_exactness());
    }

    #[test]
    fn vi_is_a_symmetric_premetric((a, b) in arb_labels()) {
        let pa = Partition::from_labels(&a);
        let pb = Partition::from_labels(&b);
        let ab = variation_of_information(&pa, &pb);
        let ba = variation_of_information(&pb, &pa);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry: {} vs {}", ab, ba);
        prop_assert!(ab >= -1e-12, "non-negativity");
        // Identity of indiscernibles (same labels → 0).
        prop_assert!(variation_of_information(&pa, &pa) == 0.0);
    }

    #[test]
    fn epsilon_vi_zero_for_identical_partitions(rel in arb_relation()) {
        // Adding the consequent-determining antecedent itself: C_XU = C_X,
        // so ε_VI(F, ∅) = VI(C_XY, C_X) = 0 ⇔ X -> Y exact.
        let fd = Fd::parse(rel.schema(), "a0 -> a1").unwrap();
        let eps = epsilon_vi_candidate(&rel, &fd, &AttrSet::empty());
        let exact = evofd::core::is_satisfied(&rel, &fd);
        prop_assert_eq!(eps == 0.0, exact, "eps = {}", eps);
    }
}

#[test]
fn counterexample_to_printed_converse() {
    let (rel, fd, added) = theorem1_counterexample();
    let pair = MeasurePair::of_candidate(&rel, &fd, &added);
    assert_eq!(pair.epsilon_vi, 0.0);
    assert!(pair.epsilon_cb > 0.0);
    // theorem1_holds still passes because the |π_XY| = |π_Y| precondition
    // fails on this instance — the repaired statement is consistent.
    assert!(theorem1_holds(&rel, &fd, &added));
}

#[test]
fn entropy_chain_rule_on_relations() {
    // H(C_XY) = H(C_Y) + H(C_X|C_Y) when C_XY is the common refinement.
    use evofd::baseline::{entropy, Contingency};
    let rel = evofd::datagen::places();
    let x = Partition::by_attrs(&rel, &rel.schema().attr_set(&["District"]).unwrap());
    let y = Partition::by_attrs(&rel, &rel.schema().attr_set(&["AreaCode"]).unwrap());
    let xy = Partition::by_attrs(&rel, &rel.schema().attr_set(&["District", "AreaCode"]).unwrap());
    let t = Contingency::build(&x, &y);
    let h_xy = entropy(&xy);
    let h_y = entropy(&y);
    assert!((h_xy - (h_y + t.conditional_entropy_a_given_b())).abs() < 1e-9);
}
