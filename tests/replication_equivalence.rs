//! Leader ≡ follower convergence for WAL-shipping replication
//! (`evofd-persist::replication`): a seeded SQL workload runs on a
//! durable leader while a follower tails it over the in-process channel
//! transport, and at **every synced seq** the follower's relation bytes,
//! epoch and per-FD tracker counts must be byte-identical to the
//! leader's — and the two `FdDrift` event streams must match event for
//! event. The follower is killed and reopened mid-stream to prove the
//! acked position is durable.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use evofd::core::Fd;
use evofd::incremental::{FdDrift, ValidatorConfig};
use evofd::persist::snapshot::encode_snapshot;
use evofd::persist::{
    ChannelTransport, Database, DurableEngine, PersistOptions, ReplicaState, SyncPolicy,
};
use evofd::storage::{DataType, Field, Relation, Schema, Value};
use proptest::prelude::*;
use proptest::TestRng;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("evofd_replication_equivalence").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The leader's table: `t(a INT, b TEXT)` with two tracked FDs and a
/// confidence threshold, so the workload produces BecameViolated /
/// BecameExact / ConfidenceCrossed events.
fn base_relation() -> Relation {
    let schema =
        Schema::new("t", vec![Field::new("a", DataType::Int), Field::new("b", DataType::Str)])
            .unwrap()
            .into_shared();
    let rows =
        (0..8).map(|i| vec![Value::Int(i), Value::str(format!("v{}", i % 4))]).collect::<Vec<_>>();
    Relation::from_rows(schema, rows).unwrap()
}

fn leader_engine(dir: &std::path::Path, opts: PersistOptions) -> DurableEngine {
    let rel = base_relation();
    let fds = vec![
        Fd::parse(rel.schema(), "a -> b").unwrap(),
        Fd::parse(rel.schema(), "b -> a").unwrap(),
    ];
    let config =
        ValidatorConfig { confidence_thresholds: vec![0.75], ..ValidatorConfig::default() };
    let mut db = Database::open(dir, opts).unwrap();
    db.create_table(rel, fds, config).unwrap();
    DurableEngine::from_database(db).unwrap()
}

/// One statement of the seeded workload — INSERT-heavy with UPDATE,
/// DELETE and compaction-threshold churn mixed in.
fn gen_statement(rng: &mut TestRng, step: usize) -> String {
    match rng.below(10) {
        0..=4 => {
            let n = 1 + rng.below(3);
            let rows: Vec<String> =
                (0..n).map(|_| format!("({}, 'v{}')", rng.below(30), rng.below(6))).collect();
            format!("INSERT INTO t VALUES {}", rows.join(", "))
        }
        5..=6 => {
            format!("UPDATE t SET b = 'u{step}' WHERE a % {} = {}", 2 + rng.below(4), rng.below(3))
        }
        7..=8 => format!("DELETE FROM t WHERE a = {}", rng.below(30)),
        _ => format!("SET compact_threshold = 0.{}", 1 + rng.below(9)),
    }
}

/// Pure state bytes of a durable table (relation layout + epoch +
/// tracker counts), position-independent.
fn state_bytes(db: &Arc<Mutex<Database>>) -> Vec<u8> {
    let db = db.lock().unwrap();
    let t = db.get("t").unwrap();
    encode_snapshot(t.live(), t.validator(), t.decisions(), t.indexed_columns(), t.alerts(), 0, 0)
}

fn leader_seq(db: &Arc<Mutex<Database>>) -> u64 {
    db.lock().unwrap().get("t").unwrap().last_seq()
}

fn poll_leader_drift(
    db: &Arc<Mutex<Database>>,
    sub: evofd::incremental::SubscriptionId,
) -> Vec<FdDrift> {
    db.lock().unwrap().get_mut("t").unwrap().validator_mut().poll(sub)
}

/// True iff `needle` is an in-order subsequence of `haystack`.
fn is_subsequence(needle: &[FdDrift], haystack: &[FdDrift]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|e| it.any(|h| h == e))
}

fn run_workload(seed: u64, steps: usize, sync: SyncPolicy, wal_compact_bytes: u64) {
    let ldir = tmpdir(&format!("leader_{seed}_{sync}"));
    let rdir = tmpdir(&format!("replica_{seed}_{sync}"));
    let opts = PersistOptions { sync, wal_compact_bytes, ..PersistOptions::default() };

    let mut leader = leader_engine(&ldir, opts.clone());
    let db = leader.database_handle();
    let leader_sub = db.lock().unwrap().get_mut("t").unwrap().validator_mut().subscribe();
    let mut transport = ChannelTransport::new(Arc::clone(&db), "t");

    let mut replica = ReplicaState::open_or_bootstrap(&rdir, &mut transport, opts.clone()).unwrap();
    assert_eq!(state_bytes(&db), {
        let t = replica.table();
        encode_snapshot(
            t.live(),
            t.validator(),
            t.decisions(),
            t.indexed_columns(),
            t.alerts(),
            0,
            0,
        )
    });

    let mut rng = TestRng::new(seed);
    let kill_at = steps / 2 + (seed as usize % 10);
    let mut leader_events: Vec<FdDrift> = Vec::new();
    let mut replica_events: Vec<FdDrift> = Vec::new();
    let mut bootstrapped = 0usize;

    for step in 0..steps {
        let sql = gen_statement(&mut rng, step);
        let _ = leader.execute(&sql); // failures roll back identically
        leader_events.extend(poll_leader_drift(&db, leader_sub));

        if step == kill_at {
            // Kill the follower mid-stream; reopening must resume at the
            // exact acked position with no duplicate or skipped deltas.
            let acked = replica.last_seq();
            drop(replica);
            replica = ReplicaState::open(&rdir, opts.clone()).unwrap();
            assert_eq!(replica.last_seq(), acked, "acked position survived the kill");
        }

        let report = replica.sync(&mut transport).unwrap();
        bootstrapped += usize::from(report.bootstrapped);
        replica_events.extend(report.drift);

        // At every synced seq: identical positions, identical state bytes.
        assert_eq!(replica.last_seq(), leader_seq(&db), "step {step} ({sql})");
        let leader_bytes = state_bytes(&db);
        let replica_bytes = {
            let t = replica.table();
            encode_snapshot(
                t.live(),
                t.validator(),
                t.decisions(),
                t.indexed_columns(),
                t.alerts(),
                0,
                0,
            )
        };
        assert_eq!(leader_bytes, replica_bytes, "state diverged at step {step} ({sql})");
        // Epochs ride inside the snapshot encoding, but assert explicitly
        // for a readable failure.
        assert_eq!(
            db.lock().unwrap().get("t").unwrap().live().epoch(),
            replica.table().live().epoch(),
            "epoch diverged at step {step}"
        );
    }

    if bootstrapped == 0 {
        // Continuously tailed: the streams must match event for event.
        assert_eq!(leader_events, replica_events, "FdDrift streams diverged");
    } else {
        // A leader checkpoint forced a re-bootstrap: the jumped-over
        // deltas' events are not replayable (that is what bootstrap IS),
        // but everything the follower did emit must be the leader's
        // stream minus those gaps — an in-order subsequence, with the
        // converged tail identical.
        assert!(
            is_subsequence(&replica_events, &leader_events),
            "replica events are not an in-order subsequence of the leader's"
        );
    }
    assert!(
        !leader_events.is_empty(),
        "the workload should have produced drift events (seed {seed})"
    );

    // A final kill/reopen of the follower lands on the same state.
    drop(replica);
    let replica = ReplicaState::open(&rdir, opts).unwrap();
    assert_eq!(state_bytes(&db), {
        let t = replica.table();
        encode_snapshot(
            t.live(),
            t.validator(),
            t.decisions(),
            t.indexed_columns(),
            t.alerts(),
            0,
            0,
        )
    });
}

#[test]
fn replication_equivalence_seeded_200_steps() {
    run_workload(2016, 200, SyncPolicy::PerCommit, 4 << 20);
}

#[test]
fn replication_equivalence_group_commit_with_checkpoints() {
    // A tiny WAL threshold forces leader snapshot-compactions mid-stream,
    // exercising the follower re-bootstrap path under group commit.
    run_workload(77, 120, SyncPolicy::GroupCommit(8), 2 << 10);
}

#[test]
fn replication_equivalence_no_sync() {
    run_workload(40499, 120, SyncPolicy::NoSync, 4 << 20);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random seeds, shorter streams: the equivalence holds for any
    /// workload, not just the pinned seeds above.
    #[test]
    fn replication_equivalence_random_seeds(seed in 0u64..1_000_000) {
        run_workload(seed, 60, SyncPolicy::PerCommit, 4 << 20);
    }
}
