//! Every number the paper states about the running example, verified
//! exactly: F1–F4 measures (§3–§4), the violating tuple sets (§1), the
//! §4.1 repair order and ranks, Tables 1 and 2 cell-for-cell, Table 3's
//! confidence column, and the §4.3 minimal two-attribute repairs.

use evofd::core::{
    candidate_pool, extend_by_one, order_fds, repair_fd, ConflictMode, Fd, Measures, RepairConfig,
};
use evofd::datagen::{places, places_f4, places_fds};
use evofd::storage::{AttrSet, DistinctCache, Relation};

fn measures(rel: &Relation, fd: &Fd) -> Measures {
    Measures::compute(rel, fd, &mut DistinctCache::new())
}

fn candidates_for(rel: &Relation, fd: &Fd) -> Vec<(String, f64, i64)> {
    let pool = candidate_pool(rel, fd);
    extend_by_one(rel, fd, &pool, &mut DistinctCache::new())
        .into_iter()
        .map(|c| {
            (rel.schema().attr_name(c.attr).to_string(), c.measures.confidence, c.measures.goodness)
        })
        .collect()
}

fn assert_close(actual: f64, expected: f64, what: &str) {
    assert!((actual - expected).abs() < 5e-4, "{what}: {actual} vs paper {expected}");
}

#[test]
fn figure1_shape() {
    let rel = places();
    assert_eq!(rel.row_count(), 11, "11 tuples t1..t11");
    assert_eq!(rel.arity(), 9, "9 attributes");
    assert!(rel.non_null_attrs().len() == 9, "no NULLs in Places");
}

#[test]
fn section1_fd_measures() {
    let rel = places();
    let fds = places_fds(&rel);
    // cF1 = 0.5, gF1 = -2
    let m1 = measures(&rel, &fds[0]);
    assert_close(m1.confidence, 0.5, "cF1");
    assert_eq!(m1.goodness, -2, "gF1");
    assert_eq!((m1.distinct_lhs, m1.distinct_lhs_rhs, m1.distinct_rhs), (2, 4, 4));
    // cF2 = 0.667, gF2 = -1
    let m2 = measures(&rel, &fds[1]);
    assert_close(m2.confidence, 0.667, "cF2");
    assert_eq!(m2.goodness, -1, "gF2");
    // cF3 = 0.889, gF3 = 1
    let m3 = measures(&rel, &fds[2]);
    assert_close(m3.confidence, 0.889, "cF3");
    assert_eq!(m3.goodness, 1, "gF3");
}

#[test]
fn section1_violating_tuples() {
    let rel = places();
    let fds = places_fds(&rel);
    // "All the tuples in Places violate F1": every tuple's (D,R) group
    // maps to more than one AreaCode.
    let f1 = &fds[0];
    for drop_row in 0..rel.row_count() {
        let keep: Vec<usize> = (0..rel.row_count()).filter(|&r| r != drop_row).collect();
        let sub = rel.gather(&keep);
        assert!(
            !f1.satisfied_naive(&sub),
            "removing t{} must not repair F1 — all tuples violate",
            drop_row + 1
        );
    }
    // "tuples t1, t2 and t3 violate F2": the Zip = 10211 group {t1,t2,t3}
    // is heterogeneous (NY,NY vs NY,MA). Note the paper's own measures
    // (cF2 = 4/6) force a *second* heterogeneous Zip group — |π_ZCS| = 6
    // over 4 zips cannot come from one split group — so §1's sentence
    // understates the violation set; see EXPERIMENTS.md. We verify the
    // named group violates and that removing it removes exactly one of
    // the two split groups.
    let f2 = &fds[1];
    assert!(!f2.satisfied_naive(&rel));
    let t123 = rel.gather(&[0, 1, 2]);
    assert!(!f2.satisfied_naive(&t123), "t1..t3 alone already violate F2");
    let without123 = rel.gather(&(3..11).collect::<Vec<_>>());
    let splits = |r: &Relation| {
        evofd::storage::count_distinct(r, &f2.attrs()) - evofd::storage::count_distinct(r, f2.lhs())
    };
    assert_eq!(splits(&rel), 2, "two heterogeneous zip groups overall");
    assert_eq!(splits(&without123), 1, "removing t1..t3 heals the 10211 group");
    // "tuples t10 and t11 violate F3".
    let f3 = &fds[2];
    let without_10_11 = rel.gather(&(0..9).collect::<Vec<_>>());
    assert!(f3.satisfied_naive(&without_10_11));
    assert!(!f3.satisfied_naive(&rel));
}

#[test]
fn section41_ordering_and_ranks() {
    let rel = places();
    let fds = places_fds(&rel);
    // Under the consequent-overlap conflict mode the paper's exact rank
    // values come out: F1 0.25, F2 0.167, F3 0.056.
    let ranked = order_fds(&rel, &fds, ConflictMode::SharedConsequents, &mut DistinctCache::new());
    assert_eq!(ranked[0].fd, fds[0]);
    assert_eq!(ranked[1].fd, fds[1]);
    assert_eq!(ranked[2].fd, fds[2]);
    assert_close(ranked[0].rank, 0.25, "O_F1");
    assert_close(ranked[1].rank, 0.167, "O_F2");
    assert_close(ranked[2].rank, 0.056, "O_F3");
    // The printed formula (shared XY attributes) yields the same order.
    let ranked2 = order_fds(&rel, &fds, ConflictMode::SharedAttrs, &mut DistinctCache::new());
    let order: Vec<&Fd> = ranked2.iter().map(|r| &r.fd).collect();
    assert_eq!(order, vec![&fds[0], &fds[1], &fds[2]]);
}

#[test]
fn table1_exact_cells() {
    let rel = places();
    let f1 = &places_fds(&rel)[0];
    let got = candidates_for(&rel, f1);
    let expected: [(&str, f64, i64); 6] = [
        ("Municipal", 1.0, 0),
        ("PhNo", 1.0, 3),
        ("Street", 0.875, 3),
        ("Zip", 0.8, 0),
        ("City", 0.8, 0),
        ("State", 0.6, -1),
    ];
    assert_eq!(got.len(), expected.len());
    for ((name, c, g), (ename, ec, eg)) in got.iter().zip(expected.iter()) {
        assert_eq!(name, ename, "ranking order");
        assert_close(*c, *ec, &format!("Table 1 confidence of {name}"));
        assert_eq!(g, eg, "Table 1 goodness of {name}");
    }
}

#[test]
fn f4_measures_and_table2() {
    let rel = places();
    let f4 = places_f4(&rel);
    let m = measures(&rel, &f4);
    assert_close(m.confidence, 2.0 / 7.0, "cF4 = 0.29");
    assert_eq!(m.goodness, -4, "gF4 = -4");

    let got = candidates_for(&rel, &f4);
    let expected: [(&str, f64, i64); 7] = [
        ("Street", 0.875, 1),
        ("Municipal", 0.571, -2),
        ("AreaCode", 0.571, -2),
        ("City", 0.571, -2),
        ("Zip", 0.5, -2),
        ("State", 0.429, -3),
        ("Region", 0.286, -4),
    ];
    assert_eq!(got.len(), expected.len());
    for ((name, c, g), (ename, ec, eg)) in got.iter().zip(expected.iter()) {
        assert_eq!(name, ename, "Table 2 ranking order");
        assert_close(*c, *ec, &format!("Table 2 confidence of {name}"));
        assert_eq!(g, eg, "Table 2 goodness of {name}");
    }
}

#[test]
fn table3_confidences_and_winner_set() {
    // Extending F4 with Street (the Table 2 winner): Table 3's confidence
    // column reproduces exactly; its goodness column is affected by a
    // printing slip in the paper (see EXPERIMENTS.md), so we check the
    // decision-relevant facts: the two exact candidates are Municipal and
    // AreaCode, with equal goodness.
    let rel = places();
    let f4 = places_f4(&rel);
    let f4s = f4.with_lhs_attr(rel.schema().resolve("Street").unwrap());
    let got = candidates_for(&rel, &f4s);
    let expected_conf: [(&str, f64); 5] =
        [("Municipal", 1.0), ("AreaCode", 1.0), ("Zip", 0.889), ("City", 0.875), ("State", 0.875)];
    // The candidate pool is R \ X'Y = 6 attributes; the paper's Table 3
    // prints five of them, omitting Region (which, refining nothing,
    // scores the same 0.875 as City/State).
    assert_eq!(got.len(), 6);
    let (_, region_c, _) = got.iter().find(|(n, _, _)| n == "Region").expect("in pool");
    assert_close(*region_c, 0.875, "Region confidence");
    for (name, ec) in expected_conf {
        let (_, c, _) = got.iter().find(|(n, _, _)| n == name).expect("candidate present");
        assert_close(*c, ec, &format!("Table 3 confidence of {name}"));
    }
    let exact: Vec<&str> =
        got.iter().filter(|(_, c, _)| *c == 1.0).map(|(n, _, _)| n.as_str()).collect();
    assert_eq!(exact, vec!["Municipal", "AreaCode"]);
    let g_mun = got.iter().find(|(n, _, _)| n == "Municipal").unwrap().2;
    let g_area = got.iter().find(|(n, _, _)| n == "AreaCode").unwrap().2;
    assert_eq!(g_mun, g_area, "paper: 'they score the same value also for the goodness'");
}

#[test]
fn section43_minimal_repairs_of_f4() {
    let rel = places();
    let f4 = places_f4(&rel);
    let search = repair_fd(&rel, &f4, &RepairConfig::find_all()).unwrap();
    let min_len = search.repairs.iter().map(|r| r.added.len()).min().unwrap();
    assert_eq!(min_len, 2, "no single attribute repairs F4");
    let minimal: Vec<AttrSet> =
        search.repairs.iter().filter(|r| r.added.len() == 2).map(|r| r.added.clone()).collect();
    let street_municipal = rel.schema().attr_set(&["Street", "Municipal"]).unwrap();
    let street_areacode = rel.schema().attr_set(&["Street", "AreaCode"]).unwrap();
    assert!(
        minimal.contains(&street_municipal),
        "the paper's Street+Municipal repair is found: {minimal:?}"
    );
    assert!(
        minimal.contains(&street_areacode),
        "the paper's Street+AreaCode repair is found: {minimal:?}"
    );
    // Find-first returns one of the greedy pair immediately.
    let first = repair_fd(&rel, &f4, &RepairConfig::find_first()).unwrap();
    let best = first.best().unwrap();
    assert_eq!(best.added.len(), 2);
    assert!(best.added == street_municipal || best.added == street_areacode);
}

#[test]
fn figure2_cluster_views() {
    use evofd::core::FdClusterView;
    let rel = places();
    let schema = rel.schema();
    // Figure 2a: F1 is not a function.
    let f1 = Fd::parse(schema, "District, Region -> AreaCode").unwrap();
    assert!(!FdClusterView::of(&rel, &f1).induces_function());
    // Figure 2b: adding Municipal gives a *well-defined* (bijective) map.
    let f1m = Fd::parse(schema, "District, Region, Municipal -> AreaCode").unwrap();
    let view = FdClusterView::of(&rel, &f1m);
    assert!(view.induces_function());
    assert!(view.induces_bijection());
    // Figure 2c: adding PhNo gives a function but not a bijection.
    let f1p = Fd::parse(schema, "District, Region, PhNo -> AreaCode").unwrap();
    let view = FdClusterView::of(&rel, &f1p);
    assert!(view.induces_function());
    assert!(!view.induces_bijection());
}
