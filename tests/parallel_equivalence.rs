//! Parallel ≡ sequential property tests for the `mintpool` execution
//! layer: chunked partition refinement, FD validation, levelwise
//! discovery and incremental tracker maintenance must produce **exactly**
//! the sequential results at every thread width 1..=4 — labels, measures,
//! mined FD lists and drift-event streams alike.
//!
//! The width is process-global, so every test holds one lock while it
//! sweeps (the other integration-test binaries run in their own
//! processes and are unaffected).

use std::sync::{Mutex, MutexGuard};

use evofd::core::{discover_fds, repair_fd, validate, DiscoveryConfig, Fd, RepairConfig};
use evofd::incremental::{Delta, FdDrift, IncrementalValidator, LiveRelation};
use evofd::storage::{
    count_distinct, count_distinct_naive, AttrId, AttrSet, DataType, Field, Partition, Relation,
    Schema, Value,
};
use proptest::prelude::*;

/// Serialise width sweeps: `set_threads` is process-wide.
fn width_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` once per width in 1..=4, restoring the default afterwards.
fn sweep_widths(mut f: impl FnMut(usize)) {
    for width in 1..=4 {
        evofd::pool::set_threads(width);
        f(width);
    }
    evofd::pool::set_threads(0);
}

fn int_row(vals: &[u8]) -> Vec<Value> {
    vals.iter().map(|&v| Value::Int(v as i64)).collect()
}

fn schema(arity: usize) -> std::sync::Arc<Schema> {
    let fields: Vec<Field> =
        (0..arity).map(|i| Field::not_null(format!("a{i}"), DataType::Int)).collect();
    Schema::new("par", fields).expect("unique names").into_shared()
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..=5, 0usize..=40).prop_flat_map(|(arity, rows)| {
        proptest::collection::vec(proptest::collection::vec(0u8..4, arity), rows).prop_map(
            move |data| {
                Relation::from_rows(schema(arity), data.iter().map(|r| int_row(r))).expect("typed")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_by_attrs_parallel_is_identical(rel in arb_relation(), mask in 1u8..31) {
        let _g = width_lock();
        let attrs = AttrSet::from_indices(
            (0..rel.arity()).filter(|i| mask & (1 << i) != 0),
        );
        evofd::pool::set_threads(1);
        let seq = Partition::by_attrs(&rel, &attrs);
        sweep_widths(|width| {
            // The public entry point (threshold-dispatched)…
            assert_eq!(Partition::by_attrs(&rel, &attrs), seq, "by_attrs at width {width}");
            // …and the chunked construction forced at every chunk size.
            for chunk in [1, 2, 3, 7, rel.row_count().max(1)] {
                let par = Partition::by_attrs_chunked(&rel, &attrs, chunk);
                assert_eq!(par, seq, "chunk {chunk} at width {width}");
            }
        });
        if !attrs.is_empty() {
            prop_assert_eq!(seq.n_classes(), count_distinct_naive(&rel, &attrs));
        }
    }

    #[test]
    fn count_distinct_and_validate_identical_across_widths(rel in arb_relation()) {
        let _g = width_lock();
        let sets: Vec<AttrSet> = (0..rel.arity())
            .map(|i| AttrSet::from_indices(0..=i))
            .collect();
        let fds: Vec<Fd> = (1..rel.arity())
            .map(|i| {
                Fd::new(AttrSet::single(AttrId::from(i - 1)), AttrSet::single(AttrId::from(i)))
                    .expect("non-empty rhs")
            })
            .collect();
        evofd::pool::set_threads(1);
        let counts: Vec<usize> = sets.iter().map(|s| count_distinct(&rel, s)).collect();
        let baseline = validate(&rel, &fds);
        sweep_widths(|width| {
            for (s, &expect) in sets.iter().zip(&counts) {
                assert_eq!(count_distinct(&rel, s), expect, "width {width}");
            }
            let report = validate(&rel, &fds);
            assert_eq!(report.row_count, baseline.row_count);
            for (a, b) in report.statuses.iter().zip(&baseline.statuses) {
                assert_eq!(a.fd, b.fd, "width {width}");
                assert_eq!(a.measures, b.measures, "width {width}");
            }
        });
    }

    #[test]
    fn discovery_identical_across_widths(
        rel in arb_relation(),
        approximate in 0u8..2,
    ) {
        let _g = width_lock();
        let min_confidence = if approximate == 0 { 1.0 } else { 0.7 };
        let config = DiscoveryConfig { min_confidence, ..DiscoveryConfig::default() };
        evofd::pool::set_threads(1);
        let baseline = discover_fds(&rel, &config);
        sweep_widths(|width| {
            let mined = discover_fds(&rel, &config);
            assert_eq!(mined.fds.len(), baseline.fds.len(), "width {width}");
            for (a, b) in mined.fds.iter().zip(&baseline.fds) {
                assert_eq!(a.fd, b.fd, "width {width}");
                assert_eq!(a.measures, b.measures, "width {width}");
            }
            assert_eq!(mined.truncated, baseline.truncated, "width {width}");
        });
    }

    #[test]
    fn incremental_drift_identical_across_widths(
        rel in arb_relation(),
        ops in proptest::collection::vec(
            (0u8..3, proptest::collection::vec(0u8..4, 5), 0u8..255),
            1..10,
        ),
    ) {
        let _g = width_lock();
        let arity = rel.arity();
        let fds: Vec<Fd> = (0..arity)
            .map(|i| {
                Fd::new(
                    AttrSet::single(AttrId::from(i)).without(AttrId::from((i + 1) % arity)),
                    AttrSet::single(AttrId::from((i + 1) % arity)),
                )
                .expect("non-empty rhs")
            })
            .collect();

        // Replay the identical delta script at each width; collect the
        // maintained measures and the full drift-event stream.
        let replay = |width: usize| -> (Vec<_>, Vec<FdDrift>) {
            evofd::pool::set_threads(width);
            let mut live = LiveRelation::new(rel.clone());
            let mut v = IncrementalValidator::new(&live, fds.clone());
            let mut events = Vec::new();
            for (kind, values, sel) in &ops {
                let mut delta = Delta::new();
                if matches!(kind % 3, 0 | 2) {
                    delta.inserts.push(int_row(&values[..arity]));
                }
                if matches!(kind % 3, 1 | 2) && live.row_count() > 0 {
                    let victim = live
                        .live_rows()
                        .nth(*sel as usize % live.row_count())
                        .expect("within live count");
                    delta.deletes.push(victim);
                }
                let applied = live.apply(&delta).expect("script builds valid deltas");
                events.extend(v.apply(&live, &applied));
            }
            let measures: Vec<_> = (0..fds.len()).map(|i| (v.measures(i), v.summary(i))).collect();
            (measures, events)
        };

        let (base_state, base_events) = replay(1);
        for width in 2..=4 {
            let (state, events) = replay(width);
            prop_assert_eq!(&state, &base_state, "state diverged at width {}", width);
            prop_assert_eq!(&events, &base_events, "drift diverged at width {}", width);
        }
        evofd::pool::set_threads(0);
    }
}

/// Deterministic end-to-end sweep on seeded datagen: repair searches and
/// the full validate/discover pipeline agree between the sequential
/// engine and every parallel width (the fixed-regression complement to
/// the random cases above).
#[test]
fn seeded_pipeline_identical_across_widths() {
    use evofd::datagen::SyntheticSpec;

    let _g = width_lock();
    let rel = SyntheticSpec::planted_fd("seeded", 2, 2, 600, 8, 0.05, 2016).generate();
    let fds: Vec<Fd> = ["a0, a1 -> a4", "a0 -> a2", "a2, a3 -> a0"]
        .iter()
        .map(|t| Fd::parse(rel.schema(), t).unwrap())
        .collect();

    evofd::pool::set_threads(1);
    let base_report = validate(&rel, &fds);
    let base_search = repair_fd(&rel, &fds[0], &RepairConfig::find_all()).unwrap();
    let base_mined = discover_fds(&rel, &DiscoveryConfig::default());

    sweep_widths(|width| {
        let report = validate(&rel, &fds);
        for (a, b) in report.statuses.iter().zip(&base_report.statuses) {
            assert_eq!(a.measures, b.measures, "width {width}");
        }
        let search = repair_fd(&rel, &fds[0], &RepairConfig::find_all()).unwrap();
        assert_eq!(search.repairs.len(), base_search.repairs.len(), "width {width}");
        for (a, b) in search.repairs.iter().zip(&base_search.repairs) {
            assert_eq!(a.fd, b.fd, "width {width}");
            assert_eq!(a.added, b.added, "width {width}");
            assert_eq!(a.measures, b.measures, "width {width}");
        }
        let mined = discover_fds(&rel, &DiscoveryConfig::default());
        assert_eq!(mined.fds.len(), base_mined.fds.len(), "width {width}");
        for (a, b) in mined.fds.iter().zip(&base_mined.fds) {
            assert_eq!(a.fd, b.fd, "width {width}");
        }
    });
}

/// Parallel CSV ingest (chunked `RelationBuilder` coding + deterministic
/// dictionary merge) produces a relation physically identical to the
/// sequential reader — same dictionaries, same codes — at every width and
/// at several forced chunk sizes, above and below the auto-dispatch
/// threshold.
#[test]
fn csv_ingest_identical_across_widths() {
    use evofd::storage::{read_csv_str, read_csv_str_chunked, CsvOptions};

    let _g = width_lock();
    // 10_000 records (over the 8192-row parallel threshold) with heavy
    // value repetition across chunk boundaries, NULLs, quoting and mixed
    // inferred types.
    let mut text = String::from("name,qty,price,note\n");
    for i in 0..10_000 {
        text.push_str(&format!("u{},{},{}.5,\"n,{}\"\n", i % 97, i % 13, i % 7, i % 5));
    }
    text.push_str("straggler,,,\n");

    evofd::pool::set_threads(1);
    let seq = read_csv_str("t", &text, &CsvOptions::default()).unwrap();

    let assert_identical = |par: &Relation, what: &str| {
        assert_eq!(par.schema(), seq.schema(), "{what}");
        assert_eq!(par.row_count(), seq.row_count(), "{what}");
        for (a, b) in seq.columns().iter().zip(par.columns()) {
            assert_eq!(a.dict().values(), b.dict().values(), "{what}: dict of {}", a.name());
            assert_eq!(a.codes(), b.codes(), "{what}: codes of {}", a.name());
        }
    };

    sweep_widths(|width| {
        // The public reader auto-dispatches to the chunked path here.
        let par = read_csv_str("t", &text, &CsvOptions::default()).unwrap();
        assert_identical(&par, &format!("auto dispatch at width {width}"));
        // And odd forced chunkings stay identical too.
        for chunk_rows in [1, 97, 1000, 4096, 20_000] {
            let par = read_csv_str_chunked("t", &text, &CsvOptions::default(), chunk_rows).unwrap();
            assert_identical(&par, &format!("chunk {chunk_rows} at width {width}"));
        }
    });
}
