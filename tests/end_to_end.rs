//! End-to-end integration: dataset simulators feeding the full repair
//! pipeline, advisor workflows, TPC-H audits and the benchmark
//! harness's shape claims at test-friendly sizes.

use evofd::core::{
    find_fd_repairs, is_satisfied, repair_fd, validate, AdvisorSession, Fd, RepairConfig,
    SearchMode,
};
use evofd::datagen as dg;
use evofd::storage::AttrSet;

#[test]
fn table6_repair_lengths_match_paper_structure() {
    // §6.2: Places needs 2 added attributes, Country 1, Image 2,
    // PageLinks has a single candidate.
    let cfg = RepairConfig::find_first();

    let places = dg::places();
    let s = repair_fd(&places, &dg::places_f4(&places), &cfg).unwrap();
    assert_eq!(s.best().unwrap().added.len(), 2, "Places: 2-attribute repair");

    let country = dg::country(1);
    let s = repair_fd(&country, &dg::country_fd(&country), &cfg).unwrap();
    assert_eq!(s.best().unwrap().added.len(), 1, "Country: 1-attribute repair");

    let image = dg::image_sized(1, 8_000);
    let s = repair_fd(&image, &dg::image_fd(&image), &cfg).unwrap();
    assert_eq!(s.best().unwrap().added.len(), 2, "Image: 2-attribute repair");

    let pagelinks = dg::pagelinks_sized(1, 20_000);
    let fd = dg::pagelinks_fd(&pagelinks);
    assert_eq!(evofd::core::candidate_pool(&pagelinks, &fd).len(), 1);
    let s = repair_fd(&pagelinks, &fd, &cfg).unwrap();
    assert_eq!(s.best().unwrap().added.len(), 1, "PageLinks: the single candidate");

    let rental = dg::rental(1);
    let s = repair_fd(&rental, &dg::rental_fd(&rental), &cfg).unwrap();
    let best = s.best().unwrap();
    assert_eq!(best.added.len(), 1, "Rental: staff_id repairs");
    assert_eq!(
        rental.schema().render_attrs(&best.added),
        "[staff_id]",
        "goodness prefers staff_id over the UNIQUE rental_id"
    );
}

#[test]
fn veterans_sweep_unrepairable_slice() {
    // Table 8's 70k×10 anomaly: beyond the twin threshold the
    // 10-attribute slice is unrepairable, so find-first must explore
    // everything and find nothing. (The bench uses the paper's 60k
    // threshold; the generator lets tests use a cheap one.)
    let rel = dg::veterans_with_twin_start(1, 10, 3_000, 2_500);
    let fd = dg::veterans_fd(&rel);
    let first = repair_fd(&rel, &fd, &RepairConfig::find_first()).unwrap();
    assert!(first.best().is_none());
    let all = repair_fd(&rel, &fd, &RepairConfig::find_all()).unwrap();
    assert!(all.repairs.is_empty());
    // The wider slice distinguishes the twin rows again.
    let wide = dg::veterans_with_twin_start(1, 20, 3_000, 2_500);
    let fd = dg::veterans_fd(&wide);
    let search = repair_fd(&wide, &fd, &RepairConfig::find_first()).unwrap();
    assert!(search.best().is_some(), "20 attributes repair what 10 cannot");
}

#[test]
fn veterans_search_grows_with_attribute_count() {
    // Table 7's driving trend, asserted on work counters rather than
    // wall-clock (robust under CI noise).
    let mut explored = Vec::new();
    for attrs in [10usize, 12, 14] {
        let rel = dg::veterans(3, attrs, 4_000);
        let fd = dg::veterans_fd(&rel);
        let s = repair_fd(&rel, &fd, &RepairConfig::find_all()).unwrap();
        explored.push(s.stats.expansions + s.stats.generated);
    }
    assert!(
        explored[0] < explored[1] && explored[1] < explored[2],
        "search work grows with attribute count: {explored:?}"
    );
}

#[test]
fn tpch_audit_shapes() {
    let spec = dg::TpchSpec { scale: 0.002, seed: 99 };
    let catalog = dg::generate_catalog(&spec);
    let cfg = RepairConfig::find_first();
    let mut violated = Vec::new();
    for (table, fd) in dg::table5_fds(&catalog) {
        let rel = catalog.get(table.name()).unwrap();
        let outcomes = find_fd_repairs(rel, std::slice::from_ref(&fd), &cfg);
        if !outcomes[0].satisfied() {
            violated.push(table.name());
            let search = outcomes[0].search.as_ref().unwrap();
            assert!(search.best().is_some(), "{}: violated TPC-H FDs are repairable", table.name());
        }
    }
    violated.sort_unstable();
    assert_eq!(violated, vec!["lineitem", "orders", "partsupp"]);
}

#[test]
fn advisor_full_session_on_country() {
    let country = dg::country(5);
    let fds = vec![
        dg::country_fd(&country),
        Fd::parse(country.schema(), "Region -> Continent").unwrap(), // exact
    ];
    let mut session = AdvisorSession::new(&country, fds);
    session.analyze().unwrap();
    assert_eq!(session.pending().len(), 1);
    let idx = session.pending()[0];
    let accepted = session.accept(idx, 0).unwrap().fd.clone();
    assert!(session.is_complete());
    assert!(is_satisfied(&country, &accepted));
    assert!(session.verify().all_satisfied());
}

#[test]
fn goodness_threshold_changes_selected_repair() {
    // Rental: rental_id (UNIQUE) and staff_id both repair
    // customer_id -> store_id; the ranking already prefers staff_id, and a
    // tight threshold must reject the UNIQUE repair outright.
    let rental = dg::rental(2);
    let fd = dg::rental_fd(&rental);
    let all = repair_fd(&rental, &fd, &RepairConfig::find_all()).unwrap();
    let added_names: Vec<String> = all
        .repairs
        .iter()
        .filter(|r| r.added.len() == 1)
        .map(|r| rental.schema().render_attrs(&r.added))
        .collect();
    assert!(added_names.contains(&"[staff_id]".to_string()));
    assert!(added_names.contains(&"[rental_id]".to_string()), "{added_names:?}");

    let strict = RepairConfig {
        goodness_threshold: Some(10),
        mode: SearchMode::FindAll,
        ..RepairConfig::default()
    };
    let filtered = repair_fd(&rental, &fd, &strict).unwrap();
    assert!(filtered
        .repairs
        .iter()
        .all(|r| !rental.schema().render_attrs(&r.added).contains("rental_id")));
    assert!(filtered.stats.rejected_by_goodness > 0);
}

#[test]
fn closure_reasoning_detects_redundant_evolution() {
    // After evolving, the new FD may be implied by others — the schema
    // toolkit catches that.
    let places = dg::places();
    let schema = places.schema();
    let declared = vec![
        Fd::parse(schema, "Municipal -> AreaCode").unwrap(),
        Fd::parse(schema, "District, Region, Municipal -> AreaCode").unwrap(),
    ];
    assert!(evofd::core::implies(&declared[..1], &declared[1]));
    let cover = evofd::core::minimal_cover(&declared);
    assert_eq!(cover.len(), 1);
    assert_eq!(cover[0], declared[0]);
}

#[test]
fn validation_report_over_all_example_fds() {
    let places = dg::places();
    let mut fds = dg::places_fds(&places);
    fds.push(dg::places_f4(&places));
    fds.push(Fd::parse(places.schema(), "Municipal -> AreaCode").unwrap());
    let report = validate(&places, &fds);
    assert_eq!(report.statuses.len(), 5);
    assert_eq!(report.violation_count(), 4);
    assert_eq!(report.satisfied().count(), 1);
}

#[test]
fn repair_engine_respects_expansion_budget() {
    let rel = dg::veterans(7, 16, 2_000);
    let fd = dg::veterans_fd(&rel);
    let tight =
        RepairConfig { max_expansions: 5, mode: SearchMode::FindAll, ..RepairConfig::default() };
    let s = repair_fd(&rel, &fd, &tight).unwrap();
    assert!(s.truncated, "budget must be reported as truncation");
    assert!(s.stats.expansions <= 6);
}

#[test]
fn search_stats_are_consistent() {
    let image = dg::image_sized(4, 3_000);
    let fd = dg::image_fd(&image);
    let s = repair_fd(&image, &fd, &RepairConfig::find_all()).unwrap();
    assert!(s.stats.generated > 0);
    assert!(s.stats.cache.hits > 0, "the memo must be exercised");
    assert!(!s.repairs.is_empty());
    // Discovery order: non-decreasing added-set size.
    let sizes: Vec<usize> = s.repairs.iter().map(|r| r.added.len()).collect();
    let mut sorted = sizes.clone();
    sorted.sort_unstable();
    assert_eq!(sizes, sorted, "minimal repairs first: {sizes:?}");
    // All added sets are unique.
    let mut seen: Vec<&AttrSet> = Vec::new();
    for r in &s.repairs {
        assert!(!seen.contains(&&r.added), "duplicate repair {:?}", r.added);
        seen.push(&r.added);
    }
}
