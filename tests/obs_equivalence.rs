//! Observability guarantees of `evofd-obs`:
//!
//! * `registry_counts_are_exact_across_crash_recovery` — the global
//!   counters meter the durable engine exactly: one WAL append and one
//!   tracker delta per applied delta, and a crash replay re-meters the
//!   whole tail (recovery counter == replayed records, per-instance
//!   validator stats identical to the uninterrupted run).
//! * `enabling_instrumentation_never_changes_results` — a proptest:
//!   running any seeded delta stream with metrics enabled produces
//!   byte-for-byte the same relation snapshot, FD measures, summaries,
//!   drift events and work counters as the same stream with metrics
//!   disabled. Instrumentation observes, it never steers.

use std::path::PathBuf;
use std::sync::Mutex;

use evofd::core::Fd;
use evofd::datagen::SyntheticSpec;
use evofd::incremental::{Delta, IncrementalValidator, LiveRelation, ValidatorConfig};
use evofd::obs;
use evofd::persist::{DurableRelation, PersistOptions, SyncPolicy};
use evofd::storage::Relation;
use proptest::prelude::*;

/// The metrics registry is process-global; tests that enable it (or
/// assert exact counter deltas) must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("evofd_obs_equivalence").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn planted(rows: usize, seed: u64) -> Relation {
    SyntheticSpec::planted_fd("obs", 2, 2, rows, 16, 0.01, seed).generate()
}

fn fds(rel: &Relation) -> Vec<Fd> {
    ["a0, a1 -> a4", "a0 -> a2"]
        .iter()
        .map(|t| Fd::parse(rel.schema(), t).expect("static FD"))
        .collect()
}

#[test]
fn registry_counts_are_exact_across_crash_recovery() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::enable();
    let dir = tmpdir("crash_exact");
    let base = planted(500, 7);
    let donor = planted(100, 8);
    // No fsync and no WAL-threshold checkpoint: every delta is exactly
    // one WAL frame, and the whole tail survives the kill.
    let opts = PersistOptions {
        sync: SyncPolicy::NoSync,
        wal_compact_bytes: u64::MAX,
        ..PersistOptions::default()
    };
    let mut t = DurableRelation::create(
        &dir,
        base.clone(),
        fds(&base),
        ValidatorConfig::default(),
        opts.clone(),
    )
    .unwrap();

    const N: usize = 40;
    let wal0 = obs::metrics::WAL_APPENDS_TOTAL.get();
    let trk0 = obs::metrics::TRACKER_DELTAS_TOTAL.get();
    for i in 0..N {
        t.apply(&Delta::inserting(vec![donor.row(i % donor.row_count())])).unwrap();
    }
    assert_eq!(obs::metrics::WAL_APPENDS_TOTAL.get() - wal0, N as u64, "one frame per delta");
    assert_eq!(obs::metrics::TRACKER_DELTAS_TOTAL.get() - trk0, N as u64, "one tracker apply each");
    let uninterrupted = t.validator().stats();
    drop(t); // kill without checkpoint

    let rec0 = obs::metrics::RECOVERY_REPLAYED_TOTAL.get();
    let trk1 = obs::metrics::TRACKER_DELTAS_TOTAL.get();
    let reopened = DurableRelation::open(&dir, opts).unwrap();
    assert_eq!(reopened.recovery().replayed, N, "whole tail replayed");
    assert_eq!(
        obs::metrics::RECOVERY_REPLAYED_TOTAL.get() - rec0,
        N as u64,
        "recovery counter matches the replayed tail exactly"
    );
    assert_eq!(
        obs::metrics::TRACKER_DELTAS_TOTAL.get() - trk1,
        N as u64,
        "replay re-meters the validator delta-for-delta"
    );
    assert_eq!(
        reopened.validator().stats(),
        uninterrupted,
        "per-instance work counters identical to the uninterrupted run"
    );
    obs::disable();
}

/// Run a seeded delta stream through a live relation + validator and
/// digest everything observable into one string: final snapshot rows,
/// per-FD measures + violation summaries, drift events in order, and
/// the validator's work counters.
fn stream_digest(seed: u64, n: usize) -> String {
    let base = planted(300, seed);
    let donor = planted(64, seed.wrapping_add(1));
    let mut live = LiveRelation::new(base.clone());
    let mut validator = IncrementalValidator::new(&live, fds(&base));
    let mut out = String::new();
    for i in 0..n {
        let mut delta = Delta::inserting(vec![donor.row(i % donor.row_count())]);
        if i % 3 == 0 {
            if let Some(row) = live.live_rows().nth(i % 5) {
                delta.deletes.push(row);
            }
        }
        let applied = live.apply(&delta).unwrap();
        let events = validator.apply(&live, &applied);
        out.push_str(&format!("step {i}: {events:?}\n"));
        if live.maybe_compact() > 0 {
            validator.resync(&live);
        }
    }
    // Digest row values directly — Relation's Debug form includes
    // HashMap-backed dictionaries whose order is not deterministic.
    let snap = live.snapshot();
    for r in 0..snap.row_count() {
        out.push_str(&format!("row {r}: {:?}\n", snap.row(r)));
    }
    for i in 0..validator.fds().len() {
        out.push_str(&format!("fd {i}: {:?} {:?}\n", validator.measures(i), validator.summary(i)));
    }
    out.push_str(&format!("stats: {:?}\n", validator.stats()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn enabling_instrumentation_never_changes_results(seed in 0u64..1000, n in 1usize..80) {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        obs::disable();
        let plain = stream_digest(seed, n);
        obs::enable();
        let instrumented = stream_digest(seed, n);
        obs::disable();
        prop_assert_eq!(plain, instrumented);
    }
}
