//! # evofd — evolving functional dependencies
//!
//! A complete Rust implementation of *"Semi-automatic support for evolving
//! functional dependencies"* (Mazuran, Quintarelli, Tanca, Ugolini —
//! EDBT 2016): detect the functional dependencies violated by the current
//! data and evolve them — at the constraint level, not the data level — by
//! adding a minimal set of attributes to their antecedents, ranked by
//! **confidence** and **goodness**.
//!
//! ## Quickstart
//!
//! ```
//! use evofd::prelude::*;
//!
//! // The paper's Figure 1 relation and its FDs.
//! let places = evofd::datagen::places();
//! let fds = evofd::datagen::places_fds(&places);
//!
//! // 1. Which FDs are violated, and how badly?
//! let report = validate(&places, &fds);
//! assert_eq!(report.violation_count(), 3);
//!
//! // 2. Repair the worst one: F1 = [District, Region] -> [AreaCode].
//! let search = repair_fd(&places, &fds[0], &RepairConfig::find_first()).unwrap();
//! let best = search.best().expect("repairable");
//! assert_eq!(
//!     best.fd.display(places.schema()),
//!     "[District, Region, Municipal] -> [AreaCode]"
//! );
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `evofd-core` | FDs, measures, repair search, advisor loop |
//! | [`storage`] | `evofd-storage` | relations, partitions, distinct counting |
//! | [`incremental`] | `evofd-incremental` | live relations, delta-maintained measures, drift feed |
//! | [`persist`] | `evofd-persist` | delta WAL, columnar snapshots, crash recovery |
//! | [`baseline`] | `evofd-baseline` | entropy-based (Chiang–Miller) baseline |
//! | [`datagen`] | `evofd-datagen` | Places, TPC-H DBGEN, dataset simulators |
//! | [`sql`] | `evofd-sql` | `SELECT COUNT(DISTINCT …)`-capable SQL engine |
//! | [`server`] | `evofd-server` | multi-client SQL + replication service over TCP |
//! | [`obs`] | `evofd-obs` | metrics registry, tracing spans, stage timings |
//! | [`pool`] | `mintpool` | work-stealing threadpool behind every parallel path |

#![warn(missing_docs)]

pub use evofd_baseline as baseline;
pub use evofd_core as core;
pub use evofd_datagen as datagen;
pub use evofd_incremental as incremental;
pub use evofd_obs as obs;
pub use evofd_persist as persist;
pub use evofd_server as server;
pub use evofd_sql as sql;
pub use evofd_storage as storage;
/// The vendored work-stealing threadpool behind every parallel path;
/// `pool::set_threads(1)` restores fully sequential execution.
pub use mintpool as pool;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use evofd_core::{
        candidate_pool, condition_repairs, discover_fds, extend_by_one, find_fd_repairs,
        is_satisfied, order_fds, repair_fd, validate, violations, AdvisorSession, Candidate, Cfd,
        ConflictMode, DiscoveryConfig, Fd, FdOutcome, Measures, Pattern, Repair, RepairConfig,
        RepairIndex, RepairSearch, SearchMode, ViolationReport,
    };
    pub use evofd_incremental::{
        AppliedDelta, DecisionAction, DecisionRecord, Delta, DriftKind, FdDrift,
        IncrementalValidator, LiveAdvisor, LiveFdState, LiveRelation, ValidatorConfig,
        ViolationSummary,
    };
    pub use evofd_persist::{
        ChannelTransport, Database, DirTransport, DurableEngine, DurableRelation, FrameTransport,
        PersistOptions, ReplicaState, SyncPolicy,
    };
    pub use evofd_storage::{
        count_distinct, read_csv_path, read_csv_str, AttrId, AttrSet, Catalog, CsvOptions,
        DataType, DistinctCache, Field, Partition, Relation, RelationBuilder, Schema, Value,
    };
}
