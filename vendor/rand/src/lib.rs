//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides exactly the API surface `evofd-datagen` uses: [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) and [`rngs::SmallRng`]. The
//! generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets — so quality is
//! comparable; the exact streams differ from upstream `rand`, which is fine
//! because every consumer in this workspace only relies on determinism, not
//! on specific values.

use std::ops::{Range, RangeInclusive};

/// Core uniform-bit generation, the basis of every derived method.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Parameterised by the output type
/// (like upstream rand's `SampleRange<T>`) so integer-literal ranges infer
/// their type from how the sampled value is used.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // `start + f*(end-start)` can round up to exactly `end`; keep the
        // documented exclusive upper bound (as upstream rand does).
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f32::sample(rng) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// Derived sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=12u32);
            assert!((1..=12).contains(&w));
            let x = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
