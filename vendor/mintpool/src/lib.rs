//! # mintpool — minimal work-stealing threadpool
//!
//! Offline, API-minimal stand-in for the `rayon` execution model (the
//! build environment has no crates.io access — same vendoring style as
//! the `rand`/`proptest`/`criterion` shims). It provides exactly what the
//! `evofd` workspace needs to fan its hot paths out across cores:
//!
//! * [`scope`] — spawn borrowing tasks, wait for all of them;
//! * [`join`] — run two closures, potentially in parallel;
//! * [`par_map`] — map a slice to a `Vec`, order-preserving;
//! * [`par_for_each_mut`] — mutate disjoint slice elements in parallel;
//! * [`set_threads`] / [`threads`] — a process-wide parallelism width.
//!
//! ## Architecture and ownership model
//!
//! One global pool, spawned lazily on first parallel call. Scheduling is
//! **work-stealing**: every worker owns a deque, pushes locally spawned
//! jobs to its back and pops from the back (LIFO, cache-friendly), while
//! idle workers steal from the *front* of other deques (FIFO, oldest —
//! i.e. biggest — subtrees first) or from a shared injector queue that
//! receives jobs submitted by non-pool threads. Deques are individually
//! mutex-guarded; jobs are coarse chunks (thousands of rows / whole FD
//! searches), so the locks are uncontended in practice.
//!
//! Threads that *wait* (a [`scope`] completing, a [`join`] caller) never
//! block idly while work is queued: they **help**, draining jobs from the
//! pool until their own latch opens. This makes nested parallelism
//! (e.g. a parallel FD-validation task computing a parallel partition)
//! deadlock-free even when the machine has a single core and the pool has
//! zero workers — the caller simply executes everything itself.
//!
//! ## Determinism contract
//!
//! `set_threads(1)` disables the pool entirely: every helper runs inline,
//! sequentially, in submission order — **bit-identical** to code that
//! never heard of this crate. At any width, [`par_map`] preserves input
//! order and [`par_for_each_mut`] hands each element to exactly one task,
//! so callers that are deterministic per element stay deterministic.
//!
//! Worker threads are detached and live for the process lifetime (no
//! shutdown protocol — the pool is a process-wide resource, like rayon's
//! global pool).

#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Hard cap on pool workers (deque slots are allocated up front).
const MAX_WORKERS: usize = 64;

/// A type-erased, latch-completing unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Process-wide configured width; 0 means "not set, use the default".
static CONFIG: AtomicUsize = AtomicUsize::new(0);

/// Jobs pushed into the pool since process start (monotone).
static STAT_TASKS: AtomicU64 = AtomicU64::new(0);
/// Jobs taken from a deque other than the popper's own (monotone).
static STAT_STEALS: AtomicU64 = AtomicU64::new(0);
/// Jobs injected by non-worker threads (monotone).
static STAT_INJECTED: AtomicU64 = AtomicU64::new(0);

static POOL: OnceLock<Arc<Shared>> = OnceLock::new();

thread_local! {
    /// Which pool deque (if any) the current thread owns.
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of logical CPUs visible to this process (≥ 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Set the process-wide parallelism width. `0` restores the default
/// (available parallelism). `1` disables the pool: every helper in this
/// crate runs inline and sequentially, bit-identical to single-threaded
/// code. Widths above [`available_parallelism`] are honoured (useful for
/// oversubscription sweeps in benchmarks).
pub fn set_threads(n: usize) {
    CONFIG.store(n, Ordering::SeqCst);
}

/// The effective parallelism width used by [`par_map`] & friends.
pub fn threads() -> usize {
    match CONFIG.load(Ordering::SeqCst) {
        0 => available_parallelism(),
        n => n,
    }
}

struct Shared {
    injector: Mutex<VecDeque<Job>>,
    /// Paired with the `injector` mutex; notified (under that mutex) on
    /// every push, so idle workers can park indefinitely.
    sleepers: Condvar,
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Queued-but-unclaimed jobs across every deque. Incremented before a
    /// job is enqueued and decremented after one is dequeued, so a worker
    /// that reads 0 under the injector mutex can safely park: any later
    /// push must take that mutex to notify, and any concurrent push has
    /// already made the counter non-zero.
    pending: AtomicUsize,
    /// Workers spawned so far (monotone, ≤ [`MAX_WORKERS`]).
    spawned: AtomicUsize,
    spawn_lock: Mutex<()>,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            injector: Mutex::new(VecDeque::new()),
            sleepers: Condvar::new(),
            locals: (0..MAX_WORKERS).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
            spawn_lock: Mutex::new(()),
        }
    }

    /// Spawn workers until `target` exist (capped at [`MAX_WORKERS`]).
    fn ensure_workers(self: &Arc<Shared>, target: usize) {
        let target = target.min(MAX_WORKERS);
        if self.spawned.load(Ordering::Acquire) >= target {
            return;
        }
        let _guard = self.spawn_lock.lock().unwrap();
        while self.spawned.load(Ordering::Acquire) < target {
            let idx = self.spawned.load(Ordering::Acquire);
            let shared = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("mintpool-{idx}"))
                .spawn(move || worker_loop(shared, idx))
                .expect("spawn mintpool worker");
            self.spawned.store(idx + 1, Ordering::Release);
        }
    }

    /// Submit a job: a worker pushes to its own deque's back, everyone
    /// else to the shared injector. The pending increment happens first
    /// (a scanner may briefly respin on a not-yet-visible job, never the
    /// reverse), and the wake-up is posted under the injector mutex so it
    /// cannot slip between a parking worker's counter check and its wait.
    fn push(&self, job: Job) {
        STAT_TASKS.fetch_add(1, Ordering::Relaxed);
        self.pending.fetch_add(1, Ordering::Release);
        match WORKER.with(Cell::get) {
            Some(i) => self.locals[i].lock().unwrap().push_back(job),
            None => {
                STAT_INJECTED.fetch_add(1, Ordering::Relaxed);
                self.injector.lock().unwrap().push_back(job)
            }
        }
        let _ordering = self.injector.lock().unwrap();
        self.sleepers.notify_all();
    }

    /// Work-stealing pop: own back, then injector front, then other
    /// deques' fronts.
    fn pop_or_steal(&self, me: Option<usize>) -> Option<Job> {
        if let Some(job) = self.pop_unclaimed(me) {
            self.pending.fetch_sub(1, Ordering::Release);
            return Some(job);
        }
        None
    }

    fn pop_unclaimed(&self, me: Option<usize>) -> Option<Job> {
        if let Some(i) = me {
            if let Some(job) = self.locals[i].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let live = self.spawned.load(Ordering::Acquire);
        let start = me.map_or(0, |i| i + 1);
        for k in 0..live {
            let idx = (start + k) % live.max(1);
            if Some(idx) == me {
                continue;
            }
            if let Some(job) = self.locals[idx].lock().unwrap().pop_front() {
                STAT_STEALS.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }
}

/// A point-in-time snapshot of the pool's scheduling counters, for
/// observability layers to render (the counters are native so recording
/// costs one relaxed add on paths that already take a deque mutex).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Effective parallelism width ([`threads`]).
    pub width: usize,
    /// Worker threads spawned so far.
    pub spawned: usize,
    /// Jobs pushed into the pool since process start.
    pub tasks: u64,
    /// Jobs taken from a deque other than the popper's own.
    pub steals: u64,
    /// Jobs injected by non-worker threads.
    pub injected: u64,
    /// Jobs currently queued and unclaimed across every deque.
    pub queued: usize,
}

/// Snapshot the pool's scheduling counters. Cheap (a handful of relaxed
/// loads); safe to call whether or not the pool was ever spawned.
pub fn pool_stats() -> PoolStats {
    let (spawned, queued) = match POOL.get() {
        Some(shared) => {
            (shared.spawned.load(Ordering::Acquire), shared.pending.load(Ordering::Acquire))
        }
        None => (0, 0),
    };
    PoolStats {
        width: threads(),
        spawned,
        tasks: STAT_TASKS.load(Ordering::Relaxed),
        steals: STAT_STEALS.load(Ordering::Relaxed),
        injected: STAT_INJECTED.load(Ordering::Relaxed),
        queued,
    }
}

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    WORKER.with(|w| w.set(Some(idx)));
    loop {
        if let Some(job) = shared.pop_or_steal(Some(idx)) {
            job();
            continue;
        }
        // Park until work exists: with `pending` read under the mutex the
        // push side must notify under, the wait cannot miss a wake-up —
        // idle workers cost nothing (no periodic polling).
        let guard = shared.injector.lock().unwrap();
        if shared.pending.load(Ordering::Acquire) == 0 {
            let _parked = shared.sleepers.wait(guard).unwrap();
        }
    }
}

/// The global pool, created on first use and grown to the current width.
fn pool() -> &'static Arc<Shared> {
    let shared = POOL.get_or_init(|| Arc::new(Shared::new()));
    shared.ensure_workers(threads().saturating_sub(1));
    shared
}

/// Execute one queued job if any is available. Returns false when the
/// pool is empty (or was never created).
fn try_help() -> bool {
    if let Some(shared) = POOL.get() {
        if let Some(job) = shared.pop_or_steal(WORKER.with(Cell::get)) {
            job();
            return true;
        }
    }
    false
}

/// Completion latch: counts outstanding jobs of one [`scope`] and carries
/// the first panic payload across threads.
struct Latch {
    state: Mutex<LatchState>,
    cond: Condvar,
}

struct LatchState {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new() -> Latch {
        Latch { state: Mutex::new(LatchState { pending: 0, panic: None }), cond: Condvar::new() }
    }

    fn add(&self, n: usize) {
        self.state.lock().unwrap().pending += n;
    }

    fn complete(&self) {
        let mut g = self.state.lock().unwrap();
        g.pending -= 1;
        if g.pending == 0 {
            self.cond.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut g = self.state.lock().unwrap();
        g.panic.get_or_insert(payload);
    }

    /// Block until every job completed, executing other queued jobs
    /// while waiting (the helping protocol that makes nesting safe).
    fn wait(&self) {
        loop {
            if self.state.lock().unwrap().pending == 0 {
                return;
            }
            if try_help() {
                continue;
            }
            let g = self.state.lock().unwrap();
            if g.pending == 0 {
                return;
            }
            let _ = self.cond.wait_timeout(g, Duration::from_millis(1)).unwrap();
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().unwrap().panic.take()
    }
}

/// A fork-join region: tasks spawned on it may borrow anything that
/// outlives the [`scope`] call, and are guaranteed to finish before it
/// returns.
pub struct Scope<'env> {
    latch: Arc<Latch>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawn a task onto the pool. The closure may borrow from the
    /// enclosing environment; the scope waits for it before returning.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        self.latch.add(1);
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                latch.record_panic(payload);
            }
            latch.complete();
        });
        // SAFETY: the job only borrows data outliving 'env, and the scope
        // (via its drop guard) does not return before the latch reports
        // the job finished — so the erased lifetime can never dangle.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        pool().push(job);
    }
}

/// Waits for the scope's tasks even when the scope body unwinds, so
/// borrowed data stays alive for as long as any task can observe it.
struct ScopeGuard<'a> {
    latch: &'a Latch,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        self.latch.wait();
    }
}

/// Run a fork-join region: `f` receives a [`Scope`] to spawn borrowing
/// tasks on; every task completes before `scope` returns. A panic in any
/// task is re-raised here (first payload wins); a panic in `f` itself
/// still waits for already-spawned tasks before unwinding.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    let sc = Scope { latch: Arc::new(Latch::new()), _marker: PhantomData };
    let result = {
        let guard = ScopeGuard { latch: &sc.latch };
        let r = f(&sc);
        drop(guard);
        r
    };
    if let Some(payload) = sc.latch.take_panic() {
        resume_unwind(payload);
    }
    result
}

/// Run two closures, the second potentially on another thread, and
/// return both results. Inline and in order when the width is 1.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    if threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let mut rb: Option<RB> = None;
    let mut ra: Option<RA> = None;
    {
        let rb_slot = &mut rb;
        scope(|s| {
            s.spawn(move || *rb_slot = Some(b()));
            ra = Some(a());
        });
    }
    (ra.expect("ran inline"), rb.expect("scope waited for the spawned half"))
}

/// How many chunks a slice of `len` items is split into at width `w`:
/// a couple of chunks per thread so uneven items still balance.
fn chunk_size(len: usize, width: usize) -> usize {
    let chunks = (width * 2).clamp(1, len);
    len.div_ceil(chunks)
}

/// Map `f` over a slice in parallel, preserving input order. Inline and
/// sequential when the width is 1 or the slice has ≤ 1 element.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let width = threads();
    if width <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = chunk_size(items.len(), width);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    scope(|s| {
        for (ci, slice) in items.chunks(chunk).enumerate() {
            let f = &f;
            let parts = &parts;
            s.spawn(move || {
                let out: Vec<R> = slice.iter().map(f).collect();
                parts.lock().unwrap().push((ci, out));
            });
        }
    });
    let mut parts = parts.into_inner().unwrap();
    parts.sort_unstable_by_key(|&(ci, _)| ci);
    parts.into_iter().flat_map(|(_, v)| v).collect()
}

/// Apply `f(index, &mut item)` to every element of a mutable slice in
/// parallel. Each element is owned by exactly one task (disjoint
/// `chunks_mut` splits), so `f` needs no locking to mutate its element.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let width = threads();
    if width <= 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = chunk_size(items.len(), width);
    scope(|s| {
        for (ci, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, item) in slice.iter_mut().enumerate() {
                    f(ci * chunk + j, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise tests that reconfigure the global width.
    fn width_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn par_map_matches_sequential_at_every_width() {
        let _g = width_lock();
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for w in [1, 2, 4, 8] {
            set_threads(w);
            assert_eq!(par_map(&items, |x| x * x + 1), expect, "width {w}");
        }
        set_threads(0);
    }

    #[test]
    fn par_for_each_mut_touches_every_index_once() {
        let _g = width_lock();
        for w in [1, 3, 7] {
            set_threads(w);
            let mut items = vec![0usize; 513];
            par_for_each_mut(&mut items, |i, slot| *slot += i + 1);
            assert!(items.iter().enumerate().all(|(i, &v)| v == i + 1), "width {w}");
        }
        set_threads(0);
    }

    #[test]
    fn join_returns_both() {
        let _g = width_lock();
        for w in [1, 4] {
            set_threads(w);
            let data = [1, 2, 3];
            let (a, b) = join(|| data.iter().sum::<i32>(), || data.len());
            assert_eq!((a, b), (6, 3));
        }
        set_threads(0);
    }

    #[test]
    fn scope_tasks_borrow_and_complete() {
        let _g = width_lock();
        set_threads(4);
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        set_threads(0);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let _g = width_lock();
        set_threads(2);
        let total = AtomicUsize::new(0);
        scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                outer.spawn(move || {
                    let inner_sum: usize = par_map(&[1usize, 2, 3], |x| *x).iter().sum();
                    total.fetch_add(inner_sum, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 24);
        set_threads(0);
    }

    #[test]
    fn task_panic_propagates_to_scope_caller() {
        let _g = width_lock();
        set_threads(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("boom in task"));
            });
        }));
        let payload = result.expect_err("panic must cross the scope");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom"), "payload preserved: {msg:?}");
        set_threads(0);
    }

    #[test]
    fn pool_stats_count_pushed_tasks() {
        let _g = width_lock();
        set_threads(4);
        let before = pool_stats();
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {});
            }
        });
        let after = pool_stats();
        assert!(after.tasks >= before.tasks + 16, "all pushes counted");
        assert!(after.injected >= before.injected, "injected is monotone");
        assert!(after.width == 4 && after.spawned >= 1);
        set_threads(0);
    }

    #[test]
    fn width_one_never_touches_the_pool_config() {
        let _g = width_lock();
        set_threads(1);
        assert_eq!(threads(), 1);
        // All helpers run inline: order of side effects is submission order.
        let mut log = Vec::new();
        {
            let log_ref = &mut log;
            let seq = par_map(&[1, 2, 3], |x| *x * 10);
            log_ref.extend(seq);
        }
        assert_eq!(log, vec![10, 20, 30]);
        set_threads(0);
        assert_eq!(threads(), available_parallelism());
    }
}
