//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the subset of proptest the evofd test suite uses:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   integer ranges, tuples of strategies and [`Just`];
//! * [`collection::vec`] with fixed or ranged lengths;
//! * [`bits::u8::masked`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Generation is purely random (no shrinking): on failure the macro panics
//! with the failing assertion message and the case's RNG seed so a run can
//! be reproduced by fixing `PROPTEST_SEED`.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used for value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// How a test case ended when it did not simply pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a rendered message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case.
    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then derive a second strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as u128 + rng.below(span) as u128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as u128 + rng.below(span + 1) as u128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: fixed or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy yielding vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Bit-level strategies.
pub mod bits {
    /// Strategies over `u8` bit patterns.
    pub mod u8 {
        use crate::{Strategy, TestRng};

        /// Strategy yielding `u8` values whose set bits lie within a mask.
        #[derive(Debug, Clone, Copy)]
        pub struct Masked(pub u8);

        impl Strategy for Masked {
            type Value = u8;

            fn new_value(&self, rng: &mut TestRng) -> u8 {
                (rng.next_u64() as u8) & self.0
            }
        }

        /// `u8` values restricted to the bits of `mask`.
        pub fn masked(mask: u8) -> Masked {
            Masked(mask)
        }
    }
}

/// Run a property: keep generating cases until `config.cases` pass, panic on
/// the first failure, and bail out if rejection (via `prop_assume!`) starves
/// progress. Used by the [`proptest!`] macro — not public API upstream, but
/// harmless to expose here.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // Stable per-test seed (overridable for reproduction).
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5eed_2016_edb7_0001);
    let mut seed = base;
    for b in name.bytes() {
        seed = seed.rotate_left(7) ^ u64::from(b).wrapping_mul(0x100_0000_01b3);
    }

    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases) * 32 + 1024;
    let mut case_index: u64 = 0;
    while passed < config.cases {
        let case_seed = seed ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::new(case_seed);
        case_index += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest `{name}`: too many rejected cases ({rejected}) — \
                     prop_assume! conditions are unsatisfiable"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed after {passed} passing case(s) \
                     (case seed {case_seed:#x}): {msg}"
                );
            }
        }
    }
}

/// Assert a condition inside a property, failing the case (not panicking)
/// so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            let message = format!($($fmt)+);
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), message, l, r
            )));
        }
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn name(pat in
/// strategy, ...) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(config, stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::new_value(&($strat), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// The glob-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 1u32..=12) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=12).contains(&y));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn flat_map_and_just((n, v) in (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u8..3, n))
        })) {
            prop_assert_eq!(n, v.len());
        }

        #[test]
        fn masked_bits(m in crate::bits::u8::masked(0b101)) {
            prop_assert_eq!(m & !0b101, 0);
        }

        #[test]
        fn assume_rejects(pair in arb_pair()) {
            prop_assume!(pair.0 != pair.1);
            prop_assert!(pair.0 != pair.1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failure_panics_with_seed() {
        crate::run_proptest(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn fixed_size_vec() {
        let mut rng = crate::TestRng::new(1);
        let s = crate::collection::vec(0u8..3, 5usize);
        assert_eq!(s.new_value(&mut rng).len(), 5);
    }
}
