//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the API surface the `evofd-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros —
//! with a simple warmup + timed-batches measurement loop that prints
//! mean/min per iteration. No statistics, plots or state files.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendered after `/`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only id (matches criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to the measured closure; call [`Bencher::iter`] with the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record total time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(full_id: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) {
    // Calibrate: run once to estimate the iteration cost.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    routine(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~20ms per sample, clamped to [1, 10_000] iterations.
    let iters = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
    let samples = sample_size.clamp(2, 20);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        routine(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{full_id:<48} mean {:>12}   min {:>12}   ({} samples × {} iters)",
        format_ns(mean),
        format_ns(min),
        per_iter.len(),
        iters
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark a routine with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup { name, sample_size: 10, _criterion: self }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, 10, &mut f);
        self
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn id_rendering() {
        let id = BenchmarkId::new("refine", 1000);
        assert_eq!(id.id, "refine/1000");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
